package arbods_test

import (
	"fmt"

	"arbods"
)

// ExampleWeightedDeterministic runs Theorem 1.1 on a weighted
// bounded-arboricity workload and verifies the certificate.
func ExampleWeightedDeterministic() {
	w := arbods.ForestUnion(500, 2, 7)     // arboricity ≤ 2
	g := arbods.UniformWeights(w.G, 50, 3) // weighted instance
	rep, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.25,
		arbods.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("dominating:", rep.AllDominated)
	fmt.Println("within guarantee:", rep.CertifiedRatio() <= rep.Factor)
	fmt.Println("certified:", arbods.Certify(g, rep) == nil)
	// Output:
	// dominating: true
	// within guarantee: true
	// certified: true
}

// ExampleNewRunner is the serving pattern: one reusable Runner carries the
// worker pool, the run arenas, and the graph-derived routing tables across
// many runs, so repeated requests — parameter sweeps, per-seed replicas,
// different algorithms, even different graphs — pay the simulator's setup
// cost once. Results are identical to transient runs.
func ExampleNewRunner() {
	w := arbods.ForestUnion(500, 2, 7)
	g := arbods.UniformWeights(w.G, 50, 3)

	r := arbods.NewRunner()
	defer r.Close()

	var weights []int64
	for seed := uint64(1); seed <= 3; seed++ {
		rep, err := arbods.WeightedRandomized(g, w.ArboricityBound, 2,
			arbods.WithSeed(seed), arbods.WithRunner(r))
		if err != nil {
			panic(err)
		}
		weights = append(weights, rep.DSWeight)
	}
	// The same Runner serves a different algorithm on the same graph…
	det, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.25,
		arbods.WithSeed(1), arbods.WithRunner(r))
	if err != nil {
		panic(err)
	}
	// …and a transient run (no Runner) produces the identical result.
	solo, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.25,
		arbods.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("runs served:", len(weights)+1)
	fmt.Println("reused == transient:", det.DSWeight == solo.DSWeight && det.Rounds() == solo.Rounds())
	fmt.Println("certified:", arbods.Certify(g, det) == nil)
	// Output:
	// runs served: 4
	// reused == transient: true
	// certified: true
}

// ExampleRunBatch is the batch pattern: a sweep of independent runs —
// here one run per seed — pipelines across a RunnerPool with bounded
// parallelism, each job writing into its own slot so the assembled
// results are bit-identical to the sequential sweep. GOMAXPROCS is split
// between concurrent runs and each run's engine workers, so the sweep
// uses the whole machine without oversubscribing it.
func ExampleRunBatch() {
	w := arbods.ForestUnion(600, 2, 7)
	g := arbods.UniformWeights(w.G, 50, 3)

	const sweeps = 6
	weights := make([]int64, sweeps)
	jobs := make([]arbods.Job, sweeps)
	for i := range jobs {
		jobs[i] = func(r *arbods.Runner, workers int) error {
			rep, err := arbods.WeightedRandomized(g, w.ArboricityBound, 2,
				arbods.WithSeed(uint64(i+1)), arbods.WithRunner(r), arbods.WithWorkers(workers))
			if err != nil {
				return err
			}
			weights[i] = rep.DSWeight
			return nil
		}
	}
	if err := arbods.RunBatch(0, jobs...); err != nil { // 0 = GOMAXPROCS in flight
		panic(err)
	}

	// The sequential reference: same seeds, one transient run each.
	same := true
	for i := 0; i < sweeps; i++ {
		rep, err := arbods.WeightedRandomized(g, w.ArboricityBound, 2,
			arbods.WithSeed(uint64(i+1)))
		if err != nil {
			panic(err)
		}
		same = same && rep.DSWeight == weights[i]
	}
	fmt.Println("runs:", sweeps)
	fmt.Println("batch == sequential:", same)
	// Output:
	// runs: 6
	// batch == sequential: true
}

// ExampleTreeThreeApprox shows the one-round Appendix A algorithm against
// the exact forest optimum.
func ExampleTreeThreeApprox() {
	w := arbods.Path(9) // 0-1-2-…-8
	rep, err := arbods.TreeThreeApprox(w.G)
	if err != nil {
		panic(err)
	}
	opt, err := arbods.ExactForest(w.G)
	if err != nil {
		panic(err)
	}
	fmt.Println("3-approx holds:", rep.DSWeight <= 3*opt.Weight)
	fmt.Println("OPT:", opt.Weight)
	// Output:
	// 3-approx holds: true
	// OPT: 3
}

// ExampleBuildLowerBound walks the Theorem 1.4 pipeline: construction,
// solve, reduction, feasibility.
func ExampleBuildLowerBound() {
	base, err := arbods.LowerBoundGadget(8, 3, 4, 3)
	if err != nil {
		panic(err)
	}
	c, err := arbods.BuildLowerBound(base)
	if err != nil {
		panic(err)
	}
	fmt.Println("arboricity-2 instance:", c.H.N() > base.N())
	rep, err := arbods.UnweightedDeterministic(c.H, 2, 0.2, arbods.WithSeed(1))
	if err != nil {
		panic(err)
	}
	y := c.ExtractFractionalVC(arbods.MembershipOf(rep))
	fmt.Println("cover feasible:", arbods.CheckFractionalVertexCover(base, y) == nil)
	// Output:
	// arboricity-2 instance: true
	// cover feasible: true
}

// ExamplePartialDominatingSet exposes Lemma 4.1's two properties directly.
func ExamplePartialDominatingSet() {
	w := arbods.ForestUnion(200, 2, 9)
	alpha, eps := 2, 0.25
	lambda := 0.8 / (float64(alpha+1) * (1 + eps))
	rep, err := arbods.PartialDominatingSet(w.G, alpha, eps, lambda, arbods.WithSeed(2))
	if err != nil {
		panic(err)
	}
	// Property (b): undominated nodes carry large packing values.
	ok := true
	for _, out := range rep.Result.Outputs {
		if !out.Dominated && out.Packing <= lambda*float64(out.Tau)*(1-1e-12) {
			ok = false
		}
	}
	fmt.Println("property (b):", ok)
	fmt.Println("packing feasible:", arbods.CheckPacking(w.G, arbods.PackingOf(rep)) == nil)
	// Output:
	// property (b): true
	// packing feasible: true
}
