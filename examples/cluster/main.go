// Cluster: run three arbods daemons in-process as a replicated cluster,
// upload a graph once through the resilient client, solve it with
// receipt verification, kill an owner daemon, and solve again — the
// failover answer's receipt is byte-identical, because receipts are a
// pure function of (graph, algorithm, parameters, seed), never of which
// daemon executed.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"arbods"
	arbodsclient "arbods/client"
	"arbods/internal/cluster"
	"arbods/internal/server"
)

func main() {
	// Peer URLs must be known before any daemon starts, so each HTTP
	// listener comes up first with a late-bound handler and the Server is
	// plugged in once its cluster view exists.
	const n = 3
	slots := make([]atomic.Pointer[server.Server], n)
	urls := make([]string, n)
	for i := range slots {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if s := slots[i].Load(); s != nil {
				s.ServeHTTP(w, r)
				return
			}
			http.Error(w, "starting", http.StatusServiceUnavailable)
		}))
		defer ts.Close()
		urls[i] = ts.URL
	}
	servers := make([]*server.Server, n)
	for i := range servers {
		cset, err := cluster.New(cluster.Config{
			Self:          urls[i],
			Peers:         urls,
			Replicas:      2,
			ProbeInterval: 50 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.New(server.Config{PoolSize: 2, Cluster: cset})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
		slots[i].Store(srv)
	}

	// The resilient client fronts the whole cluster: endpoint rotation,
	// retries with jittered backoff, per-endpoint circuit breakers, and
	// local re-verification of every receipt.
	cli, err := arbodsclient.New(arbodsclient.Config{
		Endpoints:      urls,
		VerifyReceipts: true,
		AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// One upload, anywhere: the graph replicates to its rendezvous-hashed
	// owner daemons over the ARBCSR01 binary wire.
	info, err := cli.Upload(ctx, arbods.Grid(20, 20).G)
	if err != nil {
		log.Fatal(err)
	}
	// Ownership is a pure function of (key, peer set): any observer with
	// the peer list computes the same owners the daemons do.
	view, err := cluster.New(cluster.Config{Self: urls[0], Peers: urls, Replicas: 2})
	if err != nil {
		log.Fatal(err)
	}
	owners := map[string]bool{}
	for i, o := range view.Owners(info.ID) {
		owners[o] = true
		fmt.Printf("owner %d of %s: daemon %d\n", i+1, info.ID[:17], indexOf(urls, o))
	}

	req := arbodsclient.SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 7, IncludeDS: true}
	first, err := cli.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve 1: servedBy daemon %d (proxied=%v), |S|=%d, verified ✓\n",
		indexOf(urls, first.ServedBy), first.Proxied, first.Receipt.SetSize)

	// Kill one owner daemon outright. Ownership never moves — the
	// surviving owner (or, with every owner gone, any daemon holding the
	// replica) just answers instead.
	for i, u := range urls {
		if owners[u] {
			fmt.Printf("killing owner daemon %d\n", i)
			slots[i].Store(nil)
			servers[i].Close()
			break
		}
	}

	second, err := cli.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve 2: servedBy daemon %d (proxied=%v), attempts=%d\n",
		indexOf(urls, second.ServedBy), second.Proxied, second.Attempts)
	if !bytes.Equal(first.ReceiptBytes, second.ReceiptBytes) {
		log.Fatal("receipts diverged across failover")
	}
	fmt.Println("failover receipt byte-identical ✓")
}

func indexOf(urls []string, u string) int {
	for i, v := range urls {
		if v == u {
			return i
		}
	}
	return -1
}
