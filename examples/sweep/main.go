// Concurrent experiment sweeps: this example runs the same seed × ε
// sweep twice — strictly sequentially on one reusable Runner, then
// batched across a RunnerPool with RunBatch — and verifies the results
// are identical point for point. The batch path is how cmd/mdsbench
// -parallel executes every repetition loop of the experiment suite:
// independent runs pipeline across warmed Runners, GOMAXPROCS is split
// between concurrent runs and per-run engine workers, and each job
// writes into its submission slot so parallelism never shows up in the
// output, only in the wall clock.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"arbods"
)

type point struct {
	seed uint64
	eps  float64
}

type outcome struct {
	weight int64
	rounds int
	ratio  float64
}

func main() {
	w := arbods.ForestUnion(2500, 3, 11)
	g := arbods.UniformWeights(w.G, 100, 5)

	var sweep []point
	for seed := uint64(1); seed <= 4; seed++ {
		for _, eps := range []float64{0.1, 0.2, 0.4} {
			sweep = append(sweep, point{seed: seed, eps: eps})
		}
	}

	run := func(p point, opts ...arbods.Option) (outcome, error) {
		rep, err := arbods.WeightedDeterministic(g, w.ArboricityBound, p.eps,
			append([]arbods.Option{arbods.WithSeed(p.seed)}, opts...)...)
		if err != nil {
			return outcome{}, err
		}
		return outcome{weight: rep.DSWeight, rounds: rep.Rounds(), ratio: rep.CertifiedRatio()}, nil
	}

	// Sequential reference: one warm Runner serves every run.
	seq := make([]outcome, len(sweep))
	r := arbods.NewRunner()
	t0 := time.Now()
	for i, p := range sweep {
		var err error
		if seq[i], err = run(p, arbods.WithRunner(r)); err != nil {
			log.Fatal(err)
		}
	}
	seqWall := time.Since(t0)
	r.Close()

	// The same sweep as a batch: one job per point, slot-ordered results.
	par := make([]outcome, len(sweep))
	jobs := make([]arbods.Job, len(sweep))
	for i, p := range sweep {
		jobs[i] = func(pr *arbods.Runner, workers int) error {
			var err error
			par[i], err = run(p, arbods.WithRunner(pr), arbods.WithWorkers(workers))
			return err
		}
	}
	t0 = time.Now()
	if err := arbods.RunBatch(0, jobs...); err != nil {
		log.Fatal(err)
	}
	parWall := time.Since(t0)

	same := true
	for i := range seq {
		if seq[i] != par[i] {
			same = false
		}
	}
	fmt.Printf("sweep of %d runs on %s (α=%d)\n", len(sweep), w.Name, w.ArboricityBound)
	fmt.Printf("  seed=1 ε=0.2 → weight %d, rounds %d, certified ratio %.3f\n",
		seq[1].weight, seq[1].rounds, seq[1].ratio)
	fmt.Printf("batch results identical to sequential: %v\n", same)
	fmt.Printf("sequential %v, batched %v on GOMAXPROCS=%d\n",
		seqWall.Round(time.Millisecond), parWall.Round(time.Millisecond), runtime.GOMAXPROCS(0))
	if !same {
		log.Fatal("batch sweep diverged from the sequential sweep")
	}
}
