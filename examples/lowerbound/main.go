// The Section 5 lower bound, end to end: build the Figure 1 graph H from a
// bipartite gadget, solve MDS on H with the paper's own algorithm (H has
// arboricity 2), extract a fractional vertex cover of the base graph via
// the Theorem 1.4 reduction, and watch the approximation degrade when the
// algorithm is truncated to fewer rounds — the phenomenon the
// Ω(log Δ/log log Δ) bound says is unavoidable.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"arbods"
)

func main() {
	// A KMW-flavoured biregular bipartite base graph: 12 left nodes of
	// degree 4, 8 right nodes of degree 6.
	base, err := arbods.LowerBoundGadget(12, 4, 6, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base graph G: n=%d, m=%d, Δ=%d (bipartite)\n",
		base.N(), base.M(), base.MaxDegree())

	c, err := arbods.BuildLowerBound(base)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := arbods.ArboricityBounds(c.H)
	fmt.Printf("construction H: Δ²=%d copies, n=%d, m=%d, Δ(H)=%d, arboricity ∈ [%d,%d]\n",
		c.Copies, c.H.N(), c.H.M(), c.H.MaxDegree(), lo, hi)

	// Solve MDS on H with the paper's deterministic algorithm, α = 2.
	rep, err := arbods.UnweightedDeterministic(c.H, 2, 0.2, arbods.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MDS on H: |S|=%d in %d rounds, certified ratio %.2f\n",
		len(rep.DS), rep.Rounds(), rep.CertifiedRatio())

	// The Theorem 1.4 reduction: a dominating set of H induces a fractional
	// vertex cover of G with value ≤ c(1+1/Δ)·OPT_MFVC.
	y := c.ExtractFractionalVC(arbods.MembershipOf(rep))
	if err := arbods.CheckFractionalVertexCover(base, y); err != nil {
		log.Fatal(err)
	}
	var value float64
	for _, yv := range y {
		value += yv
	}
	fmt.Printf("extracted fractional vertex cover of G: value %.2f (feasible ✓)\n", value)

	// Locality: truncate the packing phase and watch quality collapse.
	fmt.Println("\nrounds vs certified approximation on H (truncated runs):")
	fmt.Printf("%12s %8s %8s %10s\n", "iterations", "rounds", "|DS|", "ratio")
	for _, iters := range []int{1, 2, 4, 8, 16, 32} {
		tr, err := truncated(c.H, iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d %8d %8d %10.2f\n", iters, tr.Rounds(), len(tr.DS), tr.CertifiedRatio())
	}
	fmt.Println("\nfewer rounds ⇒ worse approximation: the trade-off Theorem 1.4 proves")
	fmt.Println("is unavoidable on arboricity-2 graphs (Ω(log Δ/log log Δ) rounds for")
	fmt.Println("any poly-logarithmic approximation).")
}

func truncated(h *arbods.Graph, iters int) (*arbods.Report, error) {
	return arbods.TruncatedUnweighted(h, 2, 0.2, iters, arbods.WithSeed(1))
}
