// The CONGEST model, enforced: this example shows what the simulator
// checks rather than assumes — per-edge bandwidth in bits against the
// O(log n) budget (Section 2 of the paper), strict vs audit vs LOCAL
// modes, per-round and per-message-type traffic, and determinism across
// engine parallelism.
//
//	go run ./examples/congestmodel
package main

import (
	"fmt"
	"log"
	"sort"

	"arbods"
)

func main() {
	w := arbods.ForestUnion(1200, 3, 11)
	g := arbods.UniformWeights(w.G, 200, 5)

	// This example runs the same workload six times under different
	// models and worker counts — exactly the repeated-runs pattern a
	// reusable Runner is for: the worker pool, run arenas, and routing
	// tables are built once and shared by every run below.
	r := arbods.NewRunner()
	defer r.Close()

	// A strict CONGEST run with full accounting.
	rep, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2,
		arbods.WithSeed(7), arbods.WithRunner(r),
		arbods.WithRoundStats(), arbods.WithMessageStats())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict CONGEST: budget %d bits/edge/round, peak used %d — %d violations\n",
		rep.Result.Bandwidth, rep.Result.MaxEdgeBits, rep.Result.BandwidthViolations)

	fmt.Println("\nper-round traffic (round: messages, bits, active nodes):")
	for _, st := range rep.Result.RoundStats {
		fmt.Printf("  r%-3d %7d msgs %9d bits %6d active\n",
			st.Round, st.Messages, st.Bits, st.ActiveNodes)
	}

	fmt.Println("\nper-message-type traffic:")
	types := make([]string, 0, len(rep.Result.MessageStats))
	for k := range rep.Result.MessageStats {
		types = append(types, k)
	}
	sort.Strings(types)
	for _, k := range types {
		st := rep.Result.MessageStats[k]
		fmt.Printf("  %-18s %7d msgs %9d bits (%.1f avg)\n",
			k, st.Count, st.Bits, float64(st.Bits)/float64(st.Count))
	}

	// The same algorithm under an absurdly tight budget fails in strict
	// mode and records violations in audit mode.
	if _, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2,
		arbods.WithSeed(7), arbods.WithRunner(r), arbods.WithBandwidth(8)); err != nil {
		fmt.Printf("\n8-bit budget, strict mode: %v\n", err)
	}
	audit, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2,
		arbods.WithSeed(7), arbods.WithRunner(r), arbods.WithBandwidth(8), arbods.WithMode(arbods.CongestAudit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit budget, audit mode: completed with %d violating edge-rounds\n",
		audit.Result.BandwidthViolations)

	// LOCAL mode lifts the limit entirely (the Theorem 1.4 lower bound
	// holds even there).
	local, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2,
		arbods.WithSeed(7), arbods.WithRunner(r), arbods.WithMode(arbods.Local))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LOCAL mode: same result (weight %d vs %d), same rounds (%d vs %d)\n",
		local.DSWeight, rep.DSWeight, local.Rounds(), rep.Rounds())

	// Determinism: 1 worker and 8 workers produce identical outputs.
	seq, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2,
		arbods.WithSeed(7), arbods.WithRunner(r), arbods.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	par, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2,
		arbods.WithSeed(7), arbods.WithRunner(r), arbods.WithWorkers(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("determinism: sequential weight %d == parallel weight %d: %v\n",
		seq.DSWeight, par.DSWeight, seq.DSWeight == par.DSWeight)
}
