// Influence seeding in a social network — the paper motivates bounded
// arboricity with exactly this graph class (§1.1: "many real-world graphs
// are sparse and believed to have low arboricity, for example … graphs
// representing social networks").
//
// A dominating set is a seed set: every user either is a seed or follows
// one. Preferential-attachment graphs have arboricity bounded by the
// attachment parameter, so the paper's algorithm gives an O(α)
// approximation in O(log Δ) rounds, where the classic distributed greedy
// baselines pay O(α·log Δ) or O(log Δ) only in expectation.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"arbods"
)

func main() {
	const (
		users  = 20000
		attach = 4 // links per arriving user → arboricity ≤ ~attach
	)
	w := arbods.BarabasiAlbert(users, attach, 7)
	g := w.G
	lo, hi := arbods.ArboricityBounds(g)
	fmt.Printf("social graph: n=%d, m=%d, Δ=%d, arboricity ∈ [%d,%d] (construction ≤ %d)\n",
		g.N(), g.M(), g.MaxDegree(), lo, hi, w.ArboricityBound)

	type result struct {
		name  string
		seeds int
		round int
		note  string
	}
	var results []result

	det, err := arbods.UnweightedDeterministic(g, w.ArboricityBound, 0.2, arbods.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	if err := arbods.Certify(g, det); err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"this paper (Thm 3.1)", len(det.DS), det.Rounds(),
		fmt.Sprintf("certified ≤ %.2f× OPT", det.CertifiedRatio())})

	rnd, err := arbods.WeightedRandomized(g, w.ArboricityBound, 2, arbods.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"this paper (Thm 1.2, t=2)", len(rnd.DS), rnd.Rounds(),
		fmt.Sprintf("certified ≤ %.2f× OPT", rnd.CertifiedRatio())})

	lw, err := arbods.LWBucketDeterministic(g, arbods.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"LW10-style bucket greedy", len(lw.DS), lw.Rounds(),
		"O(α·log Δ) guarantee"})

	lrg, err := arbods.LRGRandomized(g, arbods.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"LRG (JRS02)", len(lrg.DS), lrg.Rounds(),
		"O(log Δ) expected"})

	greedy := arbods.GreedyCentralized(g)
	results = append(results, result{"centralized greedy", len(greedy.DS), 0,
		"needs global view"})

	fmt.Printf("\n%-28s %8s %8s   %s\n", "algorithm", "seeds", "rounds", "quality")
	for _, r := range results {
		round := "—"
		if r.round > 0 {
			round = fmt.Sprintf("%d", r.round)
		}
		fmt.Printf("%-28s %8d %8s   %s\n", r.name, r.seeds, round, r.note)
	}

	// The packing lower bound makes the comparison honest: no seed set can
	// be smaller than Σx.
	fmt.Printf("\nany seed set needs ≥ %.0f users (dual packing bound)\n", det.PackingSum)
}
