// Quickstart: generate a bounded-arboricity graph, run the paper's main
// algorithm (Theorem 1.1), and verify its certificate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"arbods"
)

func main() {
	// A union of 3 random forests on 2000 nodes has arboricity ≤ 3 by
	// construction — the α the algorithm needs to know.
	w := arbods.ForestUnion(2000, 3, 42)
	g := arbods.UniformWeights(w.G, 100, 7) // weighted instance

	fmt.Printf("graph: %s  (n=%d, m=%d, Δ=%d, α≤%d)\n",
		w.Name, g.N(), g.M(), g.MaxDegree(), w.ArboricityBound)

	// Theorem 1.1: deterministic (2α+1)(1+ε)-approximation of the minimum
	// weight dominating set in O(log(Δ/α)/ε) CONGEST rounds.
	eps := 0.2
	rep, err := arbods.WeightedDeterministic(g, w.ArboricityBound, eps, arbods.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dominating set: %d nodes, weight %d\n", len(rep.DS), rep.DSWeight)
	fmt.Printf("rounds: %d   messages: %d   total bits: %d\n",
		rep.Rounds(), rep.Messages(), rep.Result.TotalBits)

	// Every run carries a dual-packing certificate: Σx ≤ OPT (Lemma 2.1),
	// so w(DS)/Σx bounds the true approximation ratio from above.
	fmt.Printf("packing lower bound on OPT: %.1f\n", rep.PackingSum)
	fmt.Printf("certified ratio: %.2f  (guarantee: (2α+1)(1+ε) = %.2f)\n",
		rep.CertifiedRatio(), rep.Factor)

	// Distrust-but-verify: recheck domination, packing feasibility, and the
	// ratio certificate from scratch.
	if err := arbods.Certify(g, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Println("certificate verified ✓")
}
