// Planar graphs — the flagship member of the bounded-arboricity class
// (§1.1: planar graphs, bounded treewidth/genus, minor-closed families all
// have bounded arboricity).
//
// Grid graphs are planar and bipartite, so arboricity ≤ 2, and the paper's
// algorithm guarantees a (2·2+1)(1+ε) = 5(1+ε) approximation in O(log Δ/ε)
// rounds — with Δ = 4, effectively constant. The example also demonstrates
// the unknown-parameter variants (Remarks 4.4/4.5): the same grid solved by
// nodes that know neither Δ nor α.
//
//	go run ./examples/planar
package main

import (
	"fmt"
	"log"

	"arbods"
)

func main() {
	w := arbods.Grid(60, 60)
	// City-block model: street intersections with installation costs.
	g := arbods.UniformWeights(w.G, 50, 31)
	fmt.Printf("planar graph: %s, n=%d, m=%d, Δ=%d, arboricity ≤ %d\n",
		w.Name, g.N(), g.M(), g.MaxDegree(), w.ArboricityBound)

	det, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2, arbods.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	if err := arbods.Certify(g, det); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Thm 1.1 (knows Δ, α):   %4d facilities, cost %6d, %3d rounds, ≤%.2f× OPT\n",
		len(det.DS), det.DSWeight, det.Rounds(), det.CertifiedRatio())

	ud, err := arbods.UnknownDelta(g, w.ArboricityBound, 0.2, arbods.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Remark 4.4 (no Δ):      %4d facilities, cost %6d, %3d rounds, ≤%.2f× OPT\n",
		len(ud.DS), ud.DSWeight, ud.Rounds(), ud.CertifiedRatio())

	ua, err := arbods.UnknownAlpha(g, 0.2, arbods.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Remark 4.5 (only n):    %4d facilities, cost %6d, %3d rounds, ≤%.2f× OPT\n",
		len(ua.DS), ua.DSWeight, ua.Rounds(), ua.CertifiedRatio())

	// Exact ground truth on a small grid for a true ratio, not just a
	// certified one.
	small := arbods.Grid(4, 8)
	sg := arbods.UniformWeights(small.G, 50, 31)
	opt, err := arbods.ExactSmall(sg)
	if err != nil {
		log.Fatal(err)
	}
	sdet, err := arbods.WeightedDeterministic(sg, 2, 0.2, arbods.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s ground truth: OPT=%d, Thm 1.1 found %d → true ratio %.2f (bound %.2f)\n",
		small.Name, opt.Weight, sdet.DSWeight,
		float64(sdet.DSWeight)/float64(opt.Weight), sdet.Factor)

	// Forests inside the family: one-round 3-approximation (Observation A.1).
	tree := arbods.RandomTree(3600, 17)
	tri, err := arbods.TreeThreeApprox(tree.G)
	if err != nil {
		log.Fatal(err)
	}
	topt, err := arbods.ExactForest(tree.G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbonus, %s: Obs A.1 takes %d nodes in %d rounds; OPT=%d (ratio %.2f ≤ 3)\n",
		tree.Name, len(tri.DS), tri.Rounds(), topt.Weight,
		float64(tri.DSWeight)/float64(topt.Weight))
}
