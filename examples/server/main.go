// Serving: run the arbods daemon in-process, upload a graph over HTTP,
// solve it twice, and inspect the verification receipt — the same round
// trip a production client of cmd/arbods-server performs.
//
//	go run ./examples/server
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"arbods"
	"arbods/internal/server"
)

func main() {
	// The handler behind cmd/arbods-server, embeddable in any http.Server.
	srv, err := server.New(server.Config{PoolSize: 2})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close() // release the RunnerPool after the HTTP side has drained
	}()

	// Upload: graphs travel in the arbods text format and are cached as
	// built CSRs under their content hash, so re-uploads and repeat solves
	// never rebuild.
	w := arbods.ForestUnion(5000, 3, 42)
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, w.G); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", &buf)
	if err != nil {
		log.Fatal(err)
	}
	var info server.GraphInfo
	decode(resp, &info)
	fmt.Printf("uploaded %s: n=%d m=%d α≤%d\n", info.ID[:17], info.Nodes, info.Edges, info.Alpha)

	// Solve by content hash. The answer ships with a receipt: coverage
	// proof, packing feasibility, and the α-bound ratio check, recomputed
	// server-side so the client verifies instead of trusting.
	solve := func() (bool, *arbods.Receipt) {
		req, _ := json.Marshal(server.SolveRequest{
			Graph: info.ID, Algorithm: "thm1.1", Alpha: 3, Eps: 0.2, Seed: 1,
		})
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(req))
		if err != nil {
			log.Fatal(err)
		}
		var out struct {
			CacheHit bool            `json:"cacheHit"`
			Receipt  *arbods.Receipt `json:"receipt"`
		}
		decode(resp, &out)
		return out.CacheHit, out.Receipt
	}

	for i := 1; i <= 2; i++ {
		hit, rec := solve()
		fmt.Printf("solve %d (cacheHit=%v): %s picked %d nodes in %d rounds\n",
			i, hit, rec.Algorithm, rec.SetSize, rec.Rounds)
		for _, c := range rec.Checks {
			status := "pass"
			if c.Skipped {
				status = "skip"
			} else if !c.Pass {
				status = "FAIL"
			}
			fmt.Printf("  [%s] %-10s %s\n", status, c.Name, c.Detail)
		}
		if !rec.OK {
			log.Fatal("receipt failed verification")
		}
	}
	fmt.Println("receipts verified ✓")
}

func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
