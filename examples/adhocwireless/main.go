// Ad-hoc wireless clustering — the paper's motivating application (§1:
// "clustering and routing in ad-hoc networks").
//
// Sensors are scattered in the unit square and can talk within a fixed
// radio range (a unit-disk graph). A dominating set is a set of cluster
// heads: every sensor either is one or hears one directly. Each sensor has
// a cost of serving as a head (inverse remaining battery), so we want a
// *minimum weight* dominating set — exactly the problem Theorem 1.1 solves
// distributedly, with each sensor exchanging only O(log n)-bit radio
// messages with its neighbors.
//
//	go run ./examples/adhocwireless
package main

import (
	"fmt"
	"log"

	"arbods"
)

func main() {
	const (
		sensors = 3000
		radius  = 0.035
	)
	w := arbods.Geometric(sensors, radius, 2024)
	// Battery cost: heavy-tailed — a few sensors are nearly drained.
	g := arbods.ExponentialWeights(w.G, 40, 99)

	// Unit-disk graphs have no construction-time arboricity bound; the
	// degeneracy is a certified upper bound (α ≤ degeneracy ≤ 2α−1).
	lo, hi := arbods.ArboricityBounds(g)
	fmt.Printf("sensor network: n=%d, m=%d, Δ=%d, arboricity ∈ [%d,%d]\n",
		g.N(), g.M(), g.MaxDegree(), lo, hi)

	rep, err := arbods.WeightedDeterministic(g, hi, 0.25, arbods.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	if err := arbods.Certify(g, rep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster heads (Thm 1.1): %d heads, total battery cost %d\n",
		len(rep.DS), rep.DSWeight)
	fmt.Printf("  %d radio rounds, %d messages, peak %d bits on one link per round (budget %d)\n",
		rep.Rounds(), rep.Messages(), rep.Result.MaxEdgeBits, rep.Result.Bandwidth)
	fmt.Printf("  certified within %.2f× of the optimal cost\n", rep.CertifiedRatio())

	// The randomized Theorem 1.2 refinement trades rounds for cost.
	rand, err := arbods.WeightedRandomized(g, hi, 2, arbods.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster heads (Thm 1.2, t=2): %d heads, cost %d, %d rounds\n",
		len(rand.DS), rand.DSWeight, rand.Rounds())

	// A centralized planner with global knowledge (greedy) for reference —
	// unavailable in a real deployment, but a useful quality yardstick.
	greedy := arbods.GreedyCentralized(g)
	fmt.Printf("centralized greedy reference: %d heads, cost %d\n",
		len(greedy.DS), greedy.Weight)

	// Sanity: how much battery would naive "everyone is a head" burn?
	fmt.Printf("naive all-heads cost: %d (%.1f× the Thm 1.1 solution)\n",
		g.TotalWeight(), float64(g.TotalWeight())/float64(rep.DSWeight))
}
