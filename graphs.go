package arbods

import (
	"io"

	"arbods/internal/arbor"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// Graph is an immutable simple undirected graph with positive integer node
// weights. Build one with NewBuilder, a generator, or DecodeGraph.
type Graph = graph.Graph

// Builder accumulates nodes and edges and produces an immutable Graph.
type Builder = graph.Builder

// Workload is a generated graph plus the arboricity bound its construction
// guarantees (0 when it guarantees none) — the value to pass as the α
// parameter of the algorithms.
type Workload = gen.Result

// MaxWeight bounds node weights (the paper assumes integer weights
// polynomial in n).
const MaxWeight = graph.MaxWeight

// NewBuilder returns a builder for a graph on n nodes (IDs 0..n-1), all
// with weight 1 until SetWeight is called.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// EncodeGraph writes g in the arbods text format.
func EncodeGraph(w io.Writer, g *Graph) error { return graph.Encode(w, g) }

// DecodeGraph reads a graph in the arbods text format.
func DecodeGraph(r io.Reader) (*Graph, error) { return graph.Decode(r) }

// EncodeGraphBinary writes g in the arbods binary CSR format — the
// checksummed on-disk representation arbods-server snapshots use. Decoding
// is array fills instead of text parsing, so large corpora load in
// milliseconds.
func EncodeGraphBinary(w io.Writer, g *Graph) error { return graph.EncodeBinary(w, g) }

// DecodeGraphBinary reads a graph in the arbods binary CSR format,
// verifying the checksum and re-validating every structural invariant.
func DecodeGraphBinary(r io.Reader) (*Graph, error) { return graph.DecodeBinary(r) }

// Generators. Each returns a Workload whose ArboricityBound field records
// the α the construction guarantees; see the paper's §1.1 for why these
// families matter (planar graphs, bounded treewidth, social networks, …).

// Path returns the path on n nodes (arboricity 1).
func Path(n int) Workload { return gen.Path(n) }

// Cycle returns the cycle on n ≥ 3 nodes (arboricity 2).
func Cycle(n int) Workload { return gen.Cycle(n) }

// Star returns a star with n−1 leaves (arboricity 1).
func Star(n int) Workload { return gen.Star(n) }

// Complete returns K_n (arboricity ⌈n/2⌉).
func Complete(n int) Workload { return gen.Complete(n) }

// RandomTree returns a uniform-attachment random tree (arboricity 1).
func RandomTree(n int, seed uint64) Workload { return gen.RandomTree(n, seed) }

// BalancedTree returns the complete k-ary tree of the given depth.
func BalancedTree(k, depth int) Workload { return gen.BalancedTree(k, depth) }

// Caterpillar returns a spine path with legs leaves per spine node
// (arboricity 1).
func Caterpillar(spine, legs int) Workload { return gen.Caterpillar(spine, legs) }

// Broom returns a path with a burst of leaves at one end: arboricity 1 with
// a controllable maximum degree.
func Broom(pathLen, leaves int) Workload { return gen.Broom(pathLen, leaves) }

// ForestUnion returns the union of k random forests on n shared nodes —
// arboricity ≤ k by the Nash–Williams definition.
func ForestUnion(n, k int, seed uint64) Workload { return gen.ForestUnion(n, k, seed) }

// Grid returns the rows×cols grid (planar bipartite; arboricity ≤ 2).
func Grid(rows, cols int) Workload { return gen.Grid(rows, cols) }

// Torus returns the rows×cols torus (arboricity ≤ 3).
func Torus(rows, cols int) Workload { return gen.Torus(rows, cols) }

// Hypercube returns the d-dimensional hypercube.
func Hypercube(d int) Workload { return gen.Hypercube(d) }

// ErdosRenyi returns G(n, p).
func ErdosRenyi(n int, p float64, seed uint64) Workload { return gen.ErdosRenyi(n, p, seed) }

// BarabasiAlbert returns a preferential-attachment graph (arboricity
// bounded by the attachment parameter — the paper's model for web/social
// graphs).
func BarabasiAlbert(n, attach int, seed uint64) Workload { return gen.BarabasiAlbert(n, attach, seed) }

// RandomBipartite returns a random bipartite graph with sides a and b.
func RandomBipartite(a, b int, p float64, seed uint64) Workload {
	return gen.RandomBipartite(a, b, p, seed)
}

// Geometric returns a unit-disk-style graph on n random points — the
// ad-hoc wireless workload of the paper's motivation.
func Geometric(n int, radius float64, seed uint64) Workload { return gen.Geometric(n, radius, seed) }

// Weight assigners (copy-on-write: the input graph is never mutated).

// UniformWeights draws node weights uniformly from [1, max].
func UniformWeights(g *Graph, max int64, seed uint64) *Graph {
	return gen.UniformWeights(g, max, seed)
}

// ExponentialWeights draws heavy-tailed integer weights with the given
// scale.
func ExponentialWeights(g *Graph, scale float64, seed uint64) *Graph {
	return gen.ExponentialWeights(g, scale, seed)
}

// DegreeWeights sets w_v = 1 + factor·deg(v).
func DegreeWeights(g *Graph, factor int64, seed uint64) *Graph {
	return gen.DegreeWeights(g, factor, seed)
}

// Arboricity machinery.

// ArboricityBounds returns certified lower and upper bounds on α(g)
// (Nash–Williams densities and degeneracy; α ≤ degeneracy ≤ 2α−1).
func ArboricityBounds(g *Graph) (lo, hi int) { return arbor.Bounds(g) }

// Degeneracy returns a degeneracy peeling order and the degeneracy of g.
func Degeneracy(g *Graph) (order []int, degeneracy int) { return arbor.Degeneracy(g) }

// Orientation is a direction assignment for every edge.
type Orientation = arbor.Orientation

// OrientGreedy returns the degeneracy orientation of g, whose out-degree is
// at most degeneracy(g) ≤ 2α−1 (Observation 3.5 is the α version).
func OrientGreedy(g *Graph) *Orientation { return arbor.GreedyOrientation(g) }
