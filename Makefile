# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: build test race vet fmt-check bench bench-json bench-compare alloc-gate batch-race server-race chaos-race cluster-race ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:" >&2; echo "$$out" >&2; exit 1; fi

# Engine-scale benchmarks (the million-node routing benchmark included).
bench:
	$(GO) test ./internal/congest/ -run 'xxx' -bench . -benchtime 1x

# Machine-readable experiment record; commit one per milestone as
# BENCH_$(shell date +%F)_small.json to extend the perf trajectory.
bench-json:
	$(GO) run ./cmd/mdsbench -scale small -seed 1 -format json

# Compare two committed engine-benchmark records (benchstat format). The
# defaults pin the PR 7 context-aware engine against the PR 9 staged
# parallel router (degree-weighted shards + drain/merge staging; the
# workers=4 rows are where the change shows); override with
# BENCH_OLD=/BENCH_NEW= to compare other points on the trajectory
# (PR 1's, PR 3's, PR 4's, and PR 5's records are also committed). Note
# each record's numcpu/gomaxprocs header before reading workers>1 rows
# as a scaling curve — single-core records measure dispatch overhead,
# not scaling. Uses benchstat when available (CI installs it); falls
# back to printing both records side by side offline.
BENCH_OLD ?= BENCH_2026-08-07_engine_pr7.txt
BENCH_NEW ?= BENCH_2026-08-07_engine_pr9.txt
bench-compare:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_OLD) $(BENCH_NEW); \
	else \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest);"; \
		echo "raw records:"; \
		echo "--- $(BENCH_OLD)"; grep Benchmark $(BENCH_OLD); \
		echo "--- $(BENCH_NEW)"; grep Benchmark $(BENCH_NEW); \
	fi

# Allocation-regression gate: a mid-size run must stay within the
# testing.AllocsPerRun ceilings of TestAllocationCeiling (O(1) allocs on a
# reused Runner; far below one-per-node transient). Runs inside the normal
# test suite too; this target exists so CI (and humans) can exercise it
# explicitly next to bench-compare.
alloc-gate:
	$(GO) test ./internal/congest/ -run TestAllocationCeiling -count=1 -v

# Race-mode batch smoke: the concurrent RunnerPool/Batch paths (slot
# determinism, aborted-job recovery, checkout under contention,
# context-cancelled checkouts and batches) and the bench layer's
# parallel-vs-sequential table identity plus sweep cancellation, under
# the race detector. Runs inside `make race` too; this target exists so
# CI (and humans) can exercise exactly the batch stack next to
# alloc-gate.
batch-race:
	$(GO) test ./internal/congest/ -race -run 'TestBatch|TestRunBatch|TestRunnerPool|TestGetContext' -count=1
	$(GO) test ./internal/bench/ -race -run 'TestParallelMatchesSequential|TestSweepCancellation' -count=1

# Race-mode serving smoke: the arbods-server stack (content-addressed
# graph cache, solve-response cache, singleflight builds, admission
# control, deadline/disconnect cancellation, pooled solves with Detach
# hand-off, NDJSON streaming) plus the daemon round trip and the
# engine-side Detach/observer/context tests, under the race detector.
# Runs inside `make race` too; this target exists so CI (and humans)
# can exercise exactly the serving stack next to batch-race.
server-race:
	$(GO) test ./internal/server/ ./cmd/arbods-server/ -race -count=1
	$(GO) test ./internal/congest/ -race -run 'TestDetach|TestRoundObserver|TestRunContext|TestGetContext' -count=1

# Race-mode chaos smoke: the fault-tolerance stack under deterministic
# injection (internal/faultinject) — proc-panic isolation and Runner
# replacement, snapshot persistence across restart/corruption/write
# failure, fairness and admission shedding, drain readiness, the engine's
# own panic-recovery tests, and the SIGKILL crash-restart test on the
# real daemon binary. Runs inside `make race` too; this target exists so
# CI (and humans) can exercise exactly the failure paths next to
# server-race.
chaos-race:
	$(GO) test ./internal/server/ -race -run 'TestSolvePanicIsolation|TestSnapshot|TestHotGraphShed|TestQueueFullShed|TestReadyzDrain' -count=1
	$(GO) test ./internal/congest/ -race -run 'TestProcPanic|TestPanicIn|TestRunnerPoolReplacesPoisoned|TestFaultInjection' -count=1
	$(GO) test ./internal/faultinject/ -race -count=1
	$(GO) test ./internal/graph/ -race -run 'TestBinary' -count=1
	$(GO) test ./cmd/arbods-server/ -race -run 'TestCrashRestart' -count=1

# Race-mode cluster smoke: the resilient-serving stack — rendezvous
# ownership and probe health (internal/cluster), the retry/backoff/
# breaker client with receipt verification (client), the in-process
# proxy/replication/fallback/partition tests, and the real-binary
# SIGKILL + blackhole failover acceptance test. Runs inside `make race`
# too; this target exists so CI (and humans) can exercise exactly the
# failover paths next to chaos-race.
cluster-race:
	$(GO) test ./internal/cluster/ ./client/ -race -count=1
	$(GO) test ./internal/server/ -race -run 'TestCluster|TestAdaptiveRetryAfter' -count=1
	$(GO) test ./cmd/arbods-server/ -race -run 'TestClusterChaosFailover' -count=1

ci: build vet fmt-check race
