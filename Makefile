# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: build test race vet fmt-check bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to run on:" >&2; echo "$$out" >&2; exit 1; fi

# Engine-scale benchmarks (the million-node routing benchmark included).
bench:
	$(GO) test ./internal/congest/ -run 'xxx' -bench . -benchtime 1x

# Machine-readable experiment record; commit one per milestone as
# BENCH_$(shell date +%F)_small.json to extend the perf trajectory.
bench-json:
	$(GO) run ./cmd/mdsbench -scale small -seed 1 -format json

ci: build vet fmt-check race
