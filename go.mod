module arbods

go 1.24
