package arbods_test

// Build-and-run smoke coverage for examples/: each example main must
// keep compiling and exiting cleanly, so the nine entry points named in
// the documentation can never silently rot. The test shells out to the
// go tool (examples are package main, unreachable from library tests).

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test shells out to the go tool")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	mains, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) != 9 {
		t.Fatalf("found %d example mains, want 9 (update this test when adding examples): %v",
			len(mains), mains)
	}
	for _, main := range mains {
		dir := filepath.Dir(main)
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, goTool, "run", "./"+dir)
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run ./%s produced no output", dir)
			}
		})
	}
}
