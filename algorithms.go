package arbods

import (
	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/lower"
	"arbods/internal/mds"
	"arbods/internal/orient"
)

// Report summarizes one algorithm run: the dominating set, its weight, the
// dual-packing certificate, and simulator statistics. See CertifiedRatio.
type Report = mds.Report

// NodeOutput is the per-node result inside Report.Result.Outputs.
type NodeOutput = mds.Output

// Result is the raw simulator outcome inside Report.Result: per-node
// outputs plus the transcript statistics (rounds, messages, bits,
// bandwidth accounting). Its Detach method deep-copies a result produced
// under WithRecycledResult off the Runner-owned memory; see
// WithRecycledResult for the lifetime contract.
type Result = congest.Result[NodeOutput]

// RoundStat is one round's traffic, recorded by WithRoundStats and
// streamed live by WithRoundObserver.
type RoundStat = congest.RoundStat

// MessageStat aggregates one message type's traffic inside
// Report.Result.MessageStats (recorded by WithMessageStats).
type MessageStat = congest.MessageStat

// Option configures a run (seed, workers, communication model, …).
type Option = congest.Option

// Mode selects the communication model for WithMode.
type Mode = congest.Mode

// Communication models: Congest enforces the O(log n)-bit budget strictly,
// CongestAudit records violations without failing, Local lifts the limit.
const (
	Congest      = congest.Congest
	CongestAudit = congest.CongestAudit
	Local        = congest.Local
)

// WithSeed sets the run seed for all per-node randomness.
func WithSeed(seed uint64) Option { return congest.WithSeed(seed) }

// WithWorkers sets the simulator's goroutine count (1 = sequential
// engine; 0 = adaptive — sequential below a size crossover, GOMAXPROCS
// above it; results are bit-identical for any value).
func WithWorkers(w int) Option { return congest.WithWorkers(w) }

// WithMode selects the communication model (default Congest).
func WithMode(m Mode) Option { return congest.WithMode(m) }

// WithBandwidth overrides the per-edge per-round bit budget.
func WithBandwidth(bits int) Option { return congest.WithBandwidth(bits) }

// WithMaxRounds bounds the simulated rounds (exceeding it is an error).
func WithMaxRounds(r int) Option { return congest.WithMaxRounds(r) }

// WithRoundStats records per-round traffic in Report.Result.RoundStats.
func WithRoundStats() Option { return congest.WithRoundStats() }

// WithMessageStats records per-message-type counts and bit volumes in
// Report.Result.MessageStats.
func WithMessageStats() Option { return congest.WithMessageStats() }

// WithRoundObserver calls fn after every completed round with that
// round's traffic — the live-streaming form of WithRoundStats, used by
// arbods-server to push round-level progress to clients while a long run
// executes. fn runs on the run's coordinating goroutine; keep it cheap.
func WithRoundObserver(fn func(RoundStat)) Option { return congest.WithRoundObserver(fn) }

// WithKnownMaxDegree exposes Δ to the nodes via NodeInfo — the paper's
// default knowledge assumption (Remark 4.4 drops it). The algorithm
// wrappers in this package already set it where the paper assumes it;
// export is for callers driving congest procs directly.
func WithKnownMaxDegree() Option { return congest.WithKnownMaxDegree() }

// WithKnownArboricity exposes the given arboricity bound α to the nodes
// via NodeInfo — the paper's default knowledge assumption (Remark 4.5
// drops it). The algorithm wrappers already pass their α parameter
// through; export is for callers driving congest procs directly.
func WithKnownArboricity(alpha int) Option { return congest.WithKnownArboricity(alpha) }

// Runner is reusable simulator state: the worker pool, the run arenas, and
// the graph-derived routing tables, amortized across runs. Create one with
// NewRunner, pass it to every run with WithRunner, and Close it when done.
// Reuse across different graphs and different algorithms is fine; runs
// sharing a Runner must be sequential. Results are identical with or
// without one — a Runner only removes per-run setup cost.
type Runner = congest.Runner

// NewRunner returns an empty Runner; state is built lazily by the first
// run it serves and reused afterwards. This is the serving pattern: one
// Runner per worker loop, many runs.
func NewRunner() *Runner { return congest.NewRunner() }

// WithRunner executes the run on a reusable Runner instead of transient
// per-run state.
func WithRunner(r *Runner) Option { return congest.WithRunner(r) }

// WithRecycledResult assembles Report.Result.Outputs (and MessageStats)
// on Runner-owned memory, eliminating the last graph-sized per-run
// allocations of a warm serving loop. The result's Outputs/MessageStats
// are then valid only until the same Runner's next run — copy what must
// outlive it. Values are identical with and without the option.
func WithRecycledResult() Option { return congest.WithRecycledResult() }

// RunnerPool is a bounded, goroutine-safe set of reusable Runners for
// concurrent batch execution: workers Get a Runner, run on it, and Put it
// back, so at most Size runs are in flight and every Runner keeps its
// warmed state between checkouts. Workers() is the per-run engine worker
// budget (GOMAXPROCS split across the pool) that keeps run-level and
// engine-level parallelism from oversubscribing the machine.
type RunnerPool = congest.RunnerPool

// NewRunnerPool builds a pool of size Runners (size ≤ 0 = GOMAXPROCS).
func NewRunnerPool(size int) *RunnerPool { return congest.NewRunnerPool(size) }

// Job is one independent unit of a batch — typically one simulator run of
// a sweep. It receives its checked-out Runner and worker budget; pass
// them along as WithRunner(r) and WithWorkers(workers), and write results
// only into state the job owns (its slot of a caller-owned slice), so
// batch results are identical to the sequential sweep.
type Job = congest.Job

// Batch schedules independent jobs across a RunnerPool with bounded
// parallelism and deterministic (submission-ordered) error reporting.
// Create one per phase with RunnerPool.Batch, Submit jobs, then Wait.
type Batch = congest.Batch

// RunBatch executes jobs with at most parallel in flight (≤ 0 =
// GOMAXPROCS) on a transient RunnerPool and returns the first error in
// submission order. parallel = 1 is a plain sequential loop on one
// reusable Runner — results are identical for every parallelism.
func RunBatch(parallel int, jobs ...Job) error { return congest.RunBatch(parallel, jobs...) }

// UnweightedDeterministic runs the Section 3 algorithm (Theorem 3.1):
// deterministic (2α+1)(1+ε)-approximate dominating set on unweighted graphs
// with arboricity ≤ alpha in O(log(Δ/α)/ε) CONGEST rounds.
func UnweightedDeterministic(g *Graph, alpha int, eps float64, opts ...Option) (*Report, error) {
	return mds.UnweightedDeterministic(g, alpha, eps, opts...)
}

// WeightedDeterministic runs the Theorem 1.1 algorithm: deterministic
// (2α+1)(1+ε)-approximate *weighted* dominating set in O(log(Δ/α)/ε)
// CONGEST rounds.
func WeightedDeterministic(g *Graph, alpha int, eps float64, opts ...Option) (*Report, error) {
	return mds.WeightedDeterministic(g, alpha, eps, opts...)
}

// WeightedRandomized runs the Theorem 1.2 algorithm: expected
// (α+O(α/t))-approximation in O(t·log Δ) rounds, 1 ≤ t ≤ α/log α.
func WeightedRandomized(g *Graph, alpha, t int, opts ...Option) (*Report, error) {
	return mds.WeightedRandomized(g, alpha, t, opts...)
}

// GeneralGraphs runs the Theorem 1.3 algorithm on arbitrary graphs:
// expected Δ^{1/k}(Δ^{1/k}+1)(k+1) = O(kΔ^{2/k}) approximation in O(k²)
// rounds.
func GeneralGraphs(g *Graph, k int, opts ...Option) (*Report, error) {
	return mds.GeneralGraphs(g, k, opts...)
}

// PartialDominatingSet runs Lemma 4.1 alone: a partial dominating set S
// with the packing properties (a) and (b); remaining nodes stay
// undominated. Requires 0 < λ < 1/((α+1)(1+ε)).
func PartialDominatingSet(g *Graph, alpha int, eps, lambda float64, opts ...Option) (*Report, error) {
	return mds.PartialWeighted(g, alpha, eps, lambda, opts...)
}

// UnknownDelta runs the Remark 4.4 variant (no global knowledge of Δ).
func UnknownDelta(g *Graph, alpha int, eps float64, opts ...Option) (*Report, error) {
	return mds.UnknownDelta(g, alpha, eps, opts...)
}

// UnknownAlpha runs the Remark 4.5 variant (nodes know only n): a
// distributed H-partition orientation computes local arboricity estimates
// first.
func UnknownAlpha(g *Graph, eps float64, opts ...Option) (*Report, error) {
	return mds.UnknownAlpha(g, eps, opts...)
}

// TruncatedUnweighted runs the Section 3 packing phase for exactly iters
// iterations and then self-completes: deliberately too local, to expose the
// Theorem 1.4 phenomenon (fewer rounds ⇒ worse approximation). The result
// is a valid dominating set with a feasible packing; only the ratio
// guarantee is forfeited.
func TruncatedUnweighted(g *Graph, alpha int, eps float64, iters int, opts ...Option) (*Report, error) {
	return mds.TruncatedUnweighted(g, alpha, eps, iters, opts...)
}

// TreeThreeApprox runs the Observation A.1 algorithm: on forests, all
// non-leaf nodes form a 3-approximation, computed in one communication
// round.
func TreeThreeApprox(g *Graph, opts ...Option) (*Report, error) {
	return mds.TreeThreeApprox(g, opts...)
}

// Baselines (prior work).

// BaselineResult is the outcome of a centralized baseline.
type BaselineResult = baseline.GreedyResult

// GreedyCentralized runs the classic sequential greedy
// (ln(Δ+1)-approximation, [Joh74]).
func GreedyCentralized(g *Graph) BaselineResult { return baseline.Greedy(g) }

// SunResult is the Sun21-style solver's outcome (set + integer packing).
type SunResult = baseline.SunResult

// SunCentralized runs the Sun21-style centralized primal–dual with reverse
// delete — the §1.3 comparison point that does not translate to CONGEST
// (its reverse-delete pass is inherently sequential). It returns its own
// integer packing certificate.
func SunCentralized(g *Graph) SunResult { return baseline.Sun(g) }

// ExactSmall computes the exact optimum: forests of any size via the
// linear-time DP, other graphs up to 64 nodes via branch and bound.
func ExactSmall(g *Graph) (BaselineResult, error) { return baseline.Exact(g) }

// ExactForest computes the exact optimum on forests of any size.
func ExactForest(g *Graph) (BaselineResult, error) { return baseline.ExactForest(g) }

// LWBucketDeterministic runs the Lenzen–Wattenhofer-style deterministic
// bucket greedy: O(log Δ) rounds, O(α·log Δ)-approximation on arboricity-α
// graphs. Unweighted only.
func LWBucketDeterministic(g *Graph, opts ...Option) (*Report, error) {
	return baseline.LWDeterministic(g, opts...)
}

// LRGRandomized runs the local randomized greedy of Jia–Rajaraman–Suel:
// expected O(log Δ)-approximation. Unweighted only.
func LRGRandomized(g *Graph, opts ...Option) (*Report, error) {
	return baseline.LRGRandomized(g, opts...)
}

// KW05 runs the Kuhn–Wattenhofer-style O(k²)-round fractional+rounding
// algorithm with expected O(kΔ^{2/k}·log Δ)-approximation — the general
// graph baseline Theorem 1.3 improves by a log Δ factor. Returns the
// report and the fractional phase's value. Unweighted only.
func KW05(g *Graph, k int, opts ...Option) (*Report, float64, error) {
	return baseline.KW05(g, k, opts...)
}

// Lower bound (Section 5).

// LowerBoundConstruction is the Figure 1 graph H built from a bipartite
// base graph, with the Theorem 1.4 reduction attached.
type LowerBoundConstruction = lower.Construction

// BuildLowerBound constructs H from a bipartite base graph.
func BuildLowerBound(base *Graph) (*LowerBoundConstruction, error) { return lower.Build(base) }

// LowerBoundGadget generates a KMW-flavoured biregular bipartite base
// graph: nl left nodes of degree dl, right nodes of degree dr.
func LowerBoundGadget(nl, dl, dr int, seed uint64) (*Graph, error) {
	return lower.Gadget(nl, dl, dr, seed)
}

// LayeredLowerBoundGadget generates a layered cluster-tree-style bipartite
// base graph: depth+1 levels shrinking by delta, with down-degree delta and
// up-degree delta² — the KMW degree-disparity pattern.
func LayeredLowerBoundGadget(n0, delta, depth int, seed uint64) (*Graph, error) {
	return lower.LayeredGadget(n0, delta, depth, seed)
}

// DistributedOrientation runs the Barenboim–Elkin-style H-partition as a
// standalone CONGEST algorithm: pass alpha > 0 for the known-bound variant
// (out-degree ≤ (2+ε)α in O(log n/ε) rounds), alpha == 0 for doubling
// (out-degree ≤ (2+ε)·2α, O(log α·log n/ε) rounds).
func DistributedOrientation(g *Graph, alpha int, eps float64, opts ...Option) ([][]int32, int, error) {
	res, err := orient.Run(g, alpha, eps, opts...)
	if err != nil {
		return nil, 0, err
	}
	out := make([][]int32, len(res.Outputs))
	maxOut := 0
	for v, o := range res.Outputs {
		out[v] = o.Out
		if len(o.Out) > maxOut {
			maxOut = len(o.Out)
		}
	}
	return out, res.Rounds, nil
}
