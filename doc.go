// Package arbods implements the distributed minimum (weighted) dominating
// set algorithms of Dory, Ghaffari, and Ilchi, "Near-Optimal Distributed
// Dominating Set in Bounded Arboricity Graphs" (PODC 2022,
// arXiv:2206.05174), together with the substrates needed to run, verify,
// and benchmark them: a CONGEST/LOCAL round simulator with per-edge
// bandwidth accounting, graph generators for every workload family the
// paper motivates, arboricity machinery, prior-work baselines, and the
// Section 5 lower-bound construction.
//
// # Quick start
//
//	w := arbods.ForestUnion(1000, 3, 42) // α ≤ 3 by construction
//	rep, err := arbods.WeightedDeterministic(w.G, w.ArboricityBound, 0.2,
//		arbods.WithSeed(1))
//	if err != nil { ... }
//	fmt.Println(rep.DSWeight, rep.Rounds(), rep.CertifiedRatio())
//
// Every run returns a Report carrying a dual-packing certificate
// (Lemma 2.1 of the paper): CertifiedRatio() = w(DS)/Σx is an exactly
// checkable upper bound on the true approximation ratio, because Σx ≤ OPT.
//
// # Algorithms
//
//   - UnweightedDeterministic — Theorem 3.1, (2α+1)(1+ε)-approximation in
//     O(log(Δ/α)/ε) CONGEST rounds;
//   - WeightedDeterministic — Theorem 1.1, the weighted version (the first
//     distributed algorithm for weighted MDS on bounded arboricity graphs);
//   - WeightedRandomized — Theorem 1.2, expected (α+O(α/t))-approximation
//     in O(t·log Δ) rounds;
//   - GeneralGraphs — Theorem 1.3, expected O(kΔ^{2/k})-approximation in
//     O(k²) rounds on arbitrary graphs;
//   - PartialDominatingSet — Lemma 4.1 by itself;
//   - UnknownDelta / UnknownAlpha — the Remark 4.4 / 4.5 variants;
//   - TreeThreeApprox — Observation A.1, one-round 3-approximation on
//     forests;
//   - baselines: GreedyCentralized, ExactSmall/ExactForest,
//     LWBucketDeterministic, LRGRandomized.
//
// # Model
//
// Algorithms execute on a simulated synchronous network whose topology is
// the input graph (the CONGEST model of the paper's Section 2). The
// simulator enforces the O(log n)-bit message bound — messages are packed
// wire words (a 4-bit tag plus at most two uint64 payload words) whose bit
// cost is fixed at pack time from per-field accounting, and Strict mode
// fails the run on a budget violation — and reports rounds, message and
// bit counts. Message delivery uses a reverse-edge index precomputed at
// graph build time, so the hot path does no searching, boxing, or
// reflection. Runs are deterministic given WithSeed, independent of
// WithWorkers: parallel runs shard senders and receivers by cumulative
// degree and merge staged traffic back in exact (sender ID, send index)
// order, so every worker count — including WithWorkers(0), which picks
// adaptively by graph size — produces a bit-identical transcript.
//
// # Serving pattern
//
// Run state — the worker pool, the run arenas that per-node state carves
// from, flat inbox/outbox backing arrays, and graph-derived routing
// tables — lives on a reusable Runner. A plain run builds a transient one;
// callers that execute many runs (sweeps, repeated requests, benchmark
// loops) should create one Runner and pass it to every run:
//
//	r := arbods.NewRunner()
//	defer r.Close()
//	for _, seed := range seeds {
//		rep, err := arbods.WeightedDeterministic(g, alpha, eps,
//			arbods.WithSeed(seed), arbods.WithRunner(r))
//		...
//	}
//
// Repeated runs on the same graph then allocate O(1) memory regardless of
// n and message volume, and results are identical to transient runs.
// Adding WithRecycledResult assembles Report.Result.Outputs on
// Runner-owned memory too (valid until that Runner's next run), removing
// the last graph-sized per-run allocation.
//
// # Batch pattern
//
// A Runner serves one run at a time; sweeps of independent runs scale
// across cores with a RunnerPool and RunBatch. Each Job checks a warmed
// Runner out of the pool, receives the intra-run worker budget
// (GOMAXPROCS split evenly across the pool, so run-level and
// engine-level parallelism never oversubscribe the machine), and writes
// its result into its own submission slot:
//
//	weights := make([]int64, len(seeds))
//	jobs := make([]arbods.Job, len(seeds))
//	for i, seed := range seeds {
//		jobs[i] = func(r *arbods.Runner, workers int) error {
//			rep, err := arbods.WeightedDeterministic(g, alpha, eps,
//				arbods.WithSeed(seed), arbods.WithRunner(r), arbods.WithWorkers(workers))
//			if err != nil { return err }
//			weights[i] = rep.DSWeight
//			return nil
//		}
//	}
//	err := arbods.RunBatch(0, jobs...) // 0 = GOMAXPROCS runs in flight
//
// The determinism contract: transcripts depend only on (graph, seed,
// options), results land in submission slots, and RunBatch reports the
// first error in submission order — so batch results are bit-identical
// to the sequential sweep for every parallelism, including the tables
// cmd/mdsbench -parallel emits. Long-lived services should hold one
// RunnerPool (sized to the concurrent request budget) and create a Batch
// per request wave with RunnerPool.Batch.
//
// A recycled Result lives on Runner-owned memory and is valid only until
// that Runner's next run; to keep one past that point — to return it from
// a request handler, say — call Result.Detach (or Report.Detach), which
// deep-copies it onto ordinary heap memory in one pass. Detach is opt-in
// precisely so the recycled hot path stays allocation-free.
//
// # Cancellation
//
// Every run can carry a context: pass WithContext(ctx) as an option (or
// use the RunContext / RunBatchContext spellings, and RunnerPool.GetContext
// for checkouts). The contract is round-granular — the engine checks the
// context exactly once per round, at the synchronous barrier before the
// step phase, so a live context costs one nil comparison per round (no
// allocations, no transcript change) and cancellation lands within one
// round of the deadline. A cancelled run returns ctx.Err() wrapped with
// the round it stopped at, delivers no partial results, and leaves its
// Runner fully reusable: the next run on it is bit-identical to a run on
// a fresh Runner. In a cancelled batch, jobs not yet holding a Runner
// fail with ctx.Err() at their submission slots; jobs already in flight
// run to completion unless they thread the context themselves.
//
// # Serving daemon
//
// cmd/arbods-server packages the serving and batch patterns as a
// long-running HTTP/JSON service (package arbods/internal/server): graphs
// arrive by upload, corpus file, or generator spec and are cached as
// built CSRs under their content hash; solves are scheduled onto a shared
// RunnerPool with admission control; results are Detach-ed off Runner
// memory before the Runner returns to the pool; and every answer carries
// a verification Receipt — the coverage proof, the packing feasibility,
// and the α-bound ratio check, recomputed from the graph and the run.
// Receipts are deterministic per (graph, algorithm, parameters, seed):
// repeating a request returns byte-identical receipt JSON — which is
// what lets the server answer repeat requests from a response-level
// solve cache keyed by exactly that tuple. Solves run under the request
// context (a per-solve deadline or a client disconnect aborts the run at
// its next round barrier and frees the Runner), concurrent cold requests
// for the same graph share one build via singleflight, and /v1/metrics
// exposes latency histograms for the build, queue, solve, and total
// phases. BuildReceipt is the same verification the CLI's -receipt flag
// and the benchmark harness use; Certify is its error-only form. See the
// README "Serving" section and examples/server for the client round trip.
//
// # Fault tolerance
//
// A panicking Proc callback cannot take a serving process down. The
// engine recovers panics on its own goroutines — step, route, factory,
// and output phases alike — and returns a *ProcPanicError carrying the
// round, the node, the panic value, and the stack; errors.Is(err,
// ErrProcPanic) detects the class. Which panic wins is deterministic
// (the lowest panicking node of the earliest phase), so a panicking run
// fails identically at every worker count. A Runner that hosted a panic
// is poisoned (Runner.Poisoned) and will not run again; RunnerPool.Put
// quarantines poisoned Runners and checks in a fresh replacement —
// RunnerPool.Replaced counts them — so one faulty callback costs one
// request, never the pool.
//
// Graphs survive process death: EncodeGraphBinary / DecodeGraphBinary
// implement the checksummed binary CSR snapshot format ("ARBCSR01",
// little-endian, CRC-32C trailer) the server's -data-dir persistence is
// built on. The decoder re-validates structure — sortedness, symmetry,
// weight ranges — so a torn or tampered snapshot fails loudly instead of
// serving wrong answers.
//
// WithFaultInjection threads a deterministic failure registry
// (internal/faultinject) into a run for chaos testing: seeded, named
// failpoints fire a panic, an error, or a delay at an exact round, so
// the failure paths above are pinned by ordinary reproducible tests
// (`make chaos-race`) rather than by races. A nil registry is the
// production state and costs one comparison per seam.
//
// # Resilient client
//
// Multiple daemons form a replicated cluster (arbods-server -peers):
// each graph rendezvous-hashes to a fixed set of owner daemons, solves
// are proxied to a healthy owner or served locally when none is left,
// and receipts stay byte-identical no matter which daemon executes —
// determinism is what makes failover invisible. The public client
// package (import "arbods/client", package arbodsclient) is the
// matching way in: it spreads requests over endpoints, retries
// transient failures with capped exponential backoff and full jitter,
// honors Retry-After hints, spends retries from a token budget so a
// client cannot amplify an outage, and trips a per-endpoint circuit
// breaker around dead daemons. With VerifyReceipts it re-verifies every
// answer locally — receipt checks, arithmetic, and a from-scratch
// domination proof against the hash-verified graph — so answers are
// checked, not trusted. See the README "Cluster" section and
// examples/cluster.
package arbods
