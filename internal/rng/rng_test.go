package rng_test

import (
	"math"
	"testing"
	"testing/quick"

	"arbods/internal/rng"
)

func TestDeterminism(t *testing.T) {
	a, b := rng.New(42), rng.New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := rng.New(43)
	same := 0
	a = rng.New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestForNodeIndependence(t *testing.T) {
	seen := make(map[uint64]bool)
	for node := 0; node < 1000; node++ {
		v := rng.ForNode(7, node).Uint64()
		if seen[v] {
			t.Fatalf("node streams collided at node %d", node)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	prop := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := rng.New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	rng.New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := rng.New(9)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean %g too far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := rng.New(3)
	if s.Bernoulli(0) || !s.Bernoulli(1) {
		t.Fatal("degenerate probabilities wrong")
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency %g", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 100)
		p := rng.New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt63nRange(t *testing.T) {
	s := rng.New(17)
	for i := 0; i < 1000; i++ {
		v := s.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
