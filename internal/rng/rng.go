// Package rng provides deterministic pseudo-random number streams for the
// simulator and the randomized algorithms.
//
// The paper's randomized algorithms (Lemma 4.6, Theorems 1.2 and 1.3) assume
// each node has access to private random bits. To make simulations
// reproducible — and to make the parallel and sequential engines produce
// bit-identical transcripts — every node derives its own independent stream
// from a (runSeed, nodeID) pair using SplitMix64. SplitMix64 is a tiny,
// well-mixed generator that is safe to seed with correlated inputs, which is
// exactly the situation here (node IDs are consecutive integers).
package rng

import "math"

// Stream is a deterministic pseudo-random stream (SplitMix64).
// The zero value is a valid stream seeded with 0.
type Stream struct {
	state uint64
}

// New returns a stream seeded with the given seed.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Init returns, by value, an independent stream for a node derived from a
// run seed. Distinct (seed, node) pairs yield streams that are independent
// for all practical purposes: the derivation runs the parent state through
// two SplitMix64 steps, so even adjacent node IDs map to well-separated
// states. Returning a value (rather than a heap pointer) lets callers embed
// the stream directly in per-node state — the CONGEST simulator seeds one
// stream per node in place, with no per-node heap object.
func Init(seed uint64, node int) Stream {
	s := Stream{state: seed + 0x9e3779b97f4a7c15*(uint64(node)+1)}
	_ = s.Uint64()
	_ = s.Uint64()
	return s
}

// ForNode is Init returning a heap-allocated stream, for callers that want
// a shared mutable handle.
func ForNode(seed uint64, node int) *Stream {
	s := Init(seed, node)
	return &s
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be overkill here; simple
	// rejection sampling keeps the stream consumption predictable enough
	// and exactly uniform.
	max := uint64(n)
	limit := (math.MaxUint64 / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	max := uint64(n)
	limit := (math.MaxUint64 / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	s.PermInto(p)
	return p
}

// PermInto fills dst with a pseudo-random permutation of [0, len(dst)),
// consuming exactly the same stream values as Perm(len(dst)). It exists so
// call sites that permute repeatedly (generators, the lower-bound stub
// matcher) can reuse one scratch buffer instead of allocating per call.
func (s *Stream) PermInto(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
