// Package lower implements the Section 5 lower-bound machinery
// (Theorem 1.4): the construction of the arboricity-2 graph H from a
// bipartite base graph G (Figure 1), and the reduction that turns a
// dominating set of H into a fractional vertex cover of G.
//
// The paper instantiates G with the Kuhn–Moscibroda–Wattenhofer lower-bound
// graph, used as a black box (it is bipartite, and m ≥ n); the construction
// and reduction — the paper's actual contribution — work for any bipartite
// base graph, which is what this package implements and validates. The
// KMW-flavoured biregular bipartite gadget family in Gadget mirrors the
// degree-skewed layer structure of the KMW graphs.
package lower

import (
	"fmt"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// Construction is the graph H built from a bipartite base graph G with
// maximum degree Δ, together with the node layout needed by the reduction.
//
// Layout: copies i = 0..Δ²−1 occupy contiguous blocks of n+m nodes each
// (first the n copies of G's nodes, then one middle node per edge of G,
// in g.Edges order); the final n nodes are the set T, one per node of G.
type Construction struct {
	// Base is the bipartite base graph G.
	Base *graph.Graph
	// H is the constructed lower-bound graph.
	H *graph.Graph
	// Delta is Δ(G); H uses Δ² copies.
	Delta int
	// Copies = Δ².
	Copies int
	// Edges lists G's edges in the order middle nodes were allocated.
	Edges [][2]int
}

// Build constructs H from a bipartite base graph. It returns an error if
// base is not bipartite or has no edges.
func Build(base *graph.Graph) (*Construction, error) {
	if base.M() == 0 {
		return nil, fmt.Errorf("lower: base graph has no edges")
	}
	if !IsBipartite(base) {
		return nil, fmt.Errorf("lower: base graph is not bipartite")
	}
	n, m := base.N(), base.M()
	delta := base.MaxDegree()
	copies := delta * delta
	edges := base.Edges(make([][2]int, 0, m))
	total := copies*(n+m) + n
	b := graph.NewBuilder(total)
	for i := 0; i < copies; i++ {
		off := i * (n + m)
		// Subdivided copy of G: edge k becomes u—mid_k—v.
		for k, e := range edges {
			mid := off + n + k
			b.AddEdge(off+e[0], mid)
			b.AddEdge(mid, off+e[1])
		}
		// Connect every copied original node to its T node.
		for v := 0; v < n; v++ {
			b.AddEdge(off+v, copies*(n+m)+v)
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Construction{Base: base, H: h, Delta: delta, Copies: copies, Edges: edges}, nil
}

// CopyNode returns the H-node holding copy i of base node v.
func (c *Construction) CopyNode(i, v int) int {
	return i*(c.Base.N()+c.Base.M()) + v
}

// MiddleNode returns the H-node subdividing edge k in copy i.
func (c *Construction) MiddleNode(i, k int) int {
	return i*(c.Base.N()+c.Base.M()) + c.Base.N() + k
}

// TNode returns the T-layer node attached to all copies of base node v.
func (c *Construction) TNode(v int) int {
	return c.Copies*(c.Base.N()+c.Base.M()) + v
}

// IsMiddle reports whether H-node h is a middle (subdivision) node, and if
// so returns its copy index and edge index.
func (c *Construction) IsMiddle(h int) (copyIdx, edgeIdx int, ok bool) {
	n, m := c.Base.N(), c.Base.M()
	if h >= c.Copies*(n+m) {
		return 0, 0, false
	}
	copyIdx = h / (n + m)
	r := h % (n + m)
	if r < n {
		return 0, 0, false
	}
	return copyIdx, r - n, true
}

// IsCopy reports whether H-node h is a copy of a base node, and if so
// returns the copy index and the base node.
func (c *Construction) IsCopy(h int) (copyIdx, baseNode int, ok bool) {
	n, m := c.Base.N(), c.Base.M()
	if h >= c.Copies*(n+m) {
		return 0, 0, false
	}
	copyIdx = h / (n + m)
	r := h % (n + m)
	if r >= n {
		return 0, 0, false
	}
	return copyIdx, r, true
}

// ArboricityWitness returns the explicit out-degree-2 acyclic orientation
// from the paper's proof: middle nodes orient both incident edges outward,
// copy nodes orient their T-edge outward, T nodes orient nothing. The
// orientation certifies arboricity(H) ≤ 2 (Observation 3.5 in reverse:
// out-degree-d orientations decompose into d pseudoforests; here the
// orientation is acyclic, giving two forests).
func (c *Construction) ArboricityWitness() [][]int32 {
	out := make([][]int32, c.H.N())
	n := c.Base.N()
	for i := 0; i < c.Copies; i++ {
		for k, e := range c.Edges {
			mid := c.MiddleNode(i, k)
			out[mid] = []int32{int32(c.CopyNode(i, e[0])), int32(c.CopyNode(i, e[1]))}
		}
		for v := 0; v < n; v++ {
			cp := c.CopyNode(i, v)
			out[cp] = []int32{int32(c.TNode(v))}
		}
	}
	return out
}

// ExtractFractionalVC converts a dominating set of H into a fractional
// vertex cover of the base graph G, following the Theorem 1.4 proof:
// middle nodes in the set are replaced by one endpoint (this cannot
// decrease coverage of middle nodes), each copy's selected original nodes
// S_i form a vertex cover of G (because S dominates every middle node),
// and y_v = |{i : v ∈ S_i}|/Δ².
func (c *Construction) ExtractFractionalVC(inSet []bool) []float64 {
	n := c.Base.N()
	// count[i-th copy] selections per base node.
	selected := make([]bool, c.Copies*n)
	for h, in := range inSet {
		if !in {
			continue
		}
		if i, v, ok := c.IsCopy(h); ok {
			selected[i*n+v] = true
			continue
		}
		if i, k, ok := c.IsMiddle(h); ok {
			// Replace the middle node by its lower endpoint.
			selected[i*n+c.Edges[k][0]] = true
		}
		// T nodes contribute nothing to the cover.
	}
	y := make([]float64, n)
	for i := 0; i < c.Copies; i++ {
		for v := 0; v < n; v++ {
			if selected[i*n+v] {
				y[v] += 1
			}
		}
	}
	for v := range y {
		y[v] /= float64(c.Copies)
	}
	return y
}

// IsBipartite reports whether g is 2-colorable.
func IsBipartite(g *graph.Graph) bool {
	_, ok := TwoColoring(g)
	return ok
}

// TwoColoring returns a 2-coloring (0/1 per node) if one exists.
func TwoColoring(g *graph.Graph) ([]int8, bool) {
	n := g.N()
	color := make([]int8, n)
	for i := range color {
		color[i] = -1
	}
	var queue []int
	for s := 0; s < n; s++ {
		if color[s] >= 0 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if color[u] < 0 {
					color[u] = 1 - color[v]
					queue = append(queue, int(u))
				} else if color[u] == color[v] {
					return nil, false
				}
			}
		}
	}
	return color, true
}

// MaxMatching computes a maximum matching of a bipartite graph via
// augmenting paths (Hungarian algorithm). By König's theorem its size
// equals the minimum vertex cover, and on bipartite graphs the fractional
// VC optimum coincides with the integral one — the fact the Theorem 1.4
// proof uses (footnote 3). Returns the matching size.
func MaxMatching(g *graph.Graph) (int, error) {
	color, ok := TwoColoring(g)
	if !ok {
		return 0, fmt.Errorf("lower: graph is not bipartite")
	}
	n := g.N()
	matchTo := make([]int, n)
	for i := range matchTo {
		matchTo[i] = -1
	}
	visited := make([]bool, n)
	var try func(v int) bool
	try = func(v int) bool {
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if visited[u] {
				continue
			}
			visited[u] = true
			if matchTo[u] == -1 || try(matchTo[u]) {
				matchTo[u] = v
				matchTo[v] = u
				return true
			}
		}
		return false
	}
	size := 0
	for v := 0; v < n; v++ {
		if color[v] != 0 || matchTo[v] != -1 {
			continue
		}
		for i := range visited {
			visited[i] = false
		}
		if try(v) {
			size++
		}
	}
	return size, nil
}

// Gadget generates a KMW-flavoured biregular bipartite base graph: nl left
// nodes of degree dl and nl·dl/dr right nodes of degree dr (dl·nl must be
// divisible by dr). Degree-skewed biregular layers are the building block
// of the KMW cluster trees; this family gives base graphs with m ≥ n and
// controllable Δ = max(dl, dr), exactly what Theorem 1.4's proof consumes.
func Gadget(nl, dl, dr int, seed uint64) (*graph.Graph, error) {
	if nl < 1 || dl < 1 || dr < 1 {
		return nil, fmt.Errorf("lower: gadget parameters must be positive")
	}
	if (nl*dl)%dr != 0 {
		return nil, fmt.Errorf("lower: nl·dl=%d not divisible by dr=%d", nl*dl, dr)
	}
	nr := nl * dl / dr
	if dl > nr || dr > nl {
		return nil, fmt.Errorf("lower: degrees too large for simple biregular graph")
	}
	b := graph.NewBuilder(nl + nr)
	left := identRange(0, nl)
	right := identRange(nl, nr)
	if err := biregularPair(b, left, right, dl, dr, rng.New(seed)); err != nil {
		return nil, err
	}
	return b.Build()
}

// LayeredGadget builds a KMW-style layered base graph: a chain of layers
// L_0, …, L_depth with |L_{i+1}| = |L_i|/delta, every L_i node holding
// delta edges down and every L_{i+1} node holding delta² edges up. The
// geometric degree disparity between consecutive layers is the structural
// signature of the KMW cluster trees CT_k (each level multiplies degrees
// by δ); edges connect consecutive layers only, so the graph is bipartite
// by layer parity and feeds straight into Build. n0 must be a multiple of
// delta^depth, and delta² ≤ n0/delta^{i+1} for all levels must hold for a
// simple realization.
func LayeredGadget(n0, delta, depth int, seed uint64) (*graph.Graph, error) {
	if n0 < 1 || delta < 2 || depth < 1 {
		return nil, fmt.Errorf("lower: layered gadget needs n0 ≥ 1, delta ≥ 2, depth ≥ 1")
	}
	sizes := make([]int, depth+1)
	total := 0
	size := n0
	for i := 0; i <= depth; i++ {
		if size == 0 || (i < depth && size%delta != 0) {
			return nil, fmt.Errorf("lower: n0=%d not divisible by delta^%d", n0, depth)
		}
		sizes[i] = size
		total += size
		size /= delta
	}
	b := graph.NewBuilder(total)
	r := rng.New(seed)
	offset := 0
	for i := 0; i < depth; i++ {
		lower := identRange(offset, sizes[i])
		upper := identRange(offset+sizes[i], sizes[i+1])
		// |L_i|·δ stubs down = |L_{i+1}|·δ² stubs up.
		if delta*delta > sizes[i] {
			return nil, fmt.Errorf("lower: level %d too small for up-degree δ²=%d", i+1, delta*delta)
		}
		if err := biregularPair(b, lower, upper, delta, delta*delta, r); err != nil {
			return nil, fmt.Errorf("lower: level %d: %w", i, err)
		}
		offset += sizes[i]
	}
	return b.Build()
}

func identRange(start, count int) []int {
	ids := make([]int, count)
	for i := range ids {
		ids[i] = start + i
	}
	return ids
}

// biregularPair adds a random simple biregular bipartite graph between the
// two node sets: every left node gets degree dl, every right node degree
// dr (|left|·dl must equal |right|·dr). Configuration-model stub matching
// with duplicate avoidance and bounded retries.
func biregularPair(b *graph.Builder, left, right []int, dl, dr int, r *rng.Stream) error {
	if len(left)*dl != len(right)*dr {
		return fmt.Errorf("lower: stub counts differ: %d·%d vs %d·%d", len(left), dl, len(right), dr)
	}
	stubs := make([]int, 0, len(right)*dr) // scratch reused across attempts
	perm := make([]int, len(right)*dr)
	for attempt := 0; attempt < 64; attempt++ {
		stubs = stubs[:0]
		for _, v := range right {
			for j := 0; j < dr; j++ {
				stubs = append(stubs, v)
			}
		}
		r.PermInto(perm)
		seen := make(map[[2]int]bool, len(left)*dl)
		type edge struct{ u, v int }
		edges := make([]edge, 0, len(left)*dl)
		ok := true
		idx := 0
		for _, u := range left {
			for j := 0; j < dl && ok; j++ {
				placed := false
				for probe := 0; probe < len(perm); probe++ {
					p := (idx + probe) % len(perm)
					w := stubs[perm[p]]
					if w < 0 || seen[[2]int{u, w}] {
						continue
					}
					seen[[2]int{u, w}] = true
					edges = append(edges, edge{u, w})
					stubs[perm[p]] = -1
					placed = true
					break
				}
				if !placed {
					ok = false
				}
				idx++
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		for _, e := range edges {
			b.AddEdge(e.u, e.v)
		}
		return nil
	}
	return fmt.Errorf("lower: failed to realize biregular pair (%d×%d, degrees %d/%d)",
		len(left), len(right), dl, dr)
}
