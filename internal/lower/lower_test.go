package lower_test

import (
	"testing"
	"testing/quick"

	"arbods/internal/arbor"
	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/lower"
	"arbods/internal/mds"
	"arbods/internal/verify"
)

func buildBase(t *testing.T) *graph.Graph {
	t.Helper()
	base := gen.RandomBipartite(8, 8, 0.4, 3).G
	if base.M() == 0 {
		t.Fatal("base graph has no edges")
	}
	return base
}

func TestBuildCounts(t *testing.T) {
	base := buildBase(t)
	c, err := lower.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	n, m, delta := base.N(), base.M(), base.MaxDegree()
	wantN := delta*delta*(n+m) + n
	wantM := delta * delta * (2*m + n)
	if c.H.N() != wantN {
		t.Fatalf("H has %d nodes, paper formula gives %d", c.H.N(), wantN)
	}
	if c.H.M() != wantM {
		t.Fatalf("H has %d edges, paper formula gives %d", c.H.M(), wantM)
	}
	// Max degree of H is Δ² (attained by T nodes) for Δ ≥ 2.
	if delta >= 2 && c.H.MaxDegree() != delta*delta {
		t.Fatalf("H max degree %d, want Δ²=%d", c.H.MaxDegree(), delta*delta)
	}
}

func TestArboricityWitness(t *testing.T) {
	base := buildBase(t)
	c, err := lower.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	out := c.ArboricityWitness()
	if err := verify.OutDegreeAtMost(out, 2); err != nil {
		t.Fatal(err)
	}
	// The witness must orient every edge of H exactly once.
	count := 0
	seen := make(map[[2]int]bool)
	for v := range out {
		for _, u := range out[v] {
			if !c.H.HasEdge(v, int(u)) {
				t.Fatalf("witness orients non-edge %d→%d", v, u)
			}
			a, b := v, int(u)
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				t.Fatalf("edge {%d,%d} oriented twice", a, b)
			}
			seen[[2]int{a, b}] = true
			count++
		}
	}
	if count != c.H.M() {
		t.Fatalf("witness orients %d edges, H has %d", count, c.H.M())
	}
	// Cross-check with the centralized machinery: H's degeneracy is ≤ 3
	// (arboricity 2 ⇒ degeneracy ≤ 2α−1), and the Nash–Williams lower
	// bound cannot exceed 2.
	lo, hi := arbor.Bounds(c.H)
	if lo > 2 {
		t.Fatalf("Nash–Williams lower bound %d > 2 contradicts the witness", lo)
	}
	if hi > 3 {
		t.Fatalf("degeneracy %d > 3 contradicts arboricity 2", hi)
	}
}

// TestReduction runs the full Theorem 1.4 pipeline: solve MDS on H with the
// paper's own algorithm (arboricity bound 2!), extract a fractional vertex
// cover of the base graph, and verify feasibility and value.
func TestReduction(t *testing.T) {
	base := buildBase(t)
	c, err := lower.Build(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mds.UnweightedDeterministic(c.H, 2, 0.2, congest.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, c.H.N())
	for v, out := range rep.Result.Outputs {
		inSet[v] = out.InDS
	}
	if und := verify.DominatingSet(c.H, inSet); len(und) > 0 {
		t.Fatalf("MDS on H invalid: %d undominated", len(und))
	}
	y := c.ExtractFractionalVC(inSet)
	if err := verify.FractionalVertexCover(base, y, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Value chain of the proof: Σy ≤ |S|/Δ² and |S| ≤ ratio·(Δ²+Δ)·OPT_MFVC,
	// hence Σy ≤ ratio·(1+1/Δ)·OPT_MFVC. OPT_MFVC = max matching (König +
	// bipartite integrality, footnote 3).
	optVC, err := lower.MaxMatching(base)
	if err != nil {
		t.Fatal(err)
	}
	if optVC == 0 {
		t.Fatal("base has edges but zero matching")
	}
	val := verify.FractionalValue(y)
	ratio := rep.CertifiedRatio() // ≥ true approximation ratio of the run
	delta := float64(base.MaxDegree())
	bound := ratio * (1 + 1/delta) * float64(optVC)
	if val > bound*(1+1e-9) {
		t.Fatalf("reduction value %g exceeds proof bound %g (OPT_MFVC=%d, ratio=%g)",
			val, bound, optVC, ratio)
	}
}

// TestReductionProperty: for random bipartite bases, ANY dominating set of
// H (here: greedy's) must extract to a feasible fractional vertex cover —
// the structural heart of the Theorem 1.4 proof.
func TestReductionProperty(t *testing.T) {
	prop := func(seed uint64, aRaw, bRaw uint8) bool {
		a := int(aRaw%5) + 3
		b := int(bRaw%5) + 3
		base := gen.RandomBipartite(a, b, 0.5, seed).G
		if base.M() == 0 {
			return true // vacuous: Build rejects edgeless bases
		}
		c, err := lower.Build(base)
		if err != nil {
			return false
		}
		greedy := baseline.Greedy(c.H)
		inSet := make([]bool, c.H.N())
		for _, v := range greedy.DS {
			inSet[v] = true
		}
		if len(verify.DominatingSet(c.H, inSet)) > 0 {
			return false
		}
		y := c.ExtractFractionalVC(inSet)
		return verify.FractionalVertexCover(base, y, 1e-9) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejections(t *testing.T) {
	if _, err := lower.Build(gen.Cycle(5).G); err == nil {
		t.Fatal("odd cycle accepted as bipartite")
	}
	if _, err := lower.Build(graph.NewBuilder(4).MustBuild()); err == nil {
		t.Fatal("edgeless base accepted")
	}
}

func TestMaxMatching(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path4", gen.Path(4).G, 2},
		{"path5", gen.Path(5).G, 2},
		{"star6", gen.Star(6).G, 1},
		{"even-cycle", gen.Cycle(8).G, 4},
		{"grid3x3", gen.Grid(3, 3).G, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := lower.MaxMatching(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("matching = %d, want %d", got, tt.want)
			}
		})
	}
	if _, err := lower.MaxMatching(gen.Complete(3).G); err == nil {
		t.Fatal("non-bipartite graph accepted")
	}
}

func TestLayeredGadget(t *testing.T) {
	// n0=54, δ=3, depth=2: layers 54/18/6, down-degree 3, up-degree 9.
	g, err := lower.LayeredGadget(54, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 54+18+6 {
		t.Fatalf("n=%d", g.N())
	}
	if !lower.IsBipartite(g) {
		t.Fatal("layered gadget not bipartite")
	}
	// Layer degrees: L0 nodes degree 3; L1 nodes 9 (up) + 3 (down) = 12;
	// L2 nodes degree 9.
	for v := 0; v < 54; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("L0 node %d degree %d", v, g.Degree(v))
		}
	}
	for v := 54; v < 72; v++ {
		if g.Degree(v) != 12 {
			t.Fatalf("L1 node %d degree %d", v, g.Degree(v))
		}
	}
	for v := 72; v < 78; v++ {
		if g.Degree(v) != 9 {
			t.Fatalf("L2 node %d degree %d", v, g.Degree(v))
		}
	}
	// It must feed the Theorem 1.4 pipeline end to end.
	c, err := lower.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	out := c.ArboricityWitness()
	if err := verify.OutDegreeAtMost(out, 2); err != nil {
		t.Fatal(err)
	}
	// Parameter validation.
	if _, err := lower.LayeredGadget(10, 3, 2, 1); err == nil {
		t.Fatal("indivisible n0 accepted")
	}
	if _, err := lower.LayeredGadget(8, 1, 1, 1); err == nil {
		t.Fatal("delta=1 accepted")
	}
	if _, err := lower.LayeredGadget(8, 2, 3, 1); err == nil {
		t.Fatal("overly deep gadget accepted")
	}
}

func TestGadget(t *testing.T) {
	g, err := lower.Gadget(12, 3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !lower.IsBipartite(g) {
		t.Fatal("gadget not bipartite")
	}
	if g.M() != 36 {
		t.Fatalf("gadget has %d edges, want 36", g.M())
	}
	// Left nodes have degree 3, right nodes degree 4.
	for v := 0; v < 12; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("left node %d has degree %d, want 3", v, g.Degree(v))
		}
	}
	for v := 12; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("right node %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	// The gadget must survive the full construction pipeline.
	c, err := lower.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	greedy := baseline.Greedy(c.H)
	inSet := make([]bool, c.H.N())
	for _, v := range greedy.DS {
		inSet[v] = true
	}
	y := c.ExtractFractionalVC(inSet)
	if err := verify.FractionalVertexCover(g, y, 1e-9); err != nil {
		t.Fatal(err)
	}
}
