// Package cluster implements the replication layer that turns a set of
// independent arbods-server daemons into one fault-tolerant serving
// system. The design leans entirely on the library's determinism: a
// solve's receipt is byte-identical for a fixed (graph, algorithm,
// params, seed) no matter which daemon executes it, so any replica's
// answer is independently checkable and failover can be verified
// instead of trusted.
//
//   - Membership is static: every daemon is started with the same
//     -peers list (its own advertised address included), so there is no
//     consensus protocol to get wrong — the peer set is configuration.
//   - Ownership is rendezvous (highest-random-weight) hashing: each
//     graph reference maps to the R peers with the highest
//     hash(key, peer) scores. Every daemon computes the same owners
//     from the same inputs, with no token ring to rebalance; removing
//     a peer from the set moves only that peer's share of the keyspace.
//   - Health is probed, not assumed: a background loop hits every
//     peer's /readyz on an interval, and proxy failures feed the same
//     counters, with hysteresis in both directions (FailAfter
//     consecutive failures to go unhealthy, ReviveAfter consecutive
//     successes to come back) so one dropped probe doesn't flap the
//     routing and one lucky probe doesn't resurrect a dying daemon.
//   - The Set only tracks and scores; the serving integration — who
//     proxies, who falls back, who replicates — lives in
//     internal/server, which asks Owners/Healthy and reports outcomes
//     back via MarkForward.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a peer Set.
type Config struct {
	// Self is this daemon's advertised base URL (e.g. "http://10.0.0.1:8080").
	// It is added to Peers if absent, so every daemon hashes over the
	// identical set.
	Self string
	// Peers lists every daemon's advertised base URL. Order does not
	// matter: the set is sorted before hashing.
	Peers []string
	// Replicas is R, the number of owner daemons per graph reference
	// (default 2, clamped to the peer count).
	Replicas int
	// ProbeInterval is the /readyz polling period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe or proxied request (default 5s).
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count that flips a peer to
	// unhealthy (default 3); ReviveAfter the consecutive-success count
	// that flips it back (default 2). Hysteresis in both directions
	// keeps one dropped packet from flapping the routing.
	FailAfter   int
	ReviveAfter int
	// Transport carries every peer request — probes, proxies, snapshot
	// fetches (nil = http.DefaultTransport). Chaos tests inject
	// faultinject.Transport here to partition specific links.
	Transport http.RoundTripper
	// Logf receives health-transition records (nil = silent).
	Logf func(format string, args ...any)
}

// peerState is the live health and traffic record of one peer.
type peerState struct {
	base string

	mu        sync.Mutex
	healthy   bool
	consecOK  int
	consecBad int

	probes       atomic.Int64
	probeFails   atomic.Int64
	forwards     atomic.Int64
	forwardFails atomic.Int64
}

// Set is the static peer set plus its live health view. All methods are
// safe for concurrent use; a nil *Set means "no cluster" and is valid
// for the read-only accessors.
type Set struct {
	cfg   Config
	self  string
	peers []*peerState // sorted by base URL; includes self
	byURL map[string]*peerState
	hc    *http.Client

	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
	once    sync.Once
}

// normalizeURL canonicalizes a peer address: a bare host:port gains the
// http scheme, trailing slashes go.
func normalizeURL(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s != "" && !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return s
}

// New builds a Set from cfg; Start launches the prober separately so
// tests can drive health by hand.
func New(cfg Config) (*Set, error) {
	cfg.Self = normalizeURL(cfg.Self)
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self address required")
	}
	urls := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if u := normalizeURL(p); u != "" && !slices.Contains(urls, u) {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(urls) {
		cfg.Replicas = len(urls)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 5 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.ReviveAfter <= 0 {
		cfg.ReviveAfter = 2
	}
	s := &Set{
		cfg:   cfg,
		self:  cfg.Self,
		byURL: make(map[string]*peerState, len(urls)),
		hc:    &http.Client{Transport: cfg.Transport},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, u := range urls {
		ps := &peerState{base: u, healthy: true}
		s.peers = append(s.peers, ps)
		s.byURL[u] = ps
	}
	return s, nil
}

// Self returns this daemon's advertised base URL.
func (s *Set) Self() string {
	if s == nil {
		return ""
	}
	return s.self
}

// Replicas returns R.
func (s *Set) Replicas() int { return s.cfg.Replicas }

// Client returns the HTTP client every peer request should ride (shared
// transport, no global timeout — callers bound requests by context).
func (s *Set) Client() *http.Client { return s.hc }

// ProbeTimeout is the per-request bound for peer traffic.
func (s *Set) ProbeTimeout() time.Duration { return s.cfg.ProbeTimeout }

// Peers returns every peer base URL, sorted, self included.
func (s *Set) Peers() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.peers))
	for i, p := range s.peers {
		out[i] = p.base
	}
	return out
}

// score is the rendezvous weight of (key, peer): FNV-1a over both, so
// every daemon computes identical owners with zero coordination.
func score(key, peer string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(peer))
	return h.Sum64()
}

// Owners returns the R peers that own key, highest rendezvous score
// first. Ownership is computed over the full static set — health never
// moves ownership (that would tear the replicas' caches apart during a
// flap); callers skip unhealthy owners at use time.
func (s *Set) Owners(key string) []string {
	if s == nil {
		return nil
	}
	type scored struct {
		peer string
		w    uint64
	}
	sc := make([]scored, len(s.peers))
	for i, p := range s.peers {
		sc[i] = scored{peer: p.base, w: score(key, p.base)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].w != sc[j].w {
			return sc[i].w > sc[j].w
		}
		return sc[i].peer < sc[j].peer
	})
	out := make([]string, 0, s.cfg.Replicas)
	for i := 0; i < s.cfg.Replicas; i++ {
		out = append(out, sc[i].peer)
	}
	return out
}

// Owns reports whether this daemon is one of key's owners.
func (s *Set) Owns(key string) bool {
	if s == nil {
		return true // no cluster: every graph is local
	}
	return slices.Contains(s.Owners(key), s.self)
}

// Healthy reports the current health verdict for peer; self is always
// healthy (a daemon that can ask is alive).
func (s *Set) Healthy(peer string) bool {
	if s == nil {
		return false
	}
	if peer == s.self {
		return true
	}
	ps, ok := s.byURL[peer]
	if !ok {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.healthy
}

// observe feeds one health observation (a probe result or a proxy
// outcome) into peer's hysteresis counters and flips its verdict at the
// configured thresholds.
func (s *Set) observe(ps *peerState, ok bool) {
	ps.mu.Lock()
	was := ps.healthy
	if ok {
		ps.consecOK++
		ps.consecBad = 0
		if !ps.healthy && ps.consecOK >= s.cfg.ReviveAfter {
			ps.healthy = true
		}
	} else {
		ps.consecBad++
		ps.consecOK = 0
		if ps.healthy && ps.consecBad >= s.cfg.FailAfter {
			ps.healthy = false
		}
	}
	now := ps.healthy
	ps.mu.Unlock()
	if was != now && s.cfg.Logf != nil {
		s.cfg.Logf("event=peer_health peer=%s healthy=%v", ps.base, now)
	}
}

// MarkForward records a proxied-solve outcome against peer: the traffic
// counters move, and the result feeds the same hysteresis as a probe —
// a peer that eats three forwards in a row is as unhealthy as one that
// drops three probes, and the prober notices the revival later.
func (s *Set) MarkForward(peer string, ok bool) {
	if s == nil {
		return
	}
	ps, found := s.byURL[peer]
	if !found || peer == s.self {
		return
	}
	ps.forwards.Add(1)
	if !ok {
		ps.forwardFails.Add(1)
	}
	s.observe(ps, ok)
}

// probe hits one peer's /readyz under the probe timeout; any transport
// error or non-200 counts as a failure (a draining daemon answers 503
// exactly so this loop steers traffic away).
func (s *Set) probe(ps *peerState) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	defer cancel()
	ps.probes.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ps.base+"/readyz", nil)
	if err != nil {
		ps.probeFails.Add(1)
		s.observe(ps, false)
		return
	}
	resp, err := s.hc.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		resp.Body.Close()
	}
	if !ok {
		ps.probeFails.Add(1)
	}
	s.observe(ps, ok)
}

// Start launches the background health prober. Safe to skip in tests
// that drive health through MarkForward alone.
func (s *Set) Start() {
	if s == nil || s.started.Swap(true) {
		return
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				for _, ps := range s.peers {
					if ps.base == s.self {
						continue
					}
					s.probe(ps)
				}
			}
		}
	}()
}

// Close stops the prober and waits for it. Idempotent.
func (s *Set) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	if s.started.Load() {
		<-s.done
	}
}

// PeerStatus is the /v1/stats view of one peer.
type PeerStatus struct {
	Peer    string `json:"peer"`
	Self    bool   `json:"self,omitempty"`
	Healthy bool   `json:"healthy"`
	// Probes/ProbeFailures count background /readyz checks;
	// Forwards/ForwardFailures count solves proxied to this peer.
	Probes          int64 `json:"probes,omitempty"`
	ProbeFailures   int64 `json:"probeFailures,omitempty"`
	Forwards        int64 `json:"forwards,omitempty"`
	ForwardFailures int64 `json:"forwardFailures,omitempty"`
}

// Status snapshots every peer for /v1/stats, sorted by URL.
func (s *Set) Status() []PeerStatus {
	if s == nil {
		return nil
	}
	out := make([]PeerStatus, 0, len(s.peers))
	for _, ps := range s.peers {
		ps.mu.Lock()
		healthy := ps.healthy
		ps.mu.Unlock()
		if ps.base == s.self {
			healthy = true
		}
		out = append(out, PeerStatus{
			Peer:            ps.base,
			Self:            ps.base == s.self,
			Healthy:         healthy,
			Probes:          ps.probes.Load(),
			ProbeFailures:   ps.probeFails.Load(),
			Forwards:        ps.forwards.Load(),
			ForwardFailures: ps.forwardFails.Load(),
		})
	}
	return out
}
