package cluster_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"arbods/internal/cluster"
)

func newSet(t *testing.T, self string, peers []string, mutate func(*cluster.Config)) *cluster.Set {
	t.Helper()
	cfg := cluster.Config{Self: self, Peers: peers}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := cluster.New(cluster.Config{}); err == nil {
		t.Fatal("New without Self should fail")
	}
	// Bare host:port addresses normalize to http URLs, self is added to
	// the peer set, and duplicates collapse.
	s := newSet(t, "10.0.0.1:8080", []string{"10.0.0.2:8080", "http://10.0.0.1:8080/"}, nil)
	want := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080"}
	if got := s.Peers(); !slices.Equal(got, want) {
		t.Fatalf("Peers() = %v, want %v", got, want)
	}
	if s.Self() != "http://10.0.0.1:8080" {
		t.Fatalf("Self() = %q", s.Self())
	}
	// R clamps to the peer count.
	if got := s.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
	solo := newSet(t, "a:1", nil, func(c *cluster.Config) { c.Replicas = 5 })
	if got := solo.Replicas(); got != 1 {
		t.Fatalf("solo Replicas() = %d, want 1", got)
	}
}

func TestOwnersDeterministicAndBalanced(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	// Every daemon must compute identical owners regardless of which
	// peer it is or how its -peers flag was ordered.
	sets := []*cluster.Set{
		newSet(t, peers[0], peers, nil),
		newSet(t, peers[1], []string{peers[2], peers[0], peers[1]}, nil),
		newSet(t, peers[2], []string{peers[1], peers[0]}, nil),
	}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("sha256:%064d", i)
		owners := sets[0].Owners(key)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%s) = %v, want 2 distinct", key, owners)
		}
		for _, s := range sets[1:] {
			if got := s.Owners(key); !slices.Equal(got, owners) {
				t.Fatalf("Owners(%s) disagree: %v vs %v", key, got, owners)
			}
		}
		for _, o := range owners {
			counts[o]++
		}
		// Owns agrees with Owners on every daemon.
		for _, s := range sets {
			if got, want := s.Owns(key), slices.Contains(owners, s.Self()); got != want {
				t.Fatalf("%s.Owns(%s) = %v, want %v", s.Self(), key, got, want)
			}
		}
	}
	// Rendezvous hashing should spread 600 (key, replica) slots roughly
	// evenly over 3 peers; a peer owning fewer than half its fair share
	// means the hash is broken, not unlucky.
	for p, n := range counts {
		if n < 100 {
			t.Fatalf("peer %s owns %d/600 slots — hash badly skewed: %v", p, n, counts)
		}
	}
}

func TestNilSetAccessors(t *testing.T) {
	var s *cluster.Set
	if !s.Owns("anything") {
		t.Fatal("nil Set must own every key (standalone semantics)")
	}
	if s.Owners("k") != nil || s.Peers() != nil || s.Status() != nil {
		t.Fatal("nil Set accessors must return nil")
	}
	if s.Healthy("x") {
		t.Fatal("nil Set has no healthy peers")
	}
	s.MarkForward("x", true) // must not panic
	s.Close()                // must not panic
}

func TestHealthHysteresis(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1"}
	s := newSet(t, peers[0], peers, func(c *cluster.Config) {
		c.FailAfter = 3
		c.ReviveAfter = 2
	})
	other := peers[1]
	if !s.Healthy(other) {
		t.Fatal("peers start healthy")
	}
	// Two failures are a flap, not a death.
	s.MarkForward(other, false)
	s.MarkForward(other, false)
	if !s.Healthy(other) {
		t.Fatal("peer flipped unhealthy before FailAfter")
	}
	s.MarkForward(other, false)
	if s.Healthy(other) {
		t.Fatal("peer still healthy after FailAfter consecutive failures")
	}
	// One success is a lucky probe, not a revival.
	s.MarkForward(other, true)
	if s.Healthy(other) {
		t.Fatal("peer revived before ReviveAfter")
	}
	s.MarkForward(other, true)
	if !s.Healthy(other) {
		t.Fatal("peer still unhealthy after ReviveAfter consecutive successes")
	}
	// Self is always healthy and never tracked.
	s.MarkForward(s.Self(), false)
	if !s.Healthy(s.Self()) {
		t.Fatal("self must stay healthy")
	}
	var st cluster.PeerStatus
	for _, ps := range s.Status() {
		if ps.Peer == other {
			st = ps
		}
	}
	if st.Forwards != 5 || st.ForwardFailures != 3 {
		t.Fatalf("peer status = %+v, want 5 forwards / 3 failures", st)
	}
}

func TestProbeLifecycle(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer peer.Close()

	s := newSet(t, "http://self:1", []string{peer.URL}, func(c *cluster.Config) {
		c.ProbeInterval = 5 * time.Millisecond
		c.ProbeTimeout = 500 * time.Millisecond
		c.FailAfter = 2
		c.ReviveAfter = 2
	})
	s.Start()
	s.Start() // idempotent

	waitHealth := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if s.Healthy(peer.URL) == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("peer health never became %v", want)
	}
	// A draining peer (503) goes unhealthy; a recovered one comes back.
	ready.Store(false)
	waitHealth(false)
	ready.Store(true)
	waitHealth(true)

	var st cluster.PeerStatus
	for _, ps := range s.Status() {
		if ps.Peer == peer.URL {
			st = ps
		}
	}
	if st.Probes == 0 || st.ProbeFailures == 0 {
		t.Fatalf("probe counters not moving: %+v", st)
	}
	s.Close()
	s.Close() // idempotent
}
