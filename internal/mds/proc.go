package mds

import (
	"math"

	"arbods/internal/congest"
)

// Output is the per-node result of every algorithm in this package.
type Output struct {
	// InDS reports membership in the final dominating set S ∪ S′.
	InDS bool
	// InPartial reports membership in the partial set S of Lemma 4.1.
	InPartial bool
	// InExtension reports membership in the completion/extension set S′.
	InExtension bool
	// Dominated reports whether the node ended dominated. It must be true
	// for every node whenever the algorithm's guarantee applies; the
	// verifier checks it.
	Dominated bool
	// Packing is the node's final Lemma 4.1 packing value x_v — frozen
	// before any extension-phase rescaling, so the vector {Packing} is a
	// feasible packing and Σ Packing ≤ OPT (Lemma 2.1). It certifies the
	// approximation ratio of the run.
	Packing float64
	// Tau is τ_v = min_{u∈N+(v)} w_u (0 for algorithms that do not use it).
	Tau int64
	// SampledDominators is the Lemma 4.7 quantity c_v: the number of
	// extension-sampled nodes that dominate this node in the iteration it
	// first became dominated (0 if dominated during the partial phase or
	// never). Lemma 4.7 proves E[c_v] ≤ γ+1; the test suite and the
	// diagnostics table check it empirically.
	SampledDominators int
}

// completionMode selects what happens to nodes left undominated by the
// partial phase.
type completionMode int

const (
	// completeNone leaves them undominated (Lemma 4.1 by itself).
	completeNone completionMode = iota + 1
	// completeSelf adds every undominated node to the set (Section 3's T).
	completeSelf
	// completeRequest adds, for every undominated node v, the node of
	// weight τ_v in N+(v) (Theorem 1.1's S′).
	completeRequest
	// completeExtension runs the Lemma 4.6 randomized extension.
	completeExtension
)

// detParams configures the unified proc.
type detParams struct {
	eps    float64
	lambda float64
	mode   completionMode

	// Extension parameters (mode == completeExtension).
	gamma       float64
	skipPartial bool // Theorem 1.3: S = ∅, jump straight to the extension

	// forceIters, when positive, overrides the Lemma 4.1 iteration count —
	// used by the round-truncation sweeps of the lower-bound experiment
	// (fewer rounds ⇒ worse approximation, the Theorem 1.4 phenomenon).
	forceIters int

	// noFreeze disables the freeze-on-domination rule (paper step 3 raises
	// only undominated packing values). Ablation only: without the freeze
	// the packing loses feasibility, so Σx stops lower-bounding OPT and the
	// whole certificate collapses — which is precisely what the ablation
	// experiment demonstrates.
	noFreeze bool
}

// stage is the proc's position in the globally synchronized schedule. All
// nodes transition through stages in lockstep because transitions depend
// only on the globally known parameters (n, Δ, α, ε, λ, γ).
type stage int

const (
	stInit     stage = iota + 1 // broadcast weight
	stSetup                     // compute τ, x⁰; broadcast packing
	stIterA                     // absorb packing; join S on threshold; broadcast join
	stIterB                     // absorb joins; bump x; broadcast packing (+ dom at handoff)
	stCompReq                   // undominated nodes request their τ-neighbor
	stCompJoin                  // requested nodes join S′
	stExtA                      // phase/iteration bookkeeping; sample Γ; broadcast join
	stExtB                      // absorb joins; newly dominated broadcast dom
	stDone
)

// proc is the unified node proc for the deterministic algorithms
// (Theorems 3.1 and 1.1, Lemma 4.1) and the randomized ones
// (Lemma 4.6, Theorems 1.2 and 1.3).
type proc struct {
	p     detParams
	ni    congest.NodeInfo
	delta int // Δ, globally known

	r int // number of Lemma 4.1 iterations

	// Neighbor caches, indexed by position in ni.Neighbors.
	nbrX   []float64
	nbrW   []int64
	nbrDom []bool

	tau    int64
	argmin int

	x    float64 // current packing value
	exp  int     // number of (1+ε) multiplications applied to x
	x41  float64 // x frozen at the end of the Lemma 4.1 phase (certificate)
	inS  bool
	inSP bool // in S′
	dom  bool

	requested bool // received a requestMsg

	// Extension state.
	extIters  int // iterations per phase: ⌈log_γ(Δ+1)⌉ + 1
	extPhases int // phases: ⌈log_γ(1/λ)⌉
	phaseIdx  int
	iterIdx   int
	prob      float64
	inGamma   bool

	// Lemma 4.7 bookkeeping.
	cv     int  // c_v: sampled dominators at first domination
	cvSet  bool // c_v recorded
	cvSelf bool // this node sampled itself while undominated last round

	st   stage
	iter int // Lemma 4.1 iteration counter
}

var _ congest.Proc[Output] = (*proc)(nil)

// init constructs the proc in place (pr is a slab entry the run's factory
// owns), carving the neighbor caches from the run's arena.
func (pr *proc) init(p detParams, ni congest.NodeInfo) {
	deg := ni.Degree()
	*pr = proc{
		p:     p,
		ni:    ni,
		delta: ni.MaxDegree,
		nbrX:  ni.Arena.Float64s(deg),
		nbrW:  ni.Arena.Int64s(deg),
		st:    stInit,
	}
	if p.mode == completeExtension {
		pr.nbrDom = ni.Arena.Bools(deg)
		pr.extIters = extensionIterations(p.gamma, pr.delta)
		pr.extPhases = extensionPhases(p.gamma, p.lambda)
	}
	switch {
	case p.skipPartial:
		pr.r = 0
	case p.forceIters > 0:
		pr.r = p.forceIters
	default:
		pr.r = partialIterations(p.eps, p.lambda, pr.delta)
	}
}

// partialIterations returns the Lemma 4.1 iteration count r: the integer
// with (1+ε)^{r-1} ≤ λ(Δ+1) < (1+ε)^r, or 0 when λ < 1/(Δ+1) (in which
// case the lemma sets S = ∅).
func partialIterations(eps, lambda float64, delta int) int {
	target := lambda * float64(delta+1)
	if target < 1 {
		return 0
	}
	r := int(math.Floor(math.Log(target)/math.Log1p(eps))) + 1
	for r > 1 && math.Pow(1+eps, float64(r-1)) > target {
		r--
	}
	for math.Pow(1+eps, float64(r)) <= target {
		r++
	}
	return r
}

// extensionIterations returns the per-phase iteration count of Lemma 4.6:
// r = ⌈log_γ(Δ+1)⌉ + 1, which guarantees the sampling probability reaches 1.
func extensionIterations(gamma float64, delta int) int {
	r := int(math.Ceil(math.Log(float64(delta+1))/math.Log(gamma))) + 1
	if r < 1 {
		r = 1
	}
	return r
}

// extensionPhases returns t = ⌈log_γ(1/λ)⌉, the number of Γ-phases of
// Lemma 4.6.
func extensionPhases(gamma, lambda float64) int {
	t := int(math.Ceil(math.Log(1/lambda) / math.Log(gamma)))
	if t < 1 {
		t = 1
	}
	return t
}

// xValue reconstructs τ·(1+ε)^exp/(Δ+1) from a packing message.
func (pr *proc) xValue(tau int64, exp int32) float64 {
	return float64(tau) * math.Pow(1+pr.p.eps, float64(exp)) / float64(pr.delta+1)
}

// absorb processes an inbox, updating neighbor caches. It reports whether
// any message implied that this node is now dominated. The sender's
// position in the neighbor caches comes precomputed with each packet
// (Incoming.Idx), so there is no per-message search.
func (pr *proc) absorb(in []congest.Incoming) (dominatedNow bool) {
	for _, m := range in {
		i := m.Idx
		switch m.P.Tag {
		case congest.TagPacking:
			tau, exp, _ := packingFields(m.P)
			pr.nbrX[i] = pr.xValue(tau, exp)
		case congest.TagWeight:
			w, _ := weightFields(m.P)
			pr.nbrW[i] = w
		case congest.TagJoin:
			if pr.nbrDom != nil {
				pr.nbrDom[i] = true
			}
			dominatedNow = true
		case congest.TagDom:
			if pr.nbrDom != nil {
				pr.nbrDom[i] = true
			}
		case congest.TagRequest:
			pr.requested = true
		}
	}
	return dominatedNow
}

// bigX returns X_u = Σ_{v∈N+(u)} x_v over the full closed neighborhood.
func (pr *proc) bigX() float64 {
	sum := pr.x
	for _, xv := range pr.nbrX {
		sum += xv
	}
	return sum
}

// bigXUndominated returns X_u restricted to undominated closed neighbors
// (the Lemma 4.6 quantity).
func (pr *proc) bigXUndominated() float64 {
	var sum float64
	if !pr.dom {
		sum = pr.x
	}
	for i, xv := range pr.nbrX {
		if !pr.nbrDom[i] {
			sum += xv
		}
	}
	return sum
}

// Step implements congest.Proc.
func (pr *proc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	switch pr.st {
	case stInit:
		s.Broadcast(packWeight(pr.ni.Weight, int32(pr.ni.Degree())))
		pr.st = stSetup
		return false

	case stSetup:
		pr.absorb(in)
		pr.computeTau()
		pr.x = float64(pr.tau) / float64(pr.delta+1)
		pr.x41 = pr.x
		if pr.r > 0 {
			s.Broadcast(packPacking(pr.tau, 0, 0))
			pr.st = stIterA
			return false
		}
		return pr.afterPartial(s, true /* broadcastPacking */)

	case stIterA:
		pr.absorb(in)
		if !pr.inS && pr.bigX() >= pr.threshold() {
			pr.inS = true
			pr.dom = true
			s.Broadcast(packJoin())
		}
		pr.st = stIterB
		return false

	case stIterB:
		if pr.absorb(in) {
			pr.dom = true
		}
		pr.iter++
		if !pr.dom || (pr.p.noFreeze && !pr.inS) {
			// Paper, step 3: undominated nodes raise their packing value.
			// The raise of the final iteration is included — property (b)
			// needs x_v > λτ_v for every undominated node. (With the
			// noFreeze ablation, dominated non-members keep raising too,
			// which destroys packing feasibility.)
			pr.exp++
			pr.x *= 1 + pr.p.eps
			// The final raise is broadcast only when someone will read it:
			// the completion request round or the extension. Self/none
			// completions terminate everyone this round, so broadcasting
			// would only ship messages to terminated nodes.
			lastAndLocal := pr.iter == pr.r &&
				(pr.p.mode == completeSelf || pr.p.mode == completeNone)
			if !lastAndLocal {
				s.Broadcast(packPacking(pr.tau, int32(pr.exp), 0))
			}
		}
		if pr.iter < pr.r {
			pr.st = stIterA
			return false
		}
		return pr.afterPartial(s, false)

	case stCompReq:
		// Inbox may contain the final packing broadcasts; absorb for
		// completeness of the local view.
		pr.absorb(in)
		if !pr.dom {
			if pr.argmin == pr.ni.ID {
				pr.inSP = true
				pr.dom = true
			} else {
				s.Send(pr.argmin, packRequest())
				// The τ-neighbor joins next round, so v is dominated.
				pr.dom = true
			}
		}
		pr.st = stCompJoin
		return false

	case stCompJoin:
		pr.absorb(in)
		if pr.requested && !pr.inS {
			pr.inSP = true
			pr.dom = true
		}
		pr.st = stDone
		return true

	case stExtA:
		pr.absorb(in)
		if pr.iterIdx == 0 {
			pr.beginPhase()
		} else {
			pr.prob = math.Min(pr.prob*pr.p.gamma, 1)
			if pr.inGamma && pr.bigXUndominated() < pr.gammaThreshold() {
				pr.inGamma = false
			}
		}
		if pr.iterIdx == pr.extIters-1 {
			// Last iteration of the phase samples with probability 1
			// (the proof of Lemma 4.6 relies on it).
			pr.prob = 1
		}
		if pr.inGamma && pr.ni.Rand.Bernoulli(pr.prob) {
			if !pr.dom {
				// First domination happens now, by its own sampling; the
				// same-iteration sampled neighbors arrive next round.
				pr.cvSelf = true
			}
			pr.inSP = true
			pr.dom = true
			pr.inGamma = false
			s.Broadcast(packJoin())
		}
		pr.st = stExtB
		return false

	case stExtB:
		wasDom := pr.dom
		joins := 0
		for _, m := range in {
			if m.P.Tag == congest.TagJoin {
				joins++
			}
		}
		if pr.absorb(in) {
			pr.dom = true
		}
		switch {
		case pr.cvSelf:
			pr.cv = 1 + joins
			pr.cvSet = true
			pr.cvSelf = false
		case !wasDom && pr.dom && !pr.cvSet:
			pr.cv = joins
			pr.cvSet = true
		}
		last := pr.phaseIdx == pr.extPhases-1 && pr.iterIdx == pr.extIters-1
		if pr.dom && !wasDom && !last {
			s.Broadcast(packDom())
		}
		pr.iterIdx++
		if pr.iterIdx == pr.extIters {
			pr.iterIdx = 0
			pr.phaseIdx++
		}
		if pr.phaseIdx == pr.extPhases {
			pr.st = stDone
			return true
		}
		pr.st = stExtA
		return false
	}
	return true
}

// computeTau derives τ_v and the minimum-weight closed neighbor from the
// weight messages absorbed during setup. Ties break toward the lower ID so
// the algorithm is deterministic.
func (pr *proc) computeTau() {
	pr.tau, pr.argmin = pr.ni.Weight, pr.ni.ID
	for i, u := range pr.ni.Neighbors {
		w := pr.nbrW[i]
		if w < pr.tau || (w == pr.tau && int(u) < pr.argmin) {
			pr.tau, pr.argmin = w, int(u)
		}
	}
}

// threshold returns the Lemma 4.1 join threshold w_u/(1+ε).
func (pr *proc) threshold() float64 {
	return float64(pr.ni.Weight) / (1 + pr.p.eps)
}

// gammaThreshold returns the Lemma 4.6 Γ-membership threshold w_u/γ, with a
// tiny relative slack. The slack matters: the termination proof of the lemma
// rests on the τ-neighbor of an undominated node reaching X_u ≥ w_u/γ, and
// with parameters like γ^t·λ = 1 that comparison lands exactly on the
// boundary, where float rounding must not be allowed to flip it.
func (pr *proc) gammaThreshold() float64 {
	return float64(pr.ni.Weight) / pr.p.gamma * (1 - 1e-9)
}

// afterPartial transitions out of the Lemma 4.1 phase. broadcastPacking is
// set when coming straight from setup (r == 0) and the extension still needs
// the initial packing values on the wire.
func (pr *proc) afterPartial(s *congest.Sender, broadcastPacking bool) bool {
	pr.x41 = pr.x
	switch pr.p.mode {
	case completeNone:
		pr.st = stDone
		return true
	case completeSelf:
		if !pr.dom {
			pr.inSP = true
			pr.dom = true
		}
		pr.st = stDone
		return true
	case completeRequest:
		pr.st = stCompReq
		return false
	case completeExtension:
		if broadcastPacking {
			s.Broadcast(packPacking(pr.tau, int32(pr.exp), 0))
		}
		if pr.dom {
			// The extension maintains X_u over undominated nodes only, so
			// neighbors must learn who is already dominated.
			s.Broadcast(packDom())
		}
		pr.st = stExtA
		return false
	}
	pr.st = stDone
	return true
}

// beginPhase starts Γ-phase phaseIdx: rescale undominated packing values by
// γ (for every phase after the first), reset the sampling probability, and
// recompute Γ membership.
func (pr *proc) beginPhase() {
	if pr.phaseIdx > 0 {
		if !pr.dom {
			pr.x *= pr.p.gamma
		}
		for i := range pr.nbrX {
			if !pr.nbrDom[i] {
				pr.nbrX[i] *= pr.p.gamma
			}
		}
	}
	pr.prob = 1 / float64(pr.delta+1)
	pr.inGamma = !pr.inS && !pr.inSP && pr.bigXUndominated() >= pr.gammaThreshold()
}

// Output implements congest.Proc.
func (pr *proc) Output() Output {
	return Output{
		InDS:              pr.inS || pr.inSP,
		InPartial:         pr.inS,
		InExtension:       pr.inSP,
		Dominated:         pr.dom,
		Packing:           pr.x41,
		Tau:               pr.tau,
		SampledDominators: pr.cv,
	}
}
