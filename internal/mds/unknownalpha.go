package mds

import (
	"arbods/internal/congest"
	"arbods/internal/graph"
	"arbods/internal/orient"
)

// uaProc implements Remark 4.5: the dominating set algorithm when the
// arboricity is not known. It composes three stages:
//
//  1. the Barenboim–Elkin-style H-partition orientation with doubling
//     estimates (internal/orient), giving each node an out-degree at most
//     (2+ε)·2α on a fixed, globally known schedule;
//  2. one round in which every node announces its out-degree, from which
//     each node v computes its local arboricity estimate
//     α̂_v = max_{u∈N+(v)} outdeg(u) and the threshold λ_v = 1/((2α̂_v+1)(1+ε));
//  3. the Remark 4.4 iteration loop (udProc) with the per-node λ_v and
//     packing values initialized to τ_v/(n+1), running to local quiescence.
//
// uaProc embeds its two phase procs by value, so it holds two NodeInfo
// copies and with them two identically-seeded value copies of the node's
// random stream. Neither phase draws randomness today; if one ever does,
// it must be the only one (see the NodeInfo.Rand fork caveat).
type uaProc struct {
	orient orient.Proc
	ud     udProc
	eps    float64

	alphaHat int
	st       int // 0 orienting; 1 announce out-degree; 2 compute α̂ + start; 3 delegate
}

var _ congest.Proc[Output] = (*uaProc)(nil)

func (p *uaProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	switch p.st {
	case 0:
		if p.orient.Step(in, s) {
			p.st = 1
		}
		return false
	case 1:
		// Final-round peel announcements are still in flight; absorb them
		// before computing the out-degree.
		p.orient.Absorb(in)
		s.Broadcast(packDegree(int32(p.orient.OutDegree())))
		p.st = 2
		return false
	case 2:
		p.alphaHat = p.orient.OutDegree()
		for _, m := range in {
			if m.P.Tag == congest.TagDegree {
				if d := int(degreeFields(m.P)); d > p.alphaHat {
					p.alphaHat = d
				}
			}
		}
		if p.alphaHat < 1 {
			p.alphaHat = 1
		}
		p.ud.lambda = 1 / (float64(2*p.alphaHat+1) * (1 + p.eps))
		p.st = 3
		// Kick off the inner loop's weight exchange in this same round.
		return p.ud.Step(round, nil, s)
	default:
		return p.ud.Step(round, in, s)
	}
}

func (p *uaProc) Output() Output { return p.ud.Output() }

// UnknownAlpha runs the Remark 4.5 variant: no global knowledge of α (or Δ);
// nodes know only n. The approximation factor is (2α̂+1)(2+O(ε))-flavoured
// where α̂ ≤ (2+ε)·2α is the local out-degree estimate; the orientation
// prefix costs O(log α · log n/ε) rounds on a fixed schedule (see
// DESIGN.md §5.2 for the substitution relative to the remark's sketch).
func UnknownAlpha(g *graph.Graph, eps float64, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	sched, err := orient.NewSchedule(g.N(), 0, eps)
	if err != nil {
		return nil, err
	}
	slab := make([]uaProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[Output] {
		p := &slab[ni.ID]
		p.eps = eps
		p.orient.Init(ni, sched, eps)
		// λ is learned from the orientation phase (stage 2 fills it in).
		p.ud.init(ni, eps, 0, ni.N+1)
		return p
	}
	res, err := congest.Run(g, factory, opts...)
	if err != nil {
		return nil, err
	}
	rep := buildReport("unknown-alpha", res, g)
	rep.Eps = eps
	return rep, nil
}
