package mds_test

import (
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/mds"
)

// TestCleanTermination: the fixed-schedule algorithms (Theorems 3.1, 1.1,
// 1.2, 1.3) terminate all nodes simultaneously, so no message may ever be
// sent to a locally-terminated node. This pins down the round schedules:
// an off-by-one in any stage transition shows up as a dropped message.
func TestCleanTermination(t *testing.T) {
	w := gen.ForestUnion(200, 3, 11)
	g := gen.UniformWeights(w.G, 60, 3)
	runs := []struct {
		name string
		run  func() (*mds.Report, error)
	}{
		{"thm3.1", func() (*mds.Report, error) {
			return mds.UnweightedDeterministic(w.G, 3, 0.2, congest.WithSeed(4))
		}},
		{"thm1.1", func() (*mds.Report, error) {
			return mds.WeightedDeterministic(g, 3, 0.2, congest.WithSeed(4))
		}},
		{"thm1.2", func() (*mds.Report, error) {
			return mds.WeightedRandomized(g, 3, 2, congest.WithSeed(4))
		}},
		{"thm1.3", func() (*mds.Report, error) {
			return mds.GeneralGraphs(g, 2, congest.WithSeed(4))
		}},
		{"partial", func() (*mds.Report, error) {
			return mds.PartialWeighted(g, 3, 0.2, 0.05, congest.WithSeed(4))
		}},
		{"tree", func() (*mds.Report, error) {
			tr := gen.RandomTree(150, 9)
			return mds.TreeThreeApprox(tr.G)
		}},
	}
	for _, tt := range runs {
		t.Run(tt.name, func(t *testing.T) {
			rep, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Result.DroppedMessages != 0 {
				t.Fatalf("%d messages sent to terminated nodes — stage schedule off",
					rep.Result.DroppedMessages)
			}
		})
	}
}

// TestRoundFormula pins the exact round count of the deterministic
// algorithms to their schedule: 2 (weight exchange + setup) + 2r
// (iterations) + 2 (completion request/serve) for Theorem 1.1.
func TestRoundFormula(t *testing.T) {
	for _, eps := range []float64{0.1, 0.25, 0.5} {
		for _, alpha := range []int{1, 3} {
			w := gen.ForestUnion(150, alpha, 7)
			g := gen.UniformWeights(w.G, 40, 3)
			rep, err := mds.WeightedDeterministic(g, alpha, eps, congest.WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}
			r := (rep.Rounds() - 4) / 2
			if rep.Rounds() != 2+2*r+2 {
				t.Fatalf("rounds %d not of the form 2+2r+2", rep.Rounds())
			}
			// r must shrink as ε grows (fewer, coarser iterations).
			if eps >= 0.5 && r > 40 {
				t.Fatalf("ε=%g used %d iterations", eps, r)
			}
		}
	}
}

// TestStressLargeGraph runs Theorem 1.1 on a 100k-node instance — the
// simulator and algorithm must scale linearly. Skipped with -short.
func TestStressLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	w := gen.ForestUnion(100_000, 3, 13)
	g := gen.UniformWeights(w.G, 1000, 17)
	rep, err := mds.WeightedDeterministic(g, 3, 0.2, congest.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllDominated {
		t.Fatal("not dominated")
	}
	if rep.CertifiedRatio() > rep.Factor {
		t.Fatalf("certificate violated at scale: %g > %g", rep.CertifiedRatio(), rep.Factor)
	}
	t.Logf("n=100k: %d rounds, %d messages, |DS|=%d, certified %.2f",
		rep.Rounds(), rep.Messages(), len(rep.DS), rep.CertifiedRatio())
}

// TestBandwidthTightBudget: the algorithms must still work under a much
// tighter (but sufficient) explicit budget, and fail cleanly under an
// absurd one.
func TestBandwidthTightBudget(t *testing.T) {
	w := gen.ForestUnion(100, 2, 3)
	g := gen.UniformWeights(w.G, 50, 3)
	// Weight+packing messages need ≈ 4+41+12 bits; 64 is plenty.
	if _, err := mds.WeightedDeterministic(g, 2, 0.25,
		congest.WithSeed(1), congest.WithBandwidth(64)); err != nil {
		t.Fatalf("64-bit budget should suffice: %v", err)
	}
	// 8 bits cannot carry a weight announcement.
	if _, err := mds.WeightedDeterministic(g, 2, 0.25,
		congest.WithSeed(1), congest.WithBandwidth(8)); err == nil {
		t.Fatal("8-bit budget must fail in strict mode")
	}
	// …but passes in audit mode, with violations recorded.
	rep, err := mds.WeightedDeterministic(g, 2, 0.25,
		congest.WithSeed(1), congest.WithBandwidth(8), congest.WithMode(congest.CongestAudit))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.BandwidthViolations == 0 {
		t.Fatal("audit mode recorded no violations under an 8-bit budget")
	}
}

// TestLocalMode: the algorithms run identically in the LOCAL model (the
// lower bound of Theorem 1.4 holds even there, Section 2).
func TestLocalMode(t *testing.T) {
	w := gen.ForestUnion(120, 2, 5)
	g := gen.UniformWeights(w.G, 50, 3)
	a, err := mds.WeightedDeterministic(g, 2, 0.25, congest.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mds.WeightedDeterministic(g, 2, 0.25, congest.WithSeed(9), congest.WithMode(congest.Local))
	if err != nil {
		t.Fatal(err)
	}
	if a.DSWeight != b.DSWeight || a.Rounds() != b.Rounds() {
		t.Fatalf("LOCAL and CONGEST runs diverged: %d/%d vs %d/%d",
			a.DSWeight, a.Rounds(), b.DSWeight, b.Rounds())
	}
}
