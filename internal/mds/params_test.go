package mds

import (
	"math"
	"testing"
	"testing/quick"
)

// White-box tests pinning the parameter formulas of the unified proc to the
// paper's definitions.

// TestPartialIterationsDefinition: r is the integer with
// (1+ε)^{r-1} ≤ λ(Δ+1) < (1+ε)^r, and 0 iff λ < 1/(Δ+1) (Lemma 4.1's
// "set S = ∅" case).
func TestPartialIterationsDefinition(t *testing.T) {
	prop := func(epsRaw, lambdaRaw uint16, deltaRaw uint16) bool {
		eps := 0.02 + float64(epsRaw%900)/1000.0 // [0.02, 0.92]
		delta := int(deltaRaw % 5000)
		lambda := float64(lambdaRaw%1000+1) / 1000.0 // (0, 1]
		r := partialIterations(eps, lambda, delta)
		target := lambda * float64(delta+1)
		if target < 1 {
			return r == 0
		}
		if r < 1 {
			return false
		}
		lowOK := math.Pow(1+eps, float64(r-1)) <= target*(1+1e-12)
		highOK := target < math.Pow(1+eps, float64(r))*(1+1e-12)
		return lowOK && highOK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionIterationsReachProbabilityOne: the per-phase iteration count
// must push the sampling probability γ^{i}/(Δ+1) to at least 1 by the last
// iteration — the proof of Lemma 4.6 samples all of Γ then.
func TestExtensionIterationsReachProbabilityOne(t *testing.T) {
	prop := func(gRaw uint16, deltaRaw uint16) bool {
		gamma := 1.1 + float64(gRaw%400)/100.0 // [1.1, 5.1]
		delta := int(deltaRaw % 10000)
		iters := extensionIterations(gamma, delta)
		if iters < 1 {
			return false
		}
		p := math.Pow(gamma, float64(iters-1)) / float64(delta+1)
		return p >= 1-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionPhasesCoverLambda: after t phases the packing multiplier
// γ^t must reach 1/λ — the termination argument of Lemma 4.6.
func TestExtensionPhasesCoverLambda(t *testing.T) {
	prop := func(gRaw, lRaw uint16) bool {
		gamma := 1.2 + float64(gRaw%300)/100.0
		lambda := float64(lRaw%999+1) / 1000.0
		phases := extensionPhases(gamma, lambda)
		if phases < 1 {
			return false
		}
		return math.Pow(gamma, float64(phases)) >= 1/lambda*(1-1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialFactorMatchesLemma pins PartialFactor against a hand
// computation for the Theorem 1.1 parameters.
func TestPartialFactorMatchesLemma(t *testing.T) {
	alpha, eps := 3, 0.25
	lambda := 1 / (float64(2*alpha+1) * (1 + eps))
	got := PartialFactor(alpha, eps, lambda)
	want := float64(alpha) / (1/(1+eps) - lambda*float64(alpha+1))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PartialFactor = %g, want %g", got, want)
	}
	// With the Theorem 1.1 λ, the combined factor bound must equal
	// (2α+1)(1+ε) for the S′ side: 1/λ.
	if math.Abs(1/lambda-float64(2*alpha+1)*(1+eps)) > 1e-9 {
		t.Fatal("λ inversion broken")
	}
}

// TestValidation exercises the constructor argument checks.
func TestValidation(t *testing.T) {
	if err := validateEps(0); err == nil {
		t.Fatal("ε=0 accepted")
	}
	if err := validateEps(1); err == nil {
		t.Fatal("ε=1 accepted")
	}
	if err := validateEps(0.5); err != nil {
		t.Fatal(err)
	}
	if err := validateAlpha(0); err == nil {
		t.Fatal("α=0 accepted")
	}
}
