package mds_test

import (
	"testing"
	"testing/quick"

	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/mds"
	"arbods/internal/verify"
)

// collect extracts the per-node membership and packing vectors of a report.
func collect(rep *mds.Report) (inSet []bool, packing []float64) {
	inSet = make([]bool, len(rep.Result.Outputs))
	packing = make([]float64, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		inSet[v] = out.InDS
		packing[v] = out.Packing
	}
	return inSet, packing
}

// checkRun asserts the universal invariants of a completed run: valid
// dominating set, feasible packing, and (for deterministic algorithms) the
// per-run certificate w(S) ≤ Factor·Σx.
func checkRun(t *testing.T, g *graph.Graph, rep *mds.Report) {
	t.Helper()
	if !rep.AllDominated {
		t.Fatalf("%s: report says not all nodes dominated", rep.Algorithm)
	}
	inSet, packing := collect(rep)
	if und := verify.DominatingSet(g, inSet); len(und) > 0 {
		t.Fatalf("%s: not a dominating set; %d undominated, first=%d", rep.Algorithm, len(und), und[0])
	}
	if err := verify.PackingFeasible(g, packing, verify.DefaultTol); err != nil {
		t.Fatalf("%s: %v", rep.Algorithm, err)
	}
	if rep.Factor > 0 {
		if err := verify.Certificate(g, inSet, packing, rep.Factor, verify.DefaultTol); err != nil {
			t.Fatalf("%s: %v", rep.Algorithm, err)
		}
	}
	if got := verify.SetWeight(g, inSet); got != rep.DSWeight {
		t.Fatalf("%s: DSWeight=%d but recount=%d", rep.Algorithm, rep.DSWeight, got)
	}
}

func testGraphs(t *testing.T) []gen.Result {
	t.Helper()
	return []gen.Result{
		gen.Path(40),
		gen.Cycle(31),
		gen.Star(25),
		gen.RandomTree(60, 7),
		gen.ForestUnion(80, 2, 11),
		gen.ForestUnion(70, 4, 13),
		gen.Grid(8, 9),
		gen.Torus(6, 7),
		gen.Complete(12),
		gen.BarabasiAlbert(90, 3, 17),
		{G: graph.NewBuilder(1).MustBuild(), Name: "singleton", ArboricityBound: 1},
		{G: graph.NewBuilder(5).MustBuild(), Name: "empty5", ArboricityBound: 1},
	}
}

func alphaFor(w gen.Result) int {
	if w.ArboricityBound > 0 {
		return w.ArboricityBound
	}
	// Fall back to a generous bound for constructions without one.
	return 4
}

func TestUnweightedDeterministic(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			rep, err := mds.UnweightedDeterministic(w.G, alphaFor(w), 0.2, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, w.G, rep)
		})
	}
}

func TestWeightedDeterministic(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 100, 3)
			rep, err := mds.WeightedDeterministic(g, alphaFor(w), 0.2, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, rep)
		})
	}
}

func TestWeightedRandomized(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 50, 5)
			rep, err := mds.WeightedRandomized(g, alphaFor(w), 2, congest.WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, rep)
		})
	}
}

func TestGeneralGraphs(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 50, 5)
			rep, err := mds.GeneralGraphs(g, 2, congest.WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, rep)
		})
	}
}

func TestUnknownDelta(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 100, 3)
			rep, err := mds.UnknownDelta(g, alphaFor(w), 0.2, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, rep)
		})
	}
}

func TestUnknownAlpha(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 100, 3)
			rep, err := mds.UnknownAlpha(g, 0.25, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, rep)
		})
	}
}

// TestPartialProperties checks the two properties of Lemma 4.1 exactly:
// (a) w(S) ≤ α(1/(1+ε) − λ(α+1))⁻¹ · Σ_{v∈N+(S)} x_v,
// (b) every undominated node has x_v > λτ_v.
func TestPartialProperties(t *testing.T) {
	for _, w := range testGraphs(t) {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 100, 3)
			alpha := alphaFor(w)
			eps := 0.25
			lambda := 0.5 / (float64(alpha+1) * (1 + eps))
			rep, err := mds.PartialWeighted(g, alpha, eps, lambda, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			_, packing := collect(rep)
			if err := verify.PackingFeasible(g, packing, verify.DefaultTol); err != nil {
				t.Fatal(err)
			}
			var dominatedPacking float64
			var partialWeight int64
			for v, out := range rep.Result.Outputs {
				if out.InPartial {
					partialWeight += g.Weight(v)
				}
				if out.Dominated {
					dominatedPacking += out.Packing
				} else {
					// Property (b).
					if out.Packing <= lambda*float64(out.Tau)*(1-1e-12) {
						t.Fatalf("node %d undominated with x=%g ≤ λτ=%g", v, out.Packing, lambda*float64(out.Tau))
					}
				}
			}
			// Property (a).
			bound := mds.PartialFactor(alpha, eps, lambda) * dominatedPacking
			if float64(partialWeight) > bound*(1+1e-9) {
				t.Fatalf("property (a) violated: w(S)=%d > %g", partialWeight, bound)
			}
		})
	}
}

// TestPseudoforestFootnote validates footnote 2 of the paper: the
// algorithms only need the graph to be orientable with out-degree ≤ α, so
// a union of k pseudoforests (true arboricity up to 2k) can be solved with
// α = k — and the (2k+1)(1+ε) certificate must still hold.
func TestPseudoforestFootnote(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		w := gen.PseudoforestUnion(120, k, uint64(10*k+1))
		g := gen.UniformWeights(w.G, 50, 5)
		rep, err := mds.WeightedDeterministic(g, k, 0.25, congest.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		checkRun(t, g, rep) // includes the (2k+1)(1+ε) certificate
	}
}

// TestQuickWeightedDeterministic is the central property test: on random
// bounded-arboricity graphs with random weights and seeds, Theorem 1.1
// must always produce a dominating set, a feasible packing, and satisfy
// its certificate.
func TestQuickWeightedDeterministic(t *testing.T) {
	prop := func(seed uint64, kRaw, epsRaw uint8) bool {
		k := int(kRaw%4) + 1
		eps := 0.05 + float64(epsRaw%8)*0.1
		w := gen.ForestUnion(60, k, seed)
		g := gen.UniformWeights(w.G, 30, seed+1)
		rep, err := mds.WeightedDeterministic(g, k, eps, congest.WithSeed(seed))
		if err != nil || !rep.AllDominated {
			return false
		}
		inSet := make([]bool, g.N())
		packing := make([]float64, g.N())
		for v, out := range rep.Result.Outputs {
			inSet[v] = out.InDS
			packing[v] = out.Packing
		}
		if len(verify.DominatingSet(g, inSet)) > 0 {
			return false
		}
		if verify.PackingFeasible(g, packing, verify.DefaultTol) != nil {
			return false
		}
		return verify.Certificate(g, inSet, packing, rep.Factor, verify.DefaultTol) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomizedAlgorithms: same property sweep for the randomized
// algorithms (no deterministic factor, but domination and packing
// feasibility are unconditional).
func TestQuickRandomizedAlgorithms(t *testing.T) {
	prop := func(seed uint64, kRaw, tRaw uint8) bool {
		k := int(kRaw%4) + 1
		tt := int(tRaw%3) + 1
		w := gen.ForestUnion(50, k, seed)
		g := gen.UniformWeights(w.G, 30, seed+1)
		rep, err := mds.WeightedRandomized(g, k, tt, congest.WithSeed(seed))
		if err != nil || !rep.AllDominated {
			return false
		}
		inSet := make([]bool, g.N())
		packing := make([]float64, g.N())
		for v, out := range rep.Result.Outputs {
			inSet[v] = out.InDS
			packing[v] = out.Packing
		}
		return len(verify.DominatingSet(g, inSet)) == 0 &&
			verify.PackingFeasible(g, packing, verify.DefaultTol) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma47SampledDominators checks the Lemma 4.7 bound empirically:
// averaged over nodes and seeds, the number of sampled dominators at a
// node's first-domination iteration must stay near E[c_v] ≤ γ+1. The
// average over many nodes of i.i.d.-ish quantities concentrates, so a 1.5×
// margin on the mean is a meaningful (non-vacuous) check.
func TestLemma47SampledDominators(t *testing.T) {
	w := gen.ErdosRenyi(400, 0.03, 11)
	g := gen.UniformWeights(w.G, 30, 5)
	var total, count float64
	var gamma float64
	for seed := uint64(0); seed < 10; seed++ {
		rep, err := mds.GeneralGraphs(g, 2, congest.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		gamma = rep.Gamma
		for _, out := range rep.Result.Outputs {
			if out.SampledDominators > 0 {
				total += float64(out.SampledDominators)
				count++
			}
		}
	}
	if count == 0 {
		t.Fatal("no extension dominations recorded")
	}
	meanCV := total / count
	bound := (gamma + 1) * 1.5
	if meanCV > bound {
		t.Fatalf("mean c_v = %.2f exceeds 1.5·(γ+1) = %.2f (γ=%.2f)", meanCV, bound, gamma)
	}
	t.Logf("mean c_v = %.2f, Lemma 4.7 bound γ+1 = %.2f", meanCV, gamma+1)
}

func TestTreeThreeApprox(t *testing.T) {
	trees := []gen.Result{
		gen.Path(30),
		gen.Star(20),
		gen.RandomTree(45, 3),
		gen.Caterpillar(10, 3),
		gen.BalancedTree(3, 3),
		{G: graph.NewBuilder(2).AddEdge(0, 1).MustBuild(), Name: "K2", ArboricityBound: 1},
		{G: graph.NewBuilder(3).MustBuild(), Name: "isolated3", ArboricityBound: 1},
	}
	for _, w := range trees {
		t.Run(w.Name, func(t *testing.T) {
			rep, err := mds.TreeThreeApprox(w.G)
			if err != nil {
				t.Fatal(err)
			}
			inSet, _ := collect(rep)
			if und := verify.DominatingSet(w.G, inSet); len(und) > 0 {
				t.Fatalf("not dominating: %v", und)
			}
			if w.G.N() <= baseline.ExactLimit {
				opt, err := baseline.Exact(w.G)
				if err != nil {
					t.Fatal(err)
				}
				if rep.DSWeight > 3*opt.Weight {
					t.Fatalf("3-approximation violated: got %d, OPT=%d", rep.DSWeight, opt.Weight)
				}
			}
		})
	}
}

// TestApproxAgainstExact cross-checks every algorithm against the exact
// optimum on small instances.
func TestApproxAgainstExact(t *testing.T) {
	small := []gen.Result{
		gen.Path(16),
		gen.Cycle(15),
		gen.RandomTree(20, 3),
		gen.ForestUnion(18, 2, 5),
		gen.Grid(4, 5),
		gen.Complete(8),
		gen.ErdosRenyi(20, 0.2, 3),
	}
	for _, w := range small {
		t.Run(w.Name, func(t *testing.T) {
			g := gen.UniformWeights(w.G, 20, 7)
			opt, err := baseline.Exact(g)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Weight <= 0 && g.N() > 0 {
				t.Fatalf("exact solver returned weight %d", opt.Weight)
			}
			alpha := alphaFor(w)
			eps := 0.25
			rep, err := mds.WeightedDeterministic(g, alpha, eps, congest.WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, g, rep)
			bound := float64(2*alpha+1) * (1 + eps) * float64(opt.Weight)
			if float64(rep.DSWeight) > bound*(1+1e-9) {
				t.Fatalf("approximation vs exact violated: got %d, bound %g (OPT=%d)",
					rep.DSWeight, bound, opt.Weight)
			}
			// The packing lower bound must be consistent with OPT.
			if rep.PackingSum > float64(opt.Weight)*(1+1e-9) {
				t.Fatalf("packing sum %g exceeds OPT %d", rep.PackingSum, opt.Weight)
			}
		})
	}
}

// TestWeightSensitivity pins the weighted algorithm's qualitative behavior
// on adversarial stars — the cases where weight-blind algorithms fail.
func TestWeightSensitivity(t *testing.T) {
	const leaves = 50
	build := func(center, leaf int64) *graph.Graph {
		b := graph.NewBuilder(leaves + 1)
		b.SetWeight(0, center)
		for v := 1; v <= leaves; v++ {
			b.AddEdge(0, v)
			b.SetWeight(v, leaf)
		}
		return b.MustBuild()
	}
	// Cheap center: OPT = 1 (the center alone). The algorithm must find a
	// solution within its bound of that.
	cheap := build(1, 100)
	rep, err := mds.WeightedDeterministic(cheap, 1, 0.25, congest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, cheap, rep)
	if float64(rep.DSWeight) > rep.Factor*1 {
		t.Fatalf("cheap center: weight %d exceeds bound·OPT = %.1f", rep.DSWeight, rep.Factor)
	}
	// Expensive center: OPT = leaves (all leaves at weight 1 each). A
	// weight-blind algorithm would grab the degree-50 center (weight 10⁵).
	dear := build(100_000, 1)
	rep, err = mds.WeightedDeterministic(dear, 1, 0.25, congest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, dear, rep)
	if float64(rep.DSWeight) > rep.Factor*float64(leaves) {
		t.Fatalf("expensive center: weight %d exceeds bound·OPT = %.1f",
			rep.DSWeight, rep.Factor*float64(leaves))
	}
	if rep.DSWeight >= 100_000 {
		t.Fatalf("expensive center was selected (weight %d)", rep.DSWeight)
	}
}

// TestDisconnectedComponents: every algorithm must handle graphs whose
// components differ wildly (a clique, a path, isolated nodes).
func TestDisconnectedComponents(t *testing.T) {
	b := graph.NewBuilder(20)
	for u := 0; u < 5; u++ { // clique on 0..4
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	for v := 5; v < 11; v++ { // path on 5..11
		b.AddEdge(v, v+1)
	}
	// nodes 12..19: eight isolated nodes
	g := b.MustBuild()
	gw := gen.UniformWeights(g, 20, 3)

	for _, tt := range []struct {
		name string
		run  func() (*mds.Report, error)
	}{
		{"weighted-det", func() (*mds.Report, error) {
			return mds.WeightedDeterministic(gw, 3, 0.25, congest.WithSeed(2))
		}},
		{"randomized", func() (*mds.Report, error) {
			return mds.WeightedRandomized(gw, 3, 2, congest.WithSeed(2))
		}},
		{"general", func() (*mds.Report, error) {
			return mds.GeneralGraphs(gw, 2, congest.WithSeed(2))
		}},
		{"unknown-delta", func() (*mds.Report, error) {
			return mds.UnknownDelta(gw, 3, 0.25, congest.WithSeed(2))
		}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			rep, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			checkRun(t, gw, rep)
			// All eight isolated nodes must be in the set.
			for v := 12; v < 20; v++ {
				if !rep.Result.Outputs[v].InDS {
					t.Fatalf("isolated node %d not selected", v)
				}
			}
		})
	}
}

// TestDeterminism checks that the same seed yields the same result with
// different worker counts (parallel == sequential).
func TestDeterminism(t *testing.T) {
	w := gen.ForestUnion(200, 3, 21)
	g := gen.UniformWeights(w.G, 100, 4)
	run := func(workers int) *mds.Report {
		rep, err := mds.WeightedRandomized(g, 3, 2, congest.WithSeed(42), congest.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	if a.DSWeight != b.DSWeight || len(a.DS) != len(b.DS) {
		t.Fatalf("parallel/sequential divergence: %d/%d vs %d/%d",
			a.DSWeight, len(a.DS), b.DSWeight, len(b.DS))
	}
	for i := range a.DS {
		if a.DS[i] != b.DS[i] {
			t.Fatalf("DS differs at index %d: %d vs %d", i, a.DS[i], b.DS[i])
		}
	}
	// Different seeds should (almost surely) explore different sets on a
	// graph this size; equality would suggest the seed is ignored.
	c := func() *mds.Report {
		rep, err := mds.WeightedRandomized(g, 3, 2, congest.WithSeed(1234))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()
	same := len(a.DS) == len(c.DS)
	if same {
		for i := range a.DS {
			if a.DS[i] != c.DS[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("warning: different seeds produced identical dominating sets (possible but unlikely)")
	}
}
