package mds

import (
	"fmt"
	"math"

	"arbods/internal/congest"
	"arbods/internal/graph"
)

// Report summarizes one algorithm run: the dominating set, its weight, the
// packing certificate, and the simulator transcript statistics.
type Report struct {
	// Algorithm names the algorithm, e.g. "weighted-deterministic".
	Algorithm string
	// Result is the raw simulator result with per-node outputs.
	Result *congest.Result[Output]

	// DS lists the dominating set members in increasing ID order.
	DS []int
	// DSWeight is w(S ∪ S′).
	DSWeight int64
	// PartialWeight is w(S), the Lemma 4.1 part.
	PartialWeight int64
	// ExtensionWeight is w(S′), the completion/extension part.
	ExtensionWeight int64
	// PackingSum is Σ_v x_v over the certified (feasible) packing; by
	// Lemma 2.1 it lower-bounds OPT.
	PackingSum float64
	// AllDominated reports whether every node ended dominated (must hold
	// whenever the algorithm's guarantee applies).
	AllDominated bool

	// Factor is the deterministic per-run guarantee: DSWeight ≤
	// Factor·PackingSum is certified for deterministic algorithms.
	// Zero when the algorithm's bound is in expectation only.
	Factor float64
	// ExpectedFactor is the analytic expected approximation bound for
	// randomized algorithms (zero otherwise).
	ExpectedFactor float64

	// Parameters used by the run.
	Eps, Lambda, Gamma float64
	Alpha, T, K        int
}

// CertifiedRatio returns DSWeight/PackingSum, an exactly checkable upper
// bound on the true approximation ratio (PackingSum ≤ OPT). Returns +Inf
// when the packing sum is zero (empty graph).
func (r *Report) CertifiedRatio() float64 {
	if r.PackingSum <= 0 {
		return math.Inf(1)
	}
	return float64(r.DSWeight) / r.PackingSum
}

// Detach returns a copy of the Report whose Result and DS live on
// ordinary heap memory, independent of any Runner-owned slabs (see
// congest.Result.Detach). It is the safe hand-off for reports produced
// under congest.WithRecycledResult: the detached Report stays valid after
// the Runner's next run. The original Report is not modified.
func (r *Report) Detach() *Report {
	cp := *r
	cp.Result = r.Result.Detach()
	if r.DS != nil {
		cp.DS = make([]int, len(r.DS))
		copy(cp.DS, r.DS)
	}
	return &cp
}

// Rounds returns the number of simulated rounds.
func (r *Report) Rounds() int { return r.Result.Rounds }

// Messages returns the number of delivered messages.
func (r *Report) Messages() int64 { return r.Result.Messages }

// NewReport assembles a Report from a raw simulator result. It is exported
// for sibling packages (e.g. internal/baseline) whose algorithms share the
// Output type.
func NewReport(name string, res *congest.Result[Output], g *graph.Graph) *Report {
	return buildReport(name, res, g)
}

func buildReport(name string, res *congest.Result[Output], g *graph.Graph) *Report {
	rep := &Report{Algorithm: name, Result: res, AllDominated: true}
	for v, out := range res.Outputs {
		if out.InDS {
			rep.DS = append(rep.DS, v)
			rep.DSWeight += g.Weight(v)
		}
		if out.InPartial {
			rep.PartialWeight += g.Weight(v)
		}
		if out.InExtension && !out.InPartial {
			rep.ExtensionWeight += g.Weight(v)
		}
		if !out.Dominated {
			rep.AllDominated = false
		}
		rep.PackingSum += out.Packing
	}
	return rep
}

func validateEps(eps float64) error {
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("mds: ε must be in (0,1), got %g", eps)
	}
	return nil
}

func validateAlpha(alpha int) error {
	if alpha < 1 {
		return fmt.Errorf("mds: arboricity bound must be ≥ 1, got %d", alpha)
	}
	return nil
}

// UnweightedDeterministic runs the Section 3 algorithm (Theorem 3.1): a
// deterministic (2α+1)(1+ε)-approximation of minimum dominating set on
// unweighted graphs with arboricity ≤ alpha, in O(log(Δ/α)/ε) rounds.
// Undominated nodes add themselves (the set T of Claim 3.3).
func UnweightedDeterministic(g *graph.Graph, alpha int, eps float64, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	if !g.Unweighted() {
		return nil, fmt.Errorf("mds: UnweightedDeterministic requires unit weights; use WeightedDeterministic")
	}
	lambda := 1 / (float64(2*alpha+1) * (1 + eps))
	params := detParams{eps: eps, lambda: lambda, mode: completeSelf}
	res, err := run(g, params, alpha, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("unweighted-deterministic", res, g)
	rep.Factor = float64(2*alpha+1) * (1 + eps)
	rep.Eps, rep.Lambda, rep.Alpha = eps, lambda, alpha
	return rep, nil
}

// WeightedDeterministic runs the Theorem 1.1 algorithm: a deterministic
// (2α+1)(1+ε)-approximation of minimum *weighted* dominating set on graphs
// with arboricity ≤ alpha, in O(log(Δ/α)/ε) rounds. It composes Lemma 4.1
// with λ = 1/((2α+1)(1+ε)) and the τ-completion step.
func WeightedDeterministic(g *graph.Graph, alpha int, eps float64, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	lambda := 1 / (float64(2*alpha+1) * (1 + eps))
	params := detParams{eps: eps, lambda: lambda, mode: completeRequest}
	res, err := run(g, params, alpha, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("weighted-deterministic", res, g)
	rep.Factor = float64(2*alpha+1) * (1 + eps)
	rep.Eps, rep.Lambda, rep.Alpha = eps, lambda, alpha
	return rep, nil
}

// PartialWeighted runs Lemma 4.1 alone: it returns the partial dominating
// set S and packing values satisfying properties (a) and (b) of the lemma,
// leaving the remaining nodes undominated. Requires 0 < λ < 1/((α+1)(1+ε)).
func PartialWeighted(g *graph.Graph, alpha int, eps, lambda float64, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	if !(lambda > 0 && lambda < 1/(float64(alpha+1)*(1+eps))) {
		return nil, fmt.Errorf("mds: λ=%g outside (0, 1/((α+1)(1+ε)))", lambda)
	}
	params := detParams{eps: eps, lambda: lambda, mode: completeNone}
	res, err := run(g, params, alpha, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("partial-weighted", res, g)
	rep.Eps, rep.Lambda, rep.Alpha = eps, lambda, alpha
	return rep, nil
}

// PartialFactor returns the property-(a) constant α·(1/(1+ε) − λ(α+1))⁻¹:
// w(S) is at most that times Σ_{v∈N+(S)} x_v.
func PartialFactor(alpha int, eps, lambda float64) float64 {
	return float64(alpha) / (1/(1+eps) - lambda*float64(alpha+1))
}

// TruncatedUnweighted runs the Section 3 partial phase for exactly iters
// iterations and then adds all still-undominated nodes. It deliberately
// breaks the iteration-count formula to expose the locality phenomenon of
// Theorem 1.4: with too few rounds the packing values of undominated nodes
// stay small and the self-completion step balloons, so the approximation
// ratio degrades as rounds shrink. The output is always a valid dominating
// set with a feasible packing; only the ratio guarantee is forfeited.
func TruncatedUnweighted(g *graph.Graph, alpha int, eps float64, iters int, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	if iters < 1 {
		return nil, fmt.Errorf("mds: iters must be ≥ 1, got %d", iters)
	}
	if !g.Unweighted() {
		return nil, fmt.Errorf("mds: TruncatedUnweighted requires unit weights")
	}
	lambda := 1 / (float64(2*alpha+1) * (1 + eps))
	params := detParams{eps: eps, lambda: lambda, mode: completeSelf, forceIters: iters}
	res, err := run(g, params, alpha, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("truncated-unweighted", res, g)
	rep.Eps, rep.Lambda, rep.Alpha = eps, lambda, alpha
	return rep, nil
}

// AblationNoFreeze runs the Theorem 1.1 algorithm with the
// freeze-on-domination rule disabled: dominated nodes keep raising their
// packing values. This is NOT the paper's algorithm — it exists to
// demonstrate, in experiment E9, that the freeze is load-bearing: without
// it the packing becomes infeasible (X_u > w_u), Σx stops lower-bounding
// OPT, and the approximation certificate collapses. The returned set is
// still a valid dominating set.
func AblationNoFreeze(g *graph.Graph, alpha int, eps float64, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	lambda := 1 / (float64(2*alpha+1) * (1 + eps))
	params := detParams{eps: eps, lambda: lambda, mode: completeRequest, noFreeze: true}
	res, err := run(g, params, alpha, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("ablation-no-freeze", res, g)
	rep.Eps, rep.Lambda, rep.Alpha = eps, lambda, alpha
	return rep, nil
}

// WeightedRandomized runs the Theorem 1.2 algorithm: a randomized algorithm
// with expected approximation factor α + O(α/t) in O(t·log Δ) rounds, for
// 1 ≤ t ≤ α/log α. It composes Lemma 4.1 (ε = 1/(4t), λ = ε/(α+1)) with the
// Lemma 4.6 extension (γ = max(2, α^{1/(2t)})).
func WeightedRandomized(g *graph.Graph, alpha, t int, opts ...congest.Option) (*Report, error) {
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	if t < 1 {
		return nil, fmt.Errorf("mds: t must be ≥ 1, got %d", t)
	}
	eps := 1 / float64(4*t)
	lambda := eps / float64(alpha+1)
	gamma := math.Max(2, math.Pow(float64(alpha), 1/float64(2*t)))
	params := detParams{eps: eps, lambda: lambda, gamma: gamma, mode: completeExtension}
	res, err := run(g, params, alpha, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("weighted-randomized", res, g)
	rep.Eps, rep.Lambda, rep.Gamma, rep.Alpha, rep.T = eps, lambda, gamma, alpha, t
	// E[w(S∪S′)] ≤ w(S)-bound + E[w(S′)]-bound (proof of Theorem 1.2).
	phases := extensionPhases(gamma, lambda)
	rep.ExpectedFactor = PartialFactor(alpha, eps, lambda) + gamma*(gamma+1)*float64(phases)
	return rep, nil
}

// GeneralGraphs runs the Theorem 1.3 algorithm on arbitrary graphs: a
// randomized weighted dominating set with expected approximation factor
// Δ^{1/k}(Δ^{1/k}+1)(k+1) = O(kΔ^{2/k}) in O(k²) rounds. It is Lemma 4.6
// with S = ∅, λ = 1/(Δ+1), and γ = Δ^{1/k}.
func GeneralGraphs(g *graph.Graph, k int, opts ...congest.Option) (*Report, error) {
	if k < 1 {
		return nil, fmt.Errorf("mds: k must be ≥ 1, got %d", k)
	}
	delta := g.MaxDegree()
	gamma := math.Pow(float64(delta+1), 1/float64(k))
	if delta == 0 {
		// Edgeless graph: every node must dominate itself; a single
		// probability-1 sampling phase with any γ > 1 does exactly that.
		gamma = 2
	}
	if gamma < 1.05 {
		return nil, fmt.Errorf("mds: Δ^{1/k}=%.3f too close to 1 (Δ=%d, k=%d); decrease k", gamma, delta, k)
	}
	lambda := 1 / float64(delta+1)
	params := detParams{eps: 0.5, lambda: lambda, gamma: gamma, mode: completeExtension, skipPartial: true}
	res, err := run(g, params, 0, opts)
	if err != nil {
		return nil, err
	}
	rep := buildReport("general-graphs", res, g)
	rep.Lambda, rep.Gamma, rep.K = lambda, gamma, k
	phases := extensionPhases(gamma, lambda)
	rep.ExpectedFactor = gamma * (gamma + 1) * float64(phases)
	return rep, nil
}

// run wires a detParams proc into the simulator with the globally known
// parameters the paper assumes (Δ, and α when relevant). Procs are
// constructed in place in one slab — a single allocation for all n nodes —
// with their neighbor caches carved from the run's arena.
func run(g *graph.Graph, params detParams, alpha int, opts []congest.Option) (*congest.Result[Output], error) {
	all := make([]congest.Option, 0, len(opts)+2)
	all = append(all, opts...)
	all = append(all, congest.WithKnownMaxDegree())
	if alpha > 0 {
		all = append(all, congest.WithKnownArboricity(alpha))
	}
	slab := make([]proc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[Output] {
		pr := &slab[ni.ID]
		pr.init(params, ni)
		return pr
	}
	return congest.Run(g, factory, all...)
}
