// Package mds implements the paper's distributed dominating set algorithms
// on top of the CONGEST simulator:
//
//   - Lemma 4.1: the primal–dual partial dominating set (PartialWeighted),
//   - Theorem 3.1: the unweighted deterministic algorithm of Section 3,
//   - Theorem 1.1: the weighted deterministic (2α+1)(1+ε)-approximation,
//   - Lemma 4.6 / Theorem 1.2: the randomized α(1+o(1))-approximation,
//   - Theorem 1.3: the O(kΔ^{2/k})-approximation for general graphs,
//   - Remark 4.4: the unknown-Δ variant,
//   - Remark 4.5: the unknown-α variant (with internal/orient),
//   - Observation A.1: the one-round 3-approximation on forests.
//
// All packing values have the closed form x_v = τ_v·(1+ε)^j/(Δ+1) (times
// γ^k during the randomized extension), so messages carry small integers and
// every message fits in O(log n) bits as the paper requires; the simulator
// enforces this.
package mds

import "arbods/internal/congest"

// weightMsg announces the sender's weight (and degree, used by the
// unknown-Δ variant to compute max_{u∈N+(v)}|N+(u)|).
type weightMsg struct {
	w   int64
	deg int32
}

// Bits implements congest.Message.
func (m weightMsg) Bits() int {
	return congest.MsgTagBits + congest.BitsInt(m.w) + congest.BitsUint(uint64(m.deg))
}

// packingMsg announces the sender's packing value x = τ·(1+ε)^exp/(D+1),
// where D is Δ when globally known, or the sender's local normalizer in the
// unknown-Δ variant (in which case the message carries it).
type packingMsg struct {
	tau  int64
	exp  int32
	norm int32 // 0 when Δ is globally known
}

// Bits implements congest.Message.
func (m packingMsg) Bits() int {
	b := congest.MsgTagBits + congest.BitsInt(m.tau) + congest.BitsUint(uint64(m.exp))
	if m.norm != 0 {
		b += congest.BitsUint(uint64(m.norm))
	}
	return b
}

// joinMsg announces that the sender joined the dominating set; the receiver
// is now dominated (and the sender, being in the set, is dominated too).
type joinMsg struct{}

// Bits implements congest.Message.
func (joinMsg) Bits() int { return congest.MsgTagBits }

// requestMsg asks the receiver (the minimum-weight node in the sender's
// closed neighborhood) to join the dominating set — the completion step of
// Theorem 1.1 and Remarks 4.4/4.5.
type requestMsg struct{}

// Bits implements congest.Message.
func (requestMsg) Bits() int { return congest.MsgTagBits }

// domMsg announces that the sender is dominated. The randomized extension
// needs it to maintain X_u over undominated closed neighbors, and the
// unknown-parameter variants use it for local termination detection.
type domMsg struct{}

// Bits implements congest.Message.
func (domMsg) Bits() int { return congest.MsgTagBits }

// degreeMsg announces the sender's degree (tree algorithm, Observation A.1).
type degreeMsg struct {
	deg int32
}

// Bits implements congest.Message.
func (m degreeMsg) Bits() int { return congest.MsgTagBits + congest.BitsUint(uint64(m.deg)) }
