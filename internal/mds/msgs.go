// Package mds implements the paper's distributed dominating set algorithms
// on top of the CONGEST simulator:
//
//   - Lemma 4.1: the primal–dual partial dominating set (PartialWeighted),
//   - Theorem 3.1: the unweighted deterministic algorithm of Section 3,
//   - Theorem 1.1: the weighted deterministic (2α+1)(1+ε)-approximation,
//   - Lemma 4.6 / Theorem 1.2: the randomized α(1+o(1))-approximation,
//   - Theorem 1.3: the O(kΔ^{2/k})-approximation for general graphs,
//   - Remark 4.4: the unknown-Δ variant,
//   - Remark 4.5: the unknown-α variant (with internal/orient),
//   - Observation A.1: the one-round 3-approximation on forests.
//
// All packing values have the closed form x_v = τ_v·(1+ε)^j/(Δ+1) (times
// γ^k during the randomized extension), so messages carry small integers and
// every message fits in O(log n) bits as the paper requires; the simulator
// enforces this.
//
// Messages travel as congest.Packet wire words. This file holds the pack
// and decode helpers for the package's tags; each pack helper fixes the
// packet's bit cost using the exact per-field BitsInt/BitsUint accounting
// the legacy Message.Bits() implementations used (pinned by wire_test.go).
package mds

import "arbods/internal/congest"

// packWeight builds the weight announcement (congest.TagWeight): the
// sender's weight and degree (the degree feeds the unknown-Δ variant's
// max_{u∈N+(v)}|N+(u)| normalizer).
func packWeight(w int64, deg int32) congest.Packet {
	return congest.Packet{
		Tag:  congest.TagWeight,
		Bits: uint32(congest.MsgTagBits + congest.BitsInt(w) + congest.BitsUint(uint64(deg))),
		A:    uint64(w),
		B:    uint64(uint32(deg)),
	}
}

func weightFields(p congest.Packet) (w int64, deg int32) {
	return int64(p.A), int32(uint32(p.B))
}

// packPacking builds the packing-value announcement (congest.TagPacking):
// x = τ·(1+ε)^exp/(D+1), where D is Δ when globally known, or the
// sender's local normalizer in the unknown-Δ variant (norm ≠ 0, carried).
func packPacking(tau int64, exp, norm int32) congest.Packet {
	b := congest.MsgTagBits + congest.BitsInt(tau) + congest.BitsUint(uint64(exp))
	if norm != 0 {
		b += congest.BitsUint(uint64(norm))
	}
	return congest.Packet{
		Tag:  congest.TagPacking,
		Bits: uint32(b),
		A:    uint64(tau),
		B:    uint64(uint32(exp))<<32 | uint64(uint32(norm)),
	}
}

func packingFields(p congest.Packet) (tau int64, exp, norm int32) {
	return int64(p.A), int32(uint32(p.B >> 32)), int32(uint32(p.B))
}

// packJoin announces that the sender joined the dominating set; the
// receiver is now dominated (and the sender, being in the set, is too).
func packJoin() congest.Packet { return congest.TagOnly(congest.TagJoin) }

// packRequest asks the receiver (the minimum-weight node in the sender's
// closed neighborhood) to join the dominating set — the completion step of
// Theorem 1.1 and Remarks 4.4/4.5.
func packRequest() congest.Packet { return congest.TagOnly(congest.TagRequest) }

// packDom announces that the sender is dominated. The randomized extension
// needs it to maintain X_u over undominated closed neighbors, and the
// unknown-parameter variants use it for local termination detection.
func packDom() congest.Packet { return congest.TagOnly(congest.TagDom) }

// packDegree announces the sender's degree (tree algorithm Observation
// A.1; out-degree exchange of Remark 4.5).
func packDegree(deg int32) congest.Packet {
	return congest.Packet{
		Tag:  congest.TagDegree,
		Bits: uint32(congest.MsgTagBits + congest.BitsUint(uint64(deg))),
		A:    uint64(uint32(deg)),
	}
}

func degreeFields(p congest.Packet) (deg int32) { return int32(uint32(p.A)) }
