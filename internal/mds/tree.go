package mds

import (
	"fmt"

	"arbods/internal/congest"
	"arbods/internal/graph"
)

// treeProc implements Observation A.1: on forests, taking all non-leaf
// nodes is a 3-approximation of the (unweighted) minimum dominating set.
//
// Two degenerate cases the observation glosses over are handled explicitly
// so the output is always a dominating set on any forest:
//
//   - isolated nodes (degree 0) must join — nothing else can dominate them;
//   - a two-node component consists of two leaves; the lower-ID endpoint
//     joins. Both cases add one node against OPT ≥ 1 per component, so the
//     factor-3 bound is unaffected.
//
// One communication round (degree exchange) suffices.
type treeProc struct {
	ni     congest.NodeInfo
	inDS   bool
	domain bool
	st     int
}

var _ congest.Proc[Output] = (*treeProc)(nil)

func (p *treeProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	switch p.st {
	case 0:
		s.Broadcast(packDegree(int32(p.ni.Degree())))
		p.st = 1
		return false
	default:
		deg := p.ni.Degree()
		switch {
		case deg == 0:
			p.inDS = true
		case deg >= 2:
			p.inDS = true
		default: // leaf: join only in the two-leaf component case
			nbr := int(p.ni.Neighbors[0])
			nbrDeg := 1
			for _, m := range in {
				if m.P.Tag == congest.TagDegree && int(m.From) == nbr {
					nbrDeg = int(degreeFields(m.P))
				}
			}
			if nbrDeg == 1 && p.ni.ID < nbr {
				p.inDS = true
			}
		}
		// Domination is immediate: a leaf's single neighbor is either
		// internal (in the set) or the joined endpoint of a K2.
		p.domain = true
		return true
	}
}

func (p *treeProc) Output() Output {
	return Output{InDS: p.inDS, InExtension: p.inDS, Dominated: p.domain}
}

// TreeThreeApprox runs the Observation A.1 algorithm. It requires a forest
// (arboricity 1) with unit weights; the 3-approximation bound is for the
// unweighted problem.
func TreeThreeApprox(g *graph.Graph, opts ...congest.Option) (*Report, error) {
	if !g.IsForest() {
		return nil, fmt.Errorf("mds: TreeThreeApprox requires a forest")
	}
	if !g.Unweighted() {
		return nil, fmt.Errorf("mds: TreeThreeApprox requires unit weights")
	}
	slab := make([]treeProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[Output] {
		p := &slab[ni.ID]
		p.ni = ni
		return p
	}
	res, err := congest.Run(g, factory, opts...)
	if err != nil {
		return nil, err
	}
	rep := buildReport("tree-3approx", res, g)
	rep.Factor = 0 // the factor-3 bound is vs OPT, not vs a packing
	rep.Alpha = 1
	return rep, nil
}
