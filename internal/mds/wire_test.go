package mds

import (
	"testing"

	"arbods/internal/congest"
	"arbods/internal/graph"
	"arbods/internal/rng"
)

// legacyWeightBits is the Message.Bits() accounting of the pre-packet
// weightMsg, kept verbatim as the reference the packed cost must equal.
func legacyWeightBits(w int64, deg int32) int {
	return congest.MsgTagBits + congest.BitsInt(w) + congest.BitsUint(uint64(deg))
}

func legacyPackingBits(tau int64, exp, norm int32) int {
	b := congest.MsgTagBits + congest.BitsInt(tau) + congest.BitsUint(uint64(exp))
	if norm != 0 {
		b += congest.BitsUint(uint64(norm))
	}
	return b
}

func legacyDegreeBits(deg int32) int {
	return congest.MsgTagBits + congest.BitsUint(uint64(deg))
}

// TestWireRoundTrip checks, over randomized field values spanning the
// full legal ranges (weights up to graph.MaxWeight, degrees and
// exponents up to 2³¹−1), that every mds message round-trips through
// pack/decode unchanged and that the packed bit cost equals the legacy
// per-field accounting — so bandwidth budgets and MaxEdgeBits are
// provably unchanged by the wire-format migration.
func TestWireRoundTrip(t *testing.T) {
	r := rng.New(123)
	for i := 0; i < 20000; i++ {
		w := 1 + int64(r.Uint64()%uint64(graph.MaxWeight))
		deg := int32(r.Uint64() % (1 << 31))
		tau := 1 + int64(r.Uint64()%uint64(graph.MaxWeight))
		exp := int32(r.Uint64() % (1 << 31))
		norm := int32(r.Uint64() % (1 << 31))
		if i%7 == 0 {
			norm = 0 // known-Δ form: normalizer omitted from the wire
		}

		p := packWeight(w, deg)
		if gw, gd := weightFields(p); gw != w || gd != deg {
			t.Fatalf("weight round-trip: got (%d,%d), want (%d,%d)", gw, gd, w, deg)
		}
		if p.Tag != congest.TagWeight || int(p.Bits) != legacyWeightBits(w, deg) {
			t.Fatalf("weight bits: got %d, legacy %d", p.Bits, legacyWeightBits(w, deg))
		}

		p = packPacking(tau, exp, norm)
		if gt, ge, gn := packingFields(p); gt != tau || ge != exp || gn != norm {
			t.Fatalf("packing round-trip: got (%d,%d,%d), want (%d,%d,%d)", gt, ge, gn, tau, exp, norm)
		}
		if p.Tag != congest.TagPacking || int(p.Bits) != legacyPackingBits(tau, exp, norm) {
			t.Fatalf("packing bits: got %d, legacy %d", p.Bits, legacyPackingBits(tau, exp, norm))
		}

		p = packDegree(deg)
		if got := degreeFields(p); got != deg {
			t.Fatalf("degree round-trip: got %d, want %d", got, deg)
		}
		if p.Tag != congest.TagDegree || int(p.Bits) != legacyDegreeBits(deg) {
			t.Fatalf("degree bits: got %d, legacy %d", p.Bits, legacyDegreeBits(deg))
		}
	}

	for _, tt := range []struct {
		name string
		p    congest.Packet
		tag  congest.Tag
	}{
		{"join", packJoin(), congest.TagJoin},
		{"request", packRequest(), congest.TagRequest},
		{"dom", packDom(), congest.TagDom},
	} {
		if tt.p.Tag != tt.tag || tt.p.Bits != congest.MsgTagBits || tt.p.A != 0 || tt.p.B != 0 {
			t.Fatalf("%s: tag-only packet malformed: %+v", tt.name, tt.p)
		}
	}
}

// FuzzPackPacking fuzzes the widest message (three fields sharing two
// words) for round-trip fidelity and legacy-equal bit cost.
func FuzzPackPacking(f *testing.F) {
	f.Add(int64(1), int32(0), int32(0))
	f.Add(int64(graph.MaxWeight), int32(1<<31-1), int32(1<<31-1))
	f.Add(int64(7), int32(12), int32(0))
	f.Fuzz(func(t *testing.T, tau int64, exp, norm int32) {
		if tau < 0 || exp < 0 || norm < 0 {
			t.Skip() // fields are nonnegative by construction in the algorithms
		}
		p := packPacking(tau, exp, norm)
		gt, ge, gn := packingFields(p)
		if gt != tau || ge != exp || gn != norm {
			t.Fatalf("round-trip: got (%d,%d,%d), want (%d,%d,%d)", gt, ge, gn, tau, exp, norm)
		}
		if int(p.Bits) != legacyPackingBits(tau, exp, norm) {
			t.Fatalf("bits: got %d, legacy %d", p.Bits, legacyPackingBits(tau, exp, norm))
		}
	})
}

// FuzzPackWeight fuzzes the weight announcement likewise.
func FuzzPackWeight(f *testing.F) {
	f.Add(int64(1), int32(0))
	f.Add(int64(graph.MaxWeight), int32(1<<31-1))
	f.Fuzz(func(t *testing.T, w int64, deg int32) {
		if w < 0 || deg < 0 {
			t.Skip()
		}
		p := packWeight(w, deg)
		gw, gd := weightFields(p)
		if gw != w || gd != deg {
			t.Fatalf("round-trip: got (%d,%d), want (%d,%d)", gw, gd, w, deg)
		}
		if int(p.Bits) != legacyWeightBits(w, deg) {
			t.Fatalf("bits: got %d, legacy %d", p.Bits, legacyWeightBits(w, deg))
		}
	})
}
