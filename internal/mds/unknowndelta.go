package mds

import (
	"math"

	"arbods/internal/congest"
	"arbods/internal/graph"
)

// udProc implements Remark 4.4: the Theorem 1.1 algorithm when Δ is not
// globally known.
//
// Differences from the known-Δ algorithm:
//
//   - the packing value of v is initialized to τ_v / max_{u∈N+(v)}|N+(u)|
//     (each node learns its neighbors' degrees in one round), which keeps
//     the initial packing feasible without knowing Δ;
//   - every iteration begins with an extra completion step: an undominated
//     node whose packing value strictly exceeds λτ_v immediately pulls its
//     τ-neighbor into the final dominating set (simulating the completion
//     phase, which it cannot schedule because the number of iterations is
//     not locally computable);
//   - termination is local: a node halts once it is dominated, has
//     announced it, and knows all closed neighbors are dominated.
//
// Each iteration costs three rounds (requests+threshold joins / request
// service / domination announcements+packing raises); all nodes are
// dominated after O(log Δ/ε) iterations.
type udProc struct {
	ni     congest.NodeInfo
	eps    float64
	lambda float64
	// fixedNorm, when positive, overrides the max_{u∈N+(v)}|N+(u)| packing
	// normalizer (Remark 4.5 initializes with τ_v/(n+1) instead).
	fixedNorm int

	nbrX   []float64
	nbrW   []int64
	nbrDom []bool

	tau    int64
	argmin int
	norm   int // max_{u∈N+(v)} |N+(u)|

	x   float64
	exp int

	inS, inSP, dom bool
	requested      bool
	domAnnounced   bool

	st int // 0=init 1=setup 2=A 3=B 4=C
}

var _ congest.Proc[Output] = (*udProc)(nil)

// init constructs the proc in place, carving the neighbor caches from the
// run's arena. fixedNorm > 0 selects the Remark 4.5 τ_v/(n+1) packing
// normalizer; lambda may be filled in later (the unknown-α variant learns
// it from the orientation phase).
func (p *udProc) init(ni congest.NodeInfo, eps, lambda float64, fixedNorm int) {
	deg := ni.Degree()
	*p = udProc{
		ni:        ni,
		eps:       eps,
		lambda:    lambda,
		fixedNorm: fixedNorm,
		nbrX:      ni.Arena.Float64s(deg),
		nbrW:      ni.Arena.Int64s(deg),
		nbrDom:    ni.Arena.Bools(deg),
	}
}

func (p *udProc) absorb(in []congest.Incoming) {
	for _, m := range in {
		i := m.Idx
		switch m.P.Tag {
		case congest.TagWeight:
			w, deg := weightFields(m.P)
			p.nbrW[i] = w
			if d := int(deg) + 1; d > p.norm {
				p.norm = d
			}
		case congest.TagPacking:
			tau, exp, norm := packingFields(m.P)
			p.nbrX[i] = float64(tau) * math.Pow(1+p.eps, float64(exp)) / float64(norm)
		case congest.TagJoin:
			p.nbrDom[i] = true
			p.dom = true
		case congest.TagDom:
			p.nbrDom[i] = true
		case congest.TagRequest:
			p.requested = true
		}
	}
}

func (p *udProc) bigX() float64 {
	sum := p.x
	for _, xv := range p.nbrX {
		sum += xv
	}
	return sum
}

func (p *udProc) allNeighborsDominated() bool {
	for _, d := range p.nbrDom {
		if !d {
			return false
		}
	}
	return true
}

func (p *udProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	switch p.st {
	case 0:
		s.Broadcast(packWeight(p.ni.Weight, int32(p.ni.Degree())))
		p.norm = p.ni.Degree() + 1
		p.st = 1
		return false

	case 1:
		p.absorb(in)
		p.tau, p.argmin = p.ni.Weight, p.ni.ID
		for i, u := range p.ni.Neighbors {
			if w := p.nbrW[i]; w < p.tau || (w == p.tau && int(u) < p.argmin) {
				p.tau, p.argmin = w, int(u)
			}
		}
		if p.fixedNorm > 0 {
			p.norm = p.fixedNorm
		}
		p.x = float64(p.tau) / float64(p.norm)
		s.Broadcast(packPacking(p.tau, 0, int32(p.norm)))
		p.st = 2
		return false

	case 2: // stage A: completion step, then threshold joins
		p.absorb(in)
		if !p.dom && p.x > p.lambda*float64(p.tau)*(1+1e-12) {
			if p.argmin == p.ni.ID {
				p.inSP = true
			} else {
				s.Send(p.argmin, packRequest())
			}
			p.dom = true // the τ-neighbor joins next round
		}
		if !p.inS && p.bigX() >= float64(p.ni.Weight)/(1+p.eps) {
			p.inS = true
			p.dom = true
			p.domAnnounced = true
			s.Broadcast(packJoin())
		}
		p.st = 3
		return false

	case 3: // stage B: serve requests
		p.absorb(in)
		if p.requested && !p.inS && !p.inSP {
			p.inSP = true
			p.dom = true
			p.domAnnounced = true
			s.Broadcast(packJoin())
		}
		p.st = 4
		return false

	default: // stage C: announce domination, raise packing, check exit
		p.absorb(in)
		if p.dom && !p.domAnnounced {
			p.domAnnounced = true
			s.Broadcast(packDom())
		}
		if !p.dom {
			p.exp++
			p.x *= 1 + p.eps
			s.Broadcast(packPacking(p.tau, int32(p.exp), int32(p.norm)))
		}
		if p.dom && p.domAnnounced && p.allNeighborsDominated() {
			return true
		}
		p.st = 2
		return false
	}
}

func (p *udProc) Output() Output {
	return Output{
		InDS:        p.inS || p.inSP,
		InPartial:   p.inS,
		InExtension: p.inSP,
		Dominated:   p.dom,
		Packing:     p.x,
		Tau:         p.tau,
	}
}

// UnknownDelta runs the Remark 4.4 variant of Theorem 1.1: same asymptotic
// guarantees without global knowledge of Δ. The certified per-run factor is
// slightly looser than (2α+1)(1+ε) because a node's packing can overshoot
// λτ_v by one (1+ε) factor before the completion step catches it, and a
// completion-triggered node may later also be dominated by S; the reported
// Factor accounts for both (see the derivation in the code).
func UnknownDelta(g *graph.Graph, alpha int, eps float64, opts ...congest.Option) (*Report, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if err := validateAlpha(alpha); err != nil {
		return nil, err
	}
	lambda := 1 / (float64(2*alpha+1) * (1 + eps))
	slab := make([]udProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[Output] {
		p := &slab[ni.ID]
		p.init(ni, eps, lambda, 0)
		return p
	}
	all := make([]congest.Option, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, congest.WithKnownArboricity(alpha))
	res, err := congest.Run(g, factory, all...)
	if err != nil {
		return nil, err
	}
	rep := buildReport("unknown-delta", res, g)
	rep.Eps, rep.Lambda, rep.Alpha = eps, lambda, alpha
	// Certified factor: w(S) ≤ A·Σ_{N+(S)} x with
	// A = α(1/(1+ε) − λ(1+ε)(α+1))⁻¹ (frozen packing values are capped by
	// λτ(1+ε) rather than λτ), plus w(S′) ≤ λ⁻¹·Σ_T x; the two node sets
	// can overlap, so the safe combined certificate is A + 1/λ.
	denom := 1/(1+eps) - lambda*(1+eps)*float64(alpha+1)
	if denom > 0 {
		rep.Factor = float64(alpha)/denom + 1/lambda
	}
	return rep, nil
}
