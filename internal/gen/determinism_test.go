package gen_test

import (
	"testing"

	"arbods/internal/gen"
)

// TestGeneratorDeterminism: identical seeds must give identical graphs for
// every randomized generator (map-iteration order must not leak in).
func TestGeneratorDeterminism(t *testing.T) {
	gens := map[string]func() *testingGraph{
		"ba":        func() *testingGraph { return wrap(gen.BarabasiAlbert(500, 5, 9)) },
		"er":        func() *testingGraph { return wrap(gen.ErdosRenyi(300, 0.05, 9)) },
		"tree":      func() *testingGraph { return wrap(gen.RandomTree(400, 9)) },
		"forest":    func() *testingGraph { return wrap(gen.ForestUnion(300, 3, 9)) },
		"bipartite": func() *testingGraph { return wrap(gen.RandomBipartite(50, 60, 0.2, 9)) },
		"geom":      func() *testingGraph { return wrap(gen.Geometric(300, 0.1, 9)) },
	}
	for name, f := range gens {
		t.Run(name, func(t *testing.T) {
			a, b := f(), f()
			if a.n != b.n || a.m != b.m || a.fingerprint != b.fingerprint {
				t.Fatalf("generator %s is nondeterministic: (%d,%d,%x) vs (%d,%d,%x)",
					name, a.n, a.m, a.fingerprint, b.n, b.m, b.fingerprint)
			}
		})
	}
}

type testingGraph struct {
	n, m        int
	fingerprint uint64
}

func wrap(r gen.Result) *testingGraph {
	fp := uint64(1469598103934665603)
	for v := 0; v < r.G.N(); v++ {
		for _, u := range r.G.Neighbors(v) {
			fp ^= uint64(v)*1000003 + uint64(u)
			fp *= 1099511628211
		}
	}
	return &testingGraph{n: r.G.N(), m: r.G.M(), fingerprint: fp}
}
