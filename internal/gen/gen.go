// Package gen generates the workload graphs for tests, examples, and the
// benchmark harness.
//
// Every generator returns a Result that records the arboricity bound the
// construction guarantees (0 when the construction gives none); the paper's
// algorithms take α as a known parameter, and the harness feeds them either
// this construction bound or the degeneracy bound from package arbor.
//
// The families mirror the graph classes the paper motivates: forests
// (arboricity 1, Appendix A), unions of k forests (arboricity ≤ k by
// definition), planar grids (arboricity ≤ 3, §1.1), preferential-attachment
// graphs standing in for social networks and the web graph (§1.1 claims
// these are believed to have low arboricity), plus general graphs
// (Erdős–Rényi, bipartite, geometric) for Theorem 1.3.
package gen

import (
	"fmt"
	"math"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// Result is a generated graph plus the metadata the harness needs.
type Result struct {
	G *graph.Graph
	// Name identifies the instance in benchmark tables, e.g. "forest2(n=1000)".
	Name string
	// ArboricityBound is an upper bound on α guaranteed by the construction,
	// or 0 if the construction guarantees none.
	ArboricityBound int
}

// Path returns the path graph on n nodes (arboricity 1).
func Path(n int) Result {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("path(n=%d)", n), ArboricityBound: 1}
}

// Cycle returns the cycle on n ≥ 3 nodes (arboricity 2; it is a single
// pseudoforest, so footnote 2 of the paper applies with α = 1 as well).
func Cycle(n int) Result {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("cycle(n=%d)", n), ArboricityBound: 2}
}

// Star returns the star with one center (node 0) and n−1 leaves (arboricity 1).
func Star(n int) Result {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("star(n=%d)", n), ArboricityBound: 1}
}

// Complete returns K_n (arboricity ⌈n/2⌉).
func Complete(n int) Result {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("complete(n=%d)", n), ArboricityBound: (n + 1) / 2}
}

// RandomTree returns a uniform-attachment random tree: node v ≥ 1 attaches
// to a uniformly random node in [0, v). Arboricity 1.
func RandomTree(n int, seed uint64) Result {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, r.Intn(v))
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("tree(n=%d)", n), ArboricityBound: 1}
}

// BalancedTree returns the complete k-ary tree with the given depth
// (depth 0 is a single node). Arboricity 1.
func BalancedTree(k, depth int) Result {
	if k < 1 {
		k = 1
	}
	// Number of nodes: 1 + k + k^2 + ... + k^depth.
	n := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= k
		n += level
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/k)
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("ktree(k=%d,d=%d)", k, depth), ArboricityBound: 1}
}

// Caterpillar returns a caterpillar tree: a spine path of the given length
// with legs leaves attached to every spine node. Arboricity 1. Caterpillars
// are the adversarial case for the Appendix A tree algorithm (every spine
// node is internal).
func Caterpillar(spine, legs int) Result {
	n := spine * (1 + legs)
	b := graph.NewBuilder(n)
	for s := 0; s+1 < spine; s++ {
		b.AddEdge(s, s+1)
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(s, next)
			next++
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("caterpillar(s=%d,l=%d)", spine, legs), ArboricityBound: 1}
}

// Broom returns a "broom" tree: a path of pathLen nodes with leaves extra
// leaves attached to the last path node. Brooms fix arboricity at 1 while
// the maximum degree is leaves+1 — the knob the round-complexity sweep of
// Theorem 1.1 turns (rounds must grow like log(Δ/α)).
func Broom(pathLen, leaves int) Result {
	if pathLen < 1 {
		pathLen = 1
	}
	n := pathLen + leaves
	b := graph.NewBuilder(n)
	for v := 0; v+1 < pathLen; v++ {
		b.AddEdge(v, v+1)
	}
	for l := 0; l < leaves; l++ {
		b.AddEdge(pathLen-1, pathLen+l)
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("broom(p=%d,l=%d)", pathLen, leaves), ArboricityBound: 1}
}

// ForestUnion returns the union of k independent uniform-attachment random
// forests on the same n nodes, with node labels shuffled per forest.
// Arboricity ≤ k by the Nash–Williams definition. This is the canonical
// "α-bounded by construction" workload of the harness.
func ForestUnion(n, k int, seed uint64) Result {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	perm := make([]int, n) // scratch reused across the k forests
	for f := 0; f < k; f++ {
		r.PermInto(perm)
		for i := 1; i < n; i++ {
			b.AddEdge(perm[i], perm[r.Intn(i)])
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("forest%d(n=%d)", k, n), ArboricityBound: k}
}

// PseudoforestUnion returns the union of k random functional graphs: in
// each part every node points at a uniformly random other node, so each
// connected component of a part has at most one cycle — a pseudoforest.
// The union is decomposable into k pseudoforests, which by footnote 2 of
// the paper is exactly the graph class (orientable with out-degree ≤ k)
// the algorithms handle with α = k, even though the true arboricity can be
// as large as 2k.
func PseudoforestUnion(n, k int, seed uint64) Result {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for part := 0; part < k; part++ {
		for v := 0; v < n; v++ {
			u := r.Intn(n - 1)
			if u >= v {
				u++
			}
			b.AddEdge(v, u)
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("pseudoforest%d(n=%d)", k, n), ArboricityBound: 2 * k}
}

// Grid returns the rows×cols grid graph. Grids are planar and bipartite, so
// every subgraph has m_S ≤ 2n_S − 4; Nash–Williams gives arboricity ≤ 2.
func Grid(rows, cols int) Result {
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	bound := 2
	if rows == 1 || cols == 1 {
		bound = 1
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("grid(%dx%d)", rows, cols), ArboricityBound: bound}
}

// Torus returns the rows×cols torus (grid with wraparound). m = 2n, so
// arboricity ≤ 3 by Nash–Williams on the whole graph; rows, cols ≥ 3.
func Torus(rows, cols int) Result {
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, c+1))
			b.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("torus(%dx%d)", rows, cols), ArboricityBound: 3}
}

// ErdosRenyi returns G(n, p). No construction bound on arboricity.
func ErdosRenyi(n int, p float64, seed uint64) Result {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// Geometric skipping gives O(n + m) expected time.
	if p > 0 && p < 1 {
		v, u := 1, -1
		for v < n {
			// Skip ahead by a geometric number of candidate pairs.
			skip := geometricSkip(r, p)
			u += 1 + skip
			for u >= v && v < n {
				u -= v
				v++
			}
			if v < n {
				b.AddEdge(u, v)
			}
		}
	} else if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("er(n=%d,p=%g)", n, p)}
}

// geometricSkip samples the number of failures before the next success of a
// Bernoulli(p) sequence, i.e. a Geometric(p) variate starting at 0.
func geometricSkip(r *rng.Stream, p float64) int {
	// Inverse transform: floor(ln(U)/ln(1-p)).
	u := r.Float64()
	if u <= 0 {
		return 0
	}
	// ln(1-p) < 0 for p in (0,1).
	k := int(math.Log(u) / math.Log(1-p))
	if k < 0 {
		k = 0
	}
	return k
}

// BarabasiAlbert returns an n-node preferential-attachment graph where each
// arriving node attaches to attach distinct existing nodes chosen
// proportionally to degree. In arrival order every node (including the seed
// clique's) has at most attach edges to earlier nodes, so the graph is
// attach-degenerate and arboricity ≤ attach.
func BarabasiAlbert(n, attach int, seed uint64) Result {
	if attach < 1 {
		attach = 1
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// endpoints holds every edge endpoint once; sampling uniformly from it
	// is sampling proportional to degree.
	endpoints := make([]int, 0, 2*n*attach)
	start := attach + 1
	if start > n {
		start = n
	}
	// Seed clique on the first start nodes.
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			b.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	chosen := make(map[int]bool, attach)
	picked := make([]int, 0, attach)
	for v := start; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		picked = picked[:0]
		for len(picked) < attach {
			var u int
			if len(endpoints) == 0 {
				u = r.Intn(v)
			} else {
				u = endpoints[r.Intn(len(endpoints))]
			}
			if u != v && !chosen[u] {
				chosen[u] = true
				// Keep insertion order: iterating the map would make the
				// endpoints slice — and hence the whole graph — depend on
				// Go's randomized map order.
				picked = append(picked, u)
			}
		}
		for _, u := range picked {
			b.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("ba(n=%d,m=%d)", n, attach), ArboricityBound: attach}
}

// RandomBipartite returns a random bipartite graph with sides of size a and
// b and edge probability p. Bipartite base graphs are what the Section 5
// lower-bound construction consumes.
func RandomBipartite(a, b int, p float64, seed uint64) Result {
	r := rng.New(seed)
	bl := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			if r.Bernoulli(p) {
				bl.AddEdge(u, a+v)
			}
		}
	}
	return Result{G: bl.MustBuild(), Name: fmt.Sprintf("bipartite(%d+%d,p=%g)", a, b, p)}
}

// Geometric returns a unit-disk-style graph: n points placed uniformly in
// the unit square, connected when within the given radius. This is the
// ad-hoc wireless network workload from the paper's motivation (§1).
func Geometric(n int, radius float64, seed uint64) Result {
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	// Grid-bucket the points so construction is near-linear for small radii.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int)
	cellOf := func(i int) [2]int {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], i)
	}
	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdge(i, j)
					}
				}
			}
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("geom(n=%d,r=%g)", n, radius)}
}

// Hypercube returns the d-dimensional hypercube (2^d nodes).
func Hypercube(d int) Result {
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return Result{G: b.MustBuild(), Name: fmt.Sprintf("hypercube(d=%d)", d)}
}
