package gen

import (
	"fmt"
	"strconv"
	"strings"

	"arbods/internal/graph"
)

// Parse builds a workload from a compact textual spec, used by the CLI
// tools:
//
//	family:key=value,key=value
//
// Families and their keys (unlisted keys take the defaults shown):
//
//	path:n=100
//	cycle:n=100
//	star:n=100
//	complete:n=20
//	tree:n=100,seed=1
//	ktree:k=2,d=5
//	caterpillar:s=10,l=3
//	broom:p=50,l=100
//	forest:n=100,k=2,seed=1
//	grid:r=10,c=10
//	torus:r=10,c=10
//	hypercube:d=6
//	er:n=100,p=0.05,seed=1
//	ba:n=100,m=3,seed=1
//	bipartite:a=50,b=50,p=0.1,seed=1
//	geom:n=100,r=0.1,seed=1
//
// A weight suffix may follow after a slash:
//
//	forest:n=100,k=3/uniform:max=100,seed=7
//	grid:r=10,c=10/exp:scale=50,seed=7
//	ba:n=200,m=3/degree:factor=5
func Parse(spec string) (Result, error) {
	graphSpec, weightSpec, hasWeights := strings.Cut(spec, "/")
	fam, args, err := splitSpec(graphSpec)
	if err != nil {
		return Result{}, err
	}
	res, err := buildGraph(fam, args)
	if err != nil {
		return Result{}, err
	}
	if hasWeights {
		wg, err := applyWeights(res.G, weightSpec)
		if err != nil {
			return Result{}, err
		}
		res.G = wg
		res.Name += "/" + weightSpec
	}
	return res, nil
}

func splitSpec(s string) (family string, args map[string]string, err error) {
	family, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	family = strings.TrimSpace(family)
	if family == "" {
		return "", nil, fmt.Errorf("gen: empty spec")
	}
	args = make(map[string]string)
	if rest == "" {
		return family, args, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("gen: bad argument %q in spec %q", kv, s)
		}
		args[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return family, args, nil
}

type specArgs map[string]string

func (a specArgs) intOr(key string, def int) (int, error) {
	v, ok := a[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("gen: argument %s=%q is not an integer", key, v)
	}
	return n, nil
}

func (a specArgs) floatOr(key string, def float64) (float64, error) {
	v, ok := a[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("gen: argument %s=%q is not a number", key, v)
	}
	return f, nil
}

func (a specArgs) seedOr(def uint64) (uint64, error) {
	v, ok := a["seed"]
	if !ok {
		return def, nil
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("gen: seed %q is not an unsigned integer", v)
	}
	return u, nil
}

func buildGraph(family string, m map[string]string) (Result, error) {
	a := specArgs(m)
	var firstErr error
	geti := func(k string, def int) int {
		v, err := a.intOr(k, def)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	seed, err := a.seedOr(1)
	if err != nil {
		return Result{}, err
	}
	res, err := buildGraphInner(family, a, geti, seed)
	if err != nil {
		return Result{}, err
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	return res, nil
}

func buildGraphInner(family string, a specArgs, geti func(string, int) int, seed uint64) (Result, error) {
	switch family {
	case "path":
		return Path(geti("n", 100)), nil
	case "cycle":
		return Cycle(geti("n", 100)), nil
	case "star":
		return Star(geti("n", 100)), nil
	case "complete":
		return Complete(geti("n", 20)), nil
	case "tree":
		return RandomTree(geti("n", 100), seed), nil
	case "ktree":
		return BalancedTree(geti("k", 2), geti("d", 5)), nil
	case "caterpillar":
		return Caterpillar(geti("s", 10), geti("l", 3)), nil
	case "broom":
		return Broom(geti("p", 50), geti("l", 100)), nil
	case "forest":
		return ForestUnion(geti("n", 100), geti("k", 2), seed), nil
	case "grid":
		return Grid(geti("r", 10), geti("c", 10)), nil
	case "torus":
		return Torus(geti("r", 10), geti("c", 10)), nil
	case "hypercube":
		return Hypercube(geti("d", 6)), nil
	case "er":
		p, err := a.floatOr("p", 0.05)
		if err != nil {
			return Result{}, err
		}
		return ErdosRenyi(geti("n", 100), p, seed), nil
	case "ba":
		return BarabasiAlbert(geti("n", 100), geti("m", 3), seed), nil
	case "bipartite":
		p, err := a.floatOr("p", 0.1)
		if err != nil {
			return Result{}, err
		}
		return RandomBipartite(geti("a", 50), geti("b", 50), p, seed), nil
	case "geom":
		r, err := a.floatOr("r", 0.1)
		if err != nil {
			return Result{}, err
		}
		return Geometric(geti("n", 100), r, seed), nil
	default:
		return Result{}, fmt.Errorf("gen: unknown graph family %q", family)
	}
}

func applyWeights(g *graph.Graph, spec string) (*graph.Graph, error) {
	fam, m, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	a := specArgs(m)
	seed, err := a.seedOr(1)
	if err != nil {
		return nil, err
	}
	switch fam {
	case "unit":
		return g, nil
	case "uniform":
		max, err := a.intOr("max", 100)
		if err != nil {
			return nil, err
		}
		return UniformWeights(g, int64(max), seed), nil
	case "exp":
		scale, err := a.floatOr("scale", 50)
		if err != nil {
			return nil, err
		}
		return ExponentialWeights(g, scale, seed), nil
	case "degree":
		f, err := a.intOr("factor", 5)
		if err != nil {
			return nil, err
		}
		return DegreeWeights(g, int64(f), seed), nil
	default:
		return nil, fmt.Errorf("gen: unknown weight family %q", fam)
	}
}
