package gen

import (
	"math"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// Weight assigners produce the weighted instances for the Section 4
// algorithms (Theorem 1.1 is the first distributed algorithm for the
// weighted problem, so the harness exercises several weight regimes).

// UniformWeights returns a copy of g with weights drawn uniformly from
// [1, max].
func UniformWeights(g *graph.Graph, max int64, seed uint64) *graph.Graph {
	if max < 1 {
		max = 1
	}
	r := rng.New(seed)
	w := make([]int64, g.N())
	for v := range w {
		w[v] = 1 + r.Int63n(max)
	}
	return mustSetWeights(g, w)
}

// ExponentialWeights returns a copy of g with weights of the form
// round(scale · Exp(1)) + 1, giving a heavy-ish tail that separates τ_v
// minima clearly — the regime where the τ-completion step of Theorem 1.1
// differs most from the unweighted algorithm.
func ExponentialWeights(g *graph.Graph, scale float64, seed uint64) *graph.Graph {
	if scale < 1 {
		scale = 1
	}
	r := rng.New(seed)
	w := make([]int64, g.N())
	for v := range w {
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		x := int64(math.Round(-scale * math.Log(u)))
		if x < 0 {
			x = 0
		}
		if x > graph.MaxWeight-1 {
			x = graph.MaxWeight - 1
		}
		w[v] = x + 1
	}
	return mustSetWeights(g, w)
}

// DegreeWeights returns a copy of g where node v has weight
// 1 + factor·deg(v). High-degree nodes being expensive is the adversarial
// regime for degree-greedy baselines, and the regime where the primal–dual
// algorithm's weight-sensitivity shows.
func DegreeWeights(g *graph.Graph, factor int64, seed uint64) *graph.Graph {
	if factor < 0 {
		factor = 0
	}
	w := make([]int64, g.N())
	for v := range w {
		w[v] = 1 + factor*int64(g.Degree(v))
	}
	return mustSetWeights(g, w)
}

func mustSetWeights(g *graph.Graph, w []int64) *graph.Graph {
	ng, err := g.SetWeights(w)
	if err != nil {
		// All assigners clamp into the valid range, so this is unreachable
		// for in-package callers.
		panic(err)
	}
	return ng
}
