package gen_test

import (
	"testing"
	"testing/quick"

	"arbods/internal/arbor"
	"arbods/internal/gen"
)

func TestDeterministicFamilies(t *testing.T) {
	tests := []struct {
		name       string
		r          gen.Result
		wantN      int
		wantM      int
		wantForest bool
	}{
		{"path", gen.Path(10), 10, 9, true},
		{"cycle", gen.Cycle(10), 10, 10, false},
		{"star", gen.Star(10), 10, 9, true},
		{"complete", gen.Complete(6), 6, 15, false},
		{"grid", gen.Grid(3, 4), 12, 17, false},
		{"torus", gen.Torus(3, 4), 12, 24, false},
		{"hypercube", gen.Hypercube(3), 8, 12, false},
		{"balanced", gen.BalancedTree(2, 3), 15, 14, true},
		{"caterpillar", gen.Caterpillar(5, 2), 15, 14, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.r.G.N() != tt.wantN {
				t.Fatalf("n = %d, want %d", tt.r.G.N(), tt.wantN)
			}
			if tt.r.G.M() != tt.wantM {
				t.Fatalf("m = %d, want %d", tt.r.G.M(), tt.wantM)
			}
			if got := tt.r.G.IsForest(); got != tt.wantForest {
				t.Fatalf("IsForest = %v, want %v", got, tt.wantForest)
			}
		})
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		g := gen.RandomTree(n, seed).G
		return g.N() == n && g.M() == n-1 && g.IsForest() && len(g.ConnectedComponents()) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestForestUnionArboricity: the construction bound must hold under the
// computed Nash–Williams lower bound.
func TestForestUnionArboricity(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		r := gen.ForestUnion(50, k, seed)
		if r.ArboricityBound != k {
			return false
		}
		lo, _ := arbor.Bounds(r.G)
		return lo <= k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertDegeneracy(t *testing.T) {
	r := gen.BarabasiAlbert(300, 3, 5)
	_, d := arbor.Degeneracy(r.G)
	if d > r.ArboricityBound*2 {
		t.Fatalf("degeneracy %d far exceeds construction bound %d", d, r.ArboricityBound)
	}
	if r.G.N() != 300 {
		t.Fatalf("n = %d", r.G.N())
	}
	if len(r.G.ConnectedComponents()) != 1 {
		t.Fatal("BA graph should be connected")
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	// Expected m = p·n(n−1)/2; with n=200, p=0.1: 1990. Allow ±30%.
	g := gen.ErdosRenyi(200, 0.1, 11).G
	want := 0.1 * 200 * 199 / 2
	if f := float64(g.M()); f < 0.7*want || f > 1.3*want {
		t.Fatalf("m = %d, expected near %.0f", g.M(), want)
	}
	if gen.ErdosRenyi(10, 0, 1).G.M() != 0 {
		t.Fatal("p=0 must give empty graph")
	}
	if gen.ErdosRenyi(6, 1, 1).G.M() != 15 {
		t.Fatal("p=1 must give complete graph")
	}
}

func TestRandomBipartite(t *testing.T) {
	g := gen.RandomBipartite(10, 15, 0.3, 7).G
	if g.N() != 25 {
		t.Fatalf("n = %d", g.N())
	}
	// No edge inside either side.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if g.HasEdge(u, v) {
				t.Fatalf("left-side edge {%d,%d}", u, v)
			}
		}
	}
	for u := 10; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			if g.HasEdge(u, v) {
				t.Fatalf("right-side edge {%d,%d}", u, v)
			}
		}
	}
}

func TestGeometric(t *testing.T) {
	g := gen.Geometric(300, 0.08, 13).G
	if g.N() != 300 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() == 0 {
		t.Fatal("geometric graph with r=0.08 on 300 points should have edges")
	}
	// Determinism: same seed, same graph.
	g2 := gen.Geometric(300, 0.08, 13).G
	if g2.M() != g.M() {
		t.Fatal("geometric generator is not deterministic")
	}
}

func TestWeightAssigners(t *testing.T) {
	base := gen.Grid(5, 5).G
	u := gen.UniformWeights(base, 50, 3)
	for v := 0; v < u.N(); v++ {
		if w := u.Weight(v); w < 1 || w > 50 {
			t.Fatalf("uniform weight %d out of range", w)
		}
	}
	e := gen.ExponentialWeights(base, 10, 3)
	for v := 0; v < e.N(); v++ {
		if e.Weight(v) < 1 {
			t.Fatalf("exponential weight %d < 1", e.Weight(v))
		}
	}
	d := gen.DegreeWeights(base, 2, 0)
	for v := 0; v < d.N(); v++ {
		if want := 1 + 2*int64(base.Degree(v)); d.Weight(v) != want {
			t.Fatalf("degree weight %d, want %d", d.Weight(v), want)
		}
	}
	// The originals must be untouched (copy-on-write semantics).
	if !base.Unweighted() {
		t.Fatal("weight assigners mutated the base graph")
	}
}

func TestGridArboricityBound(t *testing.T) {
	for _, r := range []gen.Result{gen.Grid(1, 8), gen.Grid(8, 1)} {
		if r.ArboricityBound != 1 {
			t.Fatalf("%s: degenerate grid is a path, bound should be 1", r.Name)
		}
		if !r.G.IsForest() {
			t.Fatalf("%s: degenerate grid must be a forest", r.Name)
		}
	}
	lo, _ := arbor.Bounds(gen.Grid(10, 10).G)
	if lo > 2 {
		t.Fatalf("grid Nash–Williams bound %d > 2", lo)
	}
}

func TestNamesNonEmpty(t *testing.T) {
	rs := []gen.Result{
		gen.Path(3), gen.Cycle(3), gen.Star(3), gen.Complete(3),
		gen.RandomTree(3, 1), gen.BalancedTree(2, 1), gen.Caterpillar(2, 1),
		gen.ForestUnion(5, 2, 1), gen.Grid(2, 2), gen.Torus(3, 3),
		gen.ErdosRenyi(5, 0.5, 1), gen.BarabasiAlbert(6, 2, 1),
		gen.RandomBipartite(2, 2, 0.5, 1), gen.Geometric(5, 0.5, 1), gen.Hypercube(2),
	}
	for _, r := range rs {
		if r.Name == "" {
			t.Fatalf("generator produced empty name: %v", r.G)
		}
		if r.G == nil {
			t.Fatalf("%s: nil graph", r.Name)
		}
	}
}
