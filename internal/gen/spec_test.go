package gen_test

import (
	"testing"

	"arbods/internal/gen"
)

func TestParseSpecs(t *testing.T) {
	tests := []struct {
		spec  string
		wantN int
	}{
		{"path:n=10", 10},
		{"cycle:n=12", 12},
		{"star:n=7", 7},
		{"complete:n=5", 5},
		{"tree:n=20,seed=3", 20},
		{"ktree:k=2,d=3", 15},
		{"caterpillar:s=4,l=2", 12},
		{"broom:p=5,l=10", 15},
		{"forest:n=30,k=3,seed=2", 30},
		{"grid:r=3,c=4", 12},
		{"torus:r=3,c=3", 9},
		{"hypercube:d=4", 16},
		{"er:n=25,p=0.3,seed=4", 25},
		{"ba:n=40,m=2,seed=5", 40},
		{"bipartite:a=4,b=6,p=0.5,seed=6", 10},
		{"geom:n=15,r=0.4,seed=7", 15},
		{"path", 100}, // defaults apply
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			r, err := gen.Parse(tt.spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.G.N() != tt.wantN {
				t.Fatalf("n = %d, want %d", r.G.N(), tt.wantN)
			}
		})
	}
}

func TestParseWeightSuffix(t *testing.T) {
	r, err := gen.Parse("grid:r=4,c=4/uniform:max=9,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if r.G.Unweighted() {
		t.Fatal("uniform weights not applied")
	}
	for v := 0; v < r.G.N(); v++ {
		if w := r.G.Weight(v); w < 1 || w > 9 {
			t.Fatalf("weight %d out of range", w)
		}
	}
	for _, spec := range []string{
		"path:n=5/unit",
		"path:n=5/exp:scale=10",
		"path:n=5/degree:factor=2",
	} {
		if _, err := gen.Parse(spec); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"martian:n=5",
		"path:n=x",
		"path:n",
		"er:n=10,p=zap",
		"path:n=5/uranium:max=2",
		"tree:n=10,seed=-1",
	} {
		if _, err := gen.Parse(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

func TestParseRejectsNonIntegerArgs(t *testing.T) {
	// Regression: a non-integer value for an integer parameter must error,
	// not silently fall back to the default.
	for _, spec := range []string{"grid:r=2.5,c=4", "forest:n=30,k=x"} {
		if _, err := gen.Parse(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}
