// Package verify provides machine-checkable certificates for every bound the
// paper states: dominating-set validity, packing feasibility (the Lemma 2.1
// lower bound), the per-run approximation certificates, orientation
// out-degree bounds (Observation 3.5), and fractional vertex cover
// feasibility (the Section 5 reduction).
package verify

import (
	"fmt"

	"arbods/internal/graph"
)

// DefaultTol is the relative tolerance used for floating-point certificate
// comparisons. Packing values are products of at most a few thousand exact
// factors, so 1e-9 relative slack is far above accumulated error yet far
// below any meaningful violation.
const DefaultTol = 1e-9

// DominatingSet checks that inSet is a dominating set of g: every node is in
// the set or adjacent to a member. It returns the list of undominated nodes
// (empty means valid).
func DominatingSet(g *graph.Graph, inSet []bool) (undominated []int) {
	n := g.N()
	for v := 0; v < n; v++ {
		if inSet[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if inSet[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			undominated = append(undominated, v)
		}
	}
	return undominated
}

// SetWeight returns the total weight of the selected nodes.
func SetWeight(g *graph.Graph, inSet []bool) int64 {
	var w int64
	for v := 0; v < g.N(); v++ {
		if inSet[v] {
			w += g.Weight(v)
		}
	}
	return w
}

// SetSize returns the number of selected nodes.
func SetSize(inSet []bool) int {
	n := 0
	for _, b := range inSet {
		if b {
			n++
		}
	}
	return n
}

// PackingFeasible checks the dual packing constraint of Section 2: for every
// node u, X_u = Σ_{v∈N+(u)} x_v ≤ w_u (up to relative tolerance tol).
// A feasible packing certifies Σ_v x_v ≤ OPT (Lemma 2.1).
func PackingFeasible(g *graph.Graph, x []float64, tol float64) error {
	if len(x) != g.N() {
		return fmt.Errorf("verify: packing has %d entries for %d nodes", len(x), g.N())
	}
	for v, xv := range x {
		if xv < 0 {
			return fmt.Errorf("verify: negative packing value x[%d]=%g", v, xv)
		}
	}
	for u := 0; u < g.N(); u++ {
		sum := x[u]
		for _, v := range g.Neighbors(u) {
			sum += x[v]
		}
		bound := float64(g.Weight(u)) * (1 + tol)
		if sum > bound {
			return fmt.Errorf("verify: packing infeasible at node %d: X=%g > w=%d", u, sum, g.Weight(u))
		}
	}
	return nil
}

// PackingSum returns Σ_v x_v, the Lemma 2.1 lower bound on OPT.
func PackingSum(x []float64) float64 {
	var s float64
	for _, xv := range x {
		s += xv
	}
	return s
}

// Certificate checks the per-run guarantee w(S) ≤ factor·Σ_v x_v that the
// deterministic algorithms certify (Claim 3.3 / Theorem 1.1's proof).
func Certificate(g *graph.Graph, inSet []bool, x []float64, factor, tol float64) error {
	w := float64(SetWeight(g, inSet))
	bound := factor * PackingSum(x) * (1 + tol)
	if w > bound {
		return fmt.Errorf("verify: certificate violated: w(S)=%g > factor·Σx=%g", w, bound)
	}
	return nil
}

// OutDegreeAtMost checks that the orientation given by out-neighbor lists
// has maximum out-degree ≤ k (Observation 3.5's premise).
func OutDegreeAtMost(out [][]int32, k int) error {
	for v, nb := range out {
		if len(nb) > k {
			return fmt.Errorf("verify: node %d has out-degree %d > %d", v, len(nb), k)
		}
	}
	return nil
}

// FractionalVertexCover checks that y is a feasible fractional vertex cover
// of g: y_u + y_v ≥ 1 for every edge {u,v}, all y ≥ 0. Used by the
// Theorem 1.4 reduction (MDS on H → fractional VC on G).
func FractionalVertexCover(g *graph.Graph, y []float64, tol float64) error {
	if len(y) != g.N() {
		return fmt.Errorf("verify: cover has %d entries for %d nodes", len(y), g.N())
	}
	for v, yv := range y {
		if yv < 0 {
			return fmt.Errorf("verify: negative cover value y[%d]=%g", v, yv)
		}
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u && y[u]+y[int(v)] < 1-tol {
				return fmt.Errorf("verify: edge {%d,%d} uncovered: %g + %g < 1", u, v, y[u], y[int(v)])
			}
		}
	}
	return nil
}

// FractionalValue returns Σ_v y_v.
func FractionalValue(y []float64) float64 { return PackingSum(y) }
