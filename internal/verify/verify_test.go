package verify_test

import (
	"testing"

	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/verify"
)

func TestDominatingSet(t *testing.T) {
	g := gen.Path(5).G // 0-1-2-3-4
	tests := []struct {
		name string
		set  []bool
		want int // number of undominated nodes
	}{
		{"center-only", []bool{false, true, false, true, false}, 0},
		{"ends", []bool{true, false, false, false, true}, 1}, // node 2 uncovered
		{"empty", make([]bool, 5), 5},
		{"all", []bool{true, true, true, true, true}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := verify.DominatingSet(g, tt.set); len(got) != tt.want {
				t.Fatalf("undominated = %v, want %d nodes", got, tt.want)
			}
		})
	}
}

func TestPackingFeasible(t *testing.T) {
	g := graph.NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).
		SetWeight(0, 2).SetWeight(1, 3).SetWeight(2, 2).MustBuild()
	if err := verify.PackingFeasible(g, []float64{1, 1, 1}, 0); err != nil {
		t.Fatalf("feasible packing rejected: %v", err)
	}
	// Node 1 sees X = 1.5+1.5+1.5 = 4.5 > 3.
	if err := verify.PackingFeasible(g, []float64{1.5, 1.5, 1.5}, 0); err == nil {
		t.Fatal("infeasible packing accepted")
	}
	if err := verify.PackingFeasible(g, []float64{-1, 0, 0}, 0); err == nil {
		t.Fatal("negative packing accepted")
	}
	if err := verify.PackingFeasible(g, []float64{1}, 0); err == nil {
		t.Fatal("wrong-length packing accepted")
	}
}

func TestCertificate(t *testing.T) {
	g := gen.Star(4).G
	set := []bool{true, false, false, false}
	x := []float64{0.5, 0.1, 0.1, 0.1}
	if err := verify.Certificate(g, set, x, 2.0, 0); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	if err := verify.Certificate(g, set, x, 1.0, 0); err == nil {
		t.Fatal("violated certificate accepted")
	}
}

func TestFractionalVertexCover(t *testing.T) {
	g := gen.Cycle(4).G
	if err := verify.FractionalVertexCover(g, []float64{0.5, 0.5, 0.5, 0.5}, 1e-12); err != nil {
		t.Fatalf("half-integral cover rejected: %v", err)
	}
	if err := verify.FractionalVertexCover(g, []float64{0.5, 0.4, 0.5, 0.5}, 1e-12); err == nil {
		t.Fatal("infeasible cover accepted")
	}
	if err := verify.FractionalVertexCover(g, []float64{-0.1, 1.1, 1, 1}, 1e-12); err == nil {
		t.Fatal("negative cover accepted")
	}
	if err := verify.FractionalVertexCover(g, []float64{1}, 0); err == nil {
		t.Fatal("wrong-length cover accepted")
	}
}

func TestOutDegreeAtMost(t *testing.T) {
	out := [][]int32{{1, 2}, {2}, {}}
	if err := verify.OutDegreeAtMost(out, 2); err != nil {
		t.Fatal(err)
	}
	if err := verify.OutDegreeAtMost(out, 1); err == nil {
		t.Fatal("out-degree violation accepted")
	}
}

func TestSetHelpers(t *testing.T) {
	g := graph.NewBuilder(3).SetWeight(0, 10).SetWeight(1, 20).SetWeight(2, 30).MustBuild()
	set := []bool{true, false, true}
	if w := verify.SetWeight(g, set); w != 40 {
		t.Fatalf("SetWeight = %d", w)
	}
	if n := verify.SetSize(set); n != 2 {
		t.Fatalf("SetSize = %d", n)
	}
	if s := verify.PackingSum([]float64{1, 2, 3.5}); s != 6.5 {
		t.Fatalf("PackingSum = %g", s)
	}
}
