package congest_test

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// batchPoint is one job of the batch-determinism workload: a (graph, seed,
// stats) combination whose full Result the job writes into its slot.
type batchPoint struct {
	g     *graph.Graph
	seed  uint64
	stats bool
}

// batchJob runs the echo workload for point p and stores the Result in
// out[i] — the slot discipline every batch caller follows.
func batchJob(p batchPoint, out []*congest.Result[int64], i int) congest.Job {
	return func(r *congest.Runner, workers int) error {
		res, err := congest.Run(p.g, func(ni congest.NodeInfo) congest.Proc[int64] {
			return &echoProc{ni: ni, rounds: 3}
		}, batchOpts(p, congest.WithRunner(r), congest.WithWorkers(workers))...)
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
		out[i] = res
		return nil
	}
}

func batchOpts(p batchPoint, extra ...congest.Option) []congest.Option {
	o := append([]congest.Option{congest.WithSeed(p.seed), congest.WithRoundStats()}, extra...)
	if p.stats {
		o = append(o, congest.WithMessageStats())
	}
	return o
}

// TestBatchMatchesSequential pins the batch determinism contract: for any
// pool size, a batch over mixed graphs/seeds/option sets produces, slot
// for slot, exactly the Results of transient sequential runs. Under
// -race this is also the concurrency test for RunnerPool checkout —
// every Runner serves many different jobs across goroutines.
func TestBatchMatchesSequential(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(300, 0.02, 3).G,
		gen.Grid(15, 20).G,
		gen.Star(200).G,
		gen.ForestUnion(250, 3, 5).G,
	}
	var points []batchPoint
	for i := 0; i < 24; i++ {
		points = append(points, batchPoint{
			g:     graphs[i%len(graphs)],
			seed:  uint64(100 + i/len(graphs)),
			stats: i%3 == 0,
		})
	}
	want := make([]*congest.Result[int64], len(points))
	for i, p := range points {
		res, err := congest.Run(p.g, func(ni congest.NodeInfo) congest.Proc[int64] {
			return &echoProc{ni: ni, rounds: 3}
		}, batchOpts(p)...)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, parallel := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("parallel=%d", parallel), func(t *testing.T) {
			got := make([]*congest.Result[int64], len(points))
			jobs := make([]congest.Job, len(points))
			for i, p := range points {
				jobs[i] = batchJob(p, got, i)
			}
			if err := congest.RunBatch(parallel, jobs...); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("slot %d diverges from the sequential run\nwant %+v\n got %+v",
						i, want[i], got[i])
				}
			}
		})
	}
}

// TestBatchAbortedJob: jobs that abort (strict-mode bandwidth violation)
// must not poison the Runner they ran on — later jobs on the same pool
// produce bit-identical results — and Wait must report the error of the
// lowest submission slot, independent of scheduling order.
func TestBatchAbortedJob(t *testing.T) {
	g := gen.Cycle(120).G
	p := batchPoint{g: g, seed: 7, stats: true}
	want, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 3}
	}, batchOpts(p)...)
	if err != nil {
		t.Fatal(err)
	}

	pool := congest.NewRunnerPool(2)
	defer pool.Close()
	const jobs = 12
	got := make([]*congest.Result[int64], jobs)
	b := pool.Batch()
	for i := 0; i < jobs; i++ {
		if i%3 == 1 {
			i := i
			b.Submit(func(r *congest.Runner, workers int) error {
				_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
					return &sendOnceProc{target: int(ni.Neighbors[0]), fat: true}
				}, congest.WithSeed(1), congest.WithRunner(r), congest.WithWorkers(workers))
				if err == nil {
					return fmt.Errorf("job %d: fat packet did not trip strict mode", i)
				}
				return fmt.Errorf("job %d aborted: %w", i, err)
			})
			continue
		}
		b.Submit(batchJob(p, got, i))
	}
	err = b.Wait()
	if err == nil {
		t.Fatal("Wait returned nil although jobs failed")
	}
	// Slot 1 is the first failing submission; its error must win however
	// the scheduler ordered completions.
	if !strings.Contains(err.Error(), "job 1 aborted") {
		t.Fatalf("Wait error is not the lowest failing slot's: %v", err)
	}
	for i := 0; i < jobs; i++ {
		if i%3 == 1 {
			continue
		}
		if !reflect.DeepEqual(want, got[i]) {
			t.Fatalf("slot %d after aborted neighbors diverges:\nwant %+v\n got %+v", i, want, got[i])
		}
	}
}

// TestRunnerPoolWorkerBudget pins the GOMAXPROCS split: pool checkouts
// together never budget more engine workers than the machine has (with
// the at-least-one floor), so batch parallelism does not oversubscribe.
func TestRunnerPoolWorkerBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	for _, size := range []int{1, 2, 3, procs, 2 * procs} {
		pool := congest.NewRunnerPool(size)
		if pool.Size() != size {
			t.Fatalf("Size() = %d, want %d", pool.Size(), size)
		}
		want := procs / size
		if want < 1 {
			want = 1
		}
		if pool.Workers() != want {
			t.Fatalf("size %d: Workers() = %d, want %d", size, pool.Workers(), want)
		}
		pool.Close()
	}
	pool := congest.NewRunnerPool(0)
	defer pool.Close()
	if pool.Size() != procs || pool.Workers() != 1 {
		t.Fatalf("default pool: Size()=%d Workers()=%d, want %d and 1", pool.Size(), pool.Workers(), procs)
	}
}

// TestRunnerPoolGetPut exercises manual checkout: Runners cycle through
// Get/Put in arbitrary order and the pool hands every one of them out.
func TestRunnerPoolGetPut(t *testing.T) {
	pool := congest.NewRunnerPool(3)
	defer pool.Close()
	a, b, c := pool.Get(), pool.Get(), pool.Get()
	if a == b || b == c || a == c {
		t.Fatal("pool handed out the same Runner twice")
	}
	g := gen.Path(50).G
	for _, r := range []*congest.Runner{a, b, c} {
		res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
			return &echoProc{ni: ni, rounds: 1}
		}, congest.WithSeed(3), congest.WithRunner(r))
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages == 0 {
			t.Fatal("no traffic routed")
		}
	}
	pool.Put(b)
	pool.Put(a)
	pool.Put(c)
}
