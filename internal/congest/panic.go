package congest

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrProcPanic is the sentinel every recovered proc panic wraps: callers
// match the class with errors.Is(err, ErrProcPanic) and reach the round,
// node, and captured stack through errors.As with *ProcPanicError.
var ErrProcPanic = errors.New("congest: proc panicked")

// ProcPanicError reports a panic recovered from user proc code — a
// Factory constructing a node, a Proc.Step call, or a Proc.Output call —
// converted into an ordinary run error so one faulty callback fails one
// run instead of the whole process. The engine's worker goroutines and
// its coordinating goroutine both recover: a panic on any of them
// surfaces here, deterministically (the lowest panicking node wins when
// shards race), and the Runner that hosted the run is marked poisoned
// (see Runner.Poisoned and RunnerPool.Put for the quarantine contract).
type ProcPanicError struct {
	// Round is the round the panic interrupted; -1 when it happened
	// outside the round loop (Factory construction before round 0, or
	// Output collection after the last round).
	Round int
	// Node is the node whose callback panicked; -1 when the panic did not
	// come from a per-node callback (an injected engine fault).
	Node int
	// Value is the value the callback panicked with.
	Value any
	// Stack is the panicking goroutine's stack, captured at recover time.
	Stack []byte
}

func (e *ProcPanicError) Error() string {
	return fmt.Sprintf("congest: proc panicked at round %d on node %d: %v", e.Round, e.Node, e.Value)
}

// Unwrap ties the typed error to the ErrProcPanic sentinel.
func (e *ProcPanicError) Unwrap() error { return ErrProcPanic }

// newProcPanic wraps a recovered panic value (recover must be called by
// the deferred function itself; this builds the error it records).
func newProcPanic(round, node int, v any) *ProcPanicError {
	return &ProcPanicError{Round: round, Node: node, Value: v, Stack: debug.Stack()}
}
