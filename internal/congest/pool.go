package congest

import "sync"

// phase identifies which shard task a dispatch executes. Dispatching
// (runner, phase) pairs instead of func values keeps the round loop free
// of per-run method-value allocations: the engine converts itself to the
// phaseRunner interface (a pointer, no allocation) once per call.
type phase int

const (
	phaseStep phase = iota
	phaseDrain
	phaseMerge
)

// phaseRunner is implemented by the engine: execute one phase on one shard.
type phaseRunner interface {
	runShard(ph phase, w int)
}

// pool is a set of long-lived worker goroutines, one per engine worker.
// The engine dispatches one task per worker per phase (step, then
// drain/merge) and waits on a shared WaitGroup; workers park on their
// signal channel between phases instead of being respawned every round,
// which removes the per-round goroutine create/destroy cost the old
// engine paid.
type pool struct {
	runner phaseRunner     // current dispatch target; published by the channel sends
	phase  phase           // current phase; published by the channel sends
	start  []chan struct{} // one signal channel per worker
	wg     sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{start: make([]chan struct{}, workers)}
	for i := range p.start {
		ch := make(chan struct{}, 1)
		p.start[i] = ch
		go p.worker(i, ch)
	}
	return p
}

func (p *pool) worker(i int, ch chan struct{}) {
	for range ch {
		p.runner.runShard(p.phase, i)
		p.wg.Done()
	}
}

// run executes r.runShard(ph, w) on workers 0..k-1 and returns when all
// are done (a Runner reused with a smaller worker count leaves the rest
// parked). Writing p.runner/p.phase before the channel sends gives each
// worker a happens-before edge to the new task, so run needs no extra
// locking and no allocation.
func (p *pool) run(r phaseRunner, ph phase, k int) {
	p.runner = r
	p.phase = ph
	p.wg.Add(k)
	for _, ch := range p.start[:k] {
		ch <- struct{}{}
	}
	p.wg.Wait()
}

// close terminates the workers. The pool must be idle.
func (p *pool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}
