package congest

import "sync"

// pool is a set of long-lived worker goroutines, one per engine worker.
// The engine dispatches one task per worker per phase (step, then route)
// and waits on a shared WaitGroup; workers park on their signal channel
// between phases instead of being respawned every round, which removes
// the per-round goroutine create/destroy cost the old engine paid.
type pool struct {
	task  func(w int)     // current phase task; published by the channel sends
	start []chan struct{} // one signal channel per worker
	wg    sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{start: make([]chan struct{}, workers)}
	for i := range p.start {
		ch := make(chan struct{}, 1)
		p.start[i] = ch
		go p.worker(i, ch)
	}
	return p
}

func (p *pool) worker(i int, ch chan struct{}) {
	for range ch {
		p.task(i)
		p.wg.Done()
	}
}

// run executes task(w) on workers 0..k-1 and returns when all are done
// (a Runner reused with a smaller worker count leaves the rest parked).
// Writing p.task before the channel sends gives each worker a
// happens-before edge to the new task, so run needs no extra locking;
// passing pre-built method values keeps the round loop allocation-free.
func (p *pool) run(task func(w int), k int) {
	p.task = task
	p.wg.Add(k)
	for _, ch := range p.start[:k] {
		ch <- struct{}{}
	}
	p.wg.Wait()
}

// close terminates the workers. The pool must be idle.
func (p *pool) close() {
	for _, ch := range p.start {
		close(ch)
	}
}
