package congest_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/mds"
	"arbods/internal/orient"
)

// transcript is the part of a Result pinned against semantic drift:
// the transcript totals plus an FNV-1a hash of the full per-node output
// vector (set membership, domination, packing values, τ, c_v).
type transcript struct {
	Rounds      int
	Messages    int64
	TotalBits   int64
	MaxEdgeBits int
	OutputHash  uint64
}

// mdsTranscript summarizes a *mds.Report for pinning.
func mdsTranscript(rep *mds.Report) transcript {
	h := fnv.New64a()
	for _, o := range rep.Result.Outputs {
		writeBool(h, o.InDS)
		writeBool(h, o.InPartial)
		writeBool(h, o.InExtension)
		writeBool(h, o.Dominated)
		writeU64(h, math.Float64bits(o.Packing))
		writeU64(h, uint64(o.Tau))
		writeU64(h, uint64(o.SampledDominators))
	}
	return transcript{
		Rounds:      rep.Result.Rounds,
		Messages:    rep.Result.Messages,
		TotalBits:   rep.Result.TotalBits,
		MaxEdgeBits: rep.Result.MaxEdgeBits,
		OutputHash:  h.Sum64(),
	}
}

func orientTranscript(res *congest.Result[orient.Output]) transcript {
	h := fnv.New64a()
	for _, o := range res.Outputs {
		writeU64(h, uint64(o.Layer))
		writeU64(h, uint64(o.Estimate))
		for _, u := range o.Out {
			writeU64(h, uint64(u))
		}
		writeU64(h, ^uint64(0)) // record separator
	}
	return transcript{
		Rounds:      res.Rounds,
		Messages:    res.Messages,
		TotalBits:   res.TotalBits,
		MaxEdgeBits: res.MaxEdgeBits,
		OutputHash:  h.Sum64(),
	}
}

func writeBool(h interface{ Write([]byte) (int, error) }, b bool) {
	if b {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}

func writeU64(h interface{ Write([]byte) (int, error) }, x uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(x >> (8 * i))
	}
	h.Write(buf[:])
}

// regressGraphs returns the fixed instances the transcripts are pinned on.
func regressGraphs() (er *graph.Graph, forest *graph.Graph) {
	return gen.ErdosRenyi(400, 0.015, 9).G, gen.RandomTree(300, 17).G
}

// goldenTranscripts pins Result{Rounds, Messages, TotalBits, MaxEdgeBits,
// Outputs} for every algorithm family at seed 5 on the regressGraphs
// instances. The values were recorded from the engine BEFORE the packed
// wire-word migration (PR 3) and must never change: the packet format is
// an engine-internal representation, not a semantic change.
var goldenTranscripts = map[string]transcript{
	"weighted-deterministic":   {Rounds: 10, Messages: 8306, TotalBits: 62598, MaxEdgeBits: 10, OutputHash: 0x1e3c4f2097caa569},
	"unweighted-deterministic": {Rounds: 8, Messages: 7942, TotalBits: 59902, MaxEdgeBits: 10, OutputHash: 0x60a6c3fc8d5b2211},
	"weighted-randomized":      {Rounds: 52, Messages: 7491, TotalBits: 49765, MaxEdgeBits: 10, OutputHash: 0xecae50ecf3b0c29e},
	"general-graphs":           {Rounds: 14, Messages: 7565, TotalBits: 50061, MaxEdgeBits: 10, OutputHash: 0x51a820b9669cfe10},
	"unknown-delta":            {Rounds: 11, Messages: 7208, TotalBits: 58172, MaxEdgeBits: 11, OutputHash: 0x1be2646e832cec9a},
	"unknown-alpha":            {Rounds: 583, Messages: 49703, TotalBits: 780181, MaxEdgeBits: 20, OutputHash: 0x98ff25897cf7f335},
	"tree-3approx":             {Rounds: 2, Messages: 598, TotalBits: 3617, MaxEdgeBits: 8, OutputHash: 0x4124365dd2a40385},
	"orient-known":             {Rounds: 29, Messages: 2386, TotalBits: 9544, MaxEdgeBits: 4, OutputHash: 0x72ae1337d51c623},
	"baseline-kw05":            {Rounds: 10, Messages: 6861, TotalBits: 32489, MaxEdgeBits: 6, OutputHash: 0x53e7272e024421ad},
	"baseline-lw":              {Rounds: 10, Messages: 2550, TotalBits: 10200, MaxEdgeBits: 4, OutputHash: 0xcfc98a169deae31d},
	"baseline-lrg":             {Rounds: 47, Messages: 37569, TotalBits: 242140, MaxEdgeBits: 9, OutputHash: 0xec80b1239d32b9b5},
}

// runTranscripts executes all 11 algorithm families on the pinned
// instances at seed 5 with the given extra simulator options (worker
// count, a shared Runner, …) appended to every run.
func runTranscripts(t *testing.T, extra ...congest.Option) map[string]transcript {
	t.Helper()
	er, forest := regressGraphs()
	const seed = 5
	opts := append([]congest.Option{congest.WithSeed(seed)}, extra...)
	got := make(map[string]transcript)

	wd, err := mds.WeightedDeterministic(er, 3, 0.25, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["weighted-deterministic"] = mdsTranscript(wd)

	uw, err := mds.UnweightedDeterministic(er, 3, 0.25, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["unweighted-deterministic"] = mdsTranscript(uw)

	wr, err := mds.WeightedRandomized(er, 3, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["weighted-randomized"] = mdsTranscript(wr)

	gg, err := mds.GeneralGraphs(er, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["general-graphs"] = mdsTranscript(gg)

	ud, err := mds.UnknownDelta(er, 3, 0.25, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["unknown-delta"] = mdsTranscript(ud)

	ua, err := mds.UnknownAlpha(er, 0.25, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["unknown-alpha"] = mdsTranscript(ua)

	tr, err := mds.TreeThreeApprox(forest, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["tree-3approx"] = mdsTranscript(tr)

	or, err := orient.Run(er, 3, 0.5, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["orient-known"] = orientTranscript(or)

	kw, _, err := baseline.KW05(er, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["baseline-kw05"] = mdsTranscript(kw)

	lw, err := baseline.LWDeterministic(er, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["baseline-lw"] = mdsTranscript(lw)

	lrg, err := baseline.LRGRandomized(er, opts...)
	if err != nil {
		t.Fatal(err)
	}
	got["baseline-lrg"] = mdsTranscript(lrg)

	return got
}

// compareTranscripts fails the test for every family whose transcript in
// got differs from want.
func compareTranscripts(t *testing.T, label string, want, got map[string]transcript) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d families ran, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: %s transcript diverged:\n got %+v\nwant %+v", label, name, g, w)
		}
	}
}

// TestTranscriptEquivalence guards the engine's internal representation
// against silent semantic drift: for a fixed seed, every algorithm's
// transcript (rounds, message count, bit volume, max per-edge load, and
// the full output vector) must match the values recorded before the
// packed wire-word migration (PR 3) — and, since the arena engine, the
// same goldens also pin the flat-CSR-inbox/Runner rewrite.
func TestTranscriptEquivalence(t *testing.T) {
	got := runTranscripts(t)
	if len(goldenTranscripts) == 0 {
		for name, tr := range got {
			t.Logf("%q: {Rounds: %d, Messages: %d, TotalBits: %d, MaxEdgeBits: %d, OutputHash: 0x%x},",
				name, tr.Rounds, tr.Messages, tr.TotalBits, tr.MaxEdgeBits, tr.OutputHash)
		}
		t.Fatal("goldenTranscripts is empty — paste the logged values above")
	}
	for name, want := range goldenTranscripts {
		tr, ok := got[name]
		if !ok {
			t.Errorf("%s: algorithm not exercised", name)
			continue
		}
		if tr != want {
			t.Errorf("%s transcript drifted:\n got %+v\nwant %+v", name, tr, want)
		}
	}
	for name := range got {
		if _, ok := goldenTranscripts[name]; !ok {
			t.Errorf("%s: missing golden entry", name)
		}
	}
}

// TestTranscriptWorkerInvariance runs all 11 algorithm families with the
// sequential engine and with the sharded parallel engine (flat CSR
// inboxes) and requires identical transcripts — the whole-library version
// of TestWorkerCountInvariance's synthetic proc.
func TestTranscriptWorkerInvariance(t *testing.T) {
	seq := runTranscripts(t, congest.WithWorkers(1))
	compareTranscripts(t, "goldens vs workers=1", goldenTranscripts, seq)
	for _, workers := range []int{3, runtime.GOMAXPROCS(0) + 1} {
		par := runTranscripts(t, congest.WithWorkers(workers))
		compareTranscripts(t, fmt.Sprintf("workers=%d", workers), seq, par)
	}
}

// TestTranscriptRunnerReuse runs all 11 families back to back on ONE
// shared Runner — arenas, flat inboxes, worker pool, and sender tables
// recycled across runs and across the two pinned graphs — and requires
// every transcript to match the transient-state goldens. Any state leaking
// from one run into the next (stale inbox views, un-reset arena memory,
// surviving done flags) would show up here.
func TestTranscriptRunnerReuse(t *testing.T) {
	r := congest.NewRunner()
	defer r.Close()
	for pass := 1; pass <= 2; pass++ {
		got := runTranscripts(t, congest.WithRunner(r))
		compareTranscripts(t, fmt.Sprintf("runner pass %d", pass), goldenTranscripts, got)
	}
	// And once more sequentially, so the reuse path is covered for both
	// engine variants.
	got := runTranscripts(t, congest.WithRunner(r), congest.WithWorkers(1))
	compareTranscripts(t, "runner workers=1", goldenTranscripts, got)
}
