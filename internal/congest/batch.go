package congest

import (
	"runtime"
	"sync"
)

// Job is one independent unit of a batch: typically one simulator run (a
// seed × option × graph point of a sweep). It receives the Runner checked
// out for it and the pool's intra-run worker budget; a job that executes
// simulator runs must pass both along as WithRunner(r) and
// WithWorkers(workers), and must keep its side effects confined to state
// it owns — the batch pattern is that job i writes its result into slot i
// of a caller-owned slice, so the assembled results are identical to the
// sequential sweep no matter how the scheduler interleaves execution.
type Job func(r *Runner, workers int) error

// Batch schedules independent jobs across a RunnerPool with bounded
// parallelism. Submit never blocks (jobs queue on the pool's checkout);
// Wait blocks until every submitted job has finished and returns the
// error of the lowest submission index that failed — deterministic, like
// everything else about a batch: jobs may run in any order, but results
// land in submission slots and the reported error does not depend on
// scheduling.
//
// A failed job does not cancel the rest of the batch; its Runner returns
// to the pool and is reset by its next run. Jobs must not Submit to their
// own batch or Get from their own pool (a full pool would deadlock), and
// a Batch must not be reused after Wait — create a new one per phase.
type Batch struct {
	pool *RunnerPool
	wg   sync.WaitGroup
	n    int

	mu     sync.Mutex
	errIdx int
	err    error
}

// Batch starts an empty batch on the pool.
func (p *RunnerPool) Batch() *Batch { return &Batch{pool: p, errIdx: -1} }

// Submit enqueues a job. Not goroutine-safe: submissions come from the
// coordinating goroutine, in the order that defines the slot indices.
func (b *Batch) Submit(job Job) {
	idx := b.n
	b.n++
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		r := b.pool.Get()
		defer b.pool.Put(r)
		if err := job(r, b.pool.workers); err != nil {
			b.mu.Lock()
			if b.errIdx < 0 || idx < b.errIdx {
				b.errIdx, b.err = idx, err
			}
			b.mu.Unlock()
		}
	}()
}

// Wait blocks until every submitted job is done and returns the first
// error in submission order (nil when all succeeded).
func (b *Batch) Wait() error {
	b.wg.Wait()
	return b.err
}

// RunBatch executes the jobs with at most `parallel` in flight on a
// transient RunnerPool (parallel ≤ 0 selects GOMAXPROCS; the pool never
// outgrows the job count) and returns the first error in submission
// order. parallel = 1 degenerates to a plain sequential loop on one
// reusable Runner with the full worker budget — the reference the
// determinism tests compare every other parallelism against. Callers
// running several batches should hold their own RunnerPool and use
// Batch/Submit/Wait instead, so the warmed Runners carry over.
func RunBatch(parallel int, jobs ...Job) error {
	if len(jobs) == 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	if parallel == 1 {
		r := NewRunner()
		defer r.Close()
		for _, job := range jobs {
			if err := job(r, runtime.GOMAXPROCS(0)); err != nil {
				return err
			}
		}
		return nil
	}
	pool := NewRunnerPool(parallel)
	defer pool.Close()
	b := pool.Batch()
	for _, job := range jobs {
		b.Submit(job)
	}
	return b.Wait()
}
