package congest

import (
	"context"
	"runtime"
	"sync"
)

// Job is one independent unit of a batch: typically one simulator run (a
// seed × option × graph point of a sweep). It receives the Runner checked
// out for it and the pool's intra-run worker budget; a job that executes
// simulator runs must pass both along as WithRunner(r) and
// WithWorkers(workers), and must keep its side effects confined to state
// it owns — the batch pattern is that job i writes its result into slot i
// of a caller-owned slice, so the assembled results are identical to the
// sequential sweep no matter how the scheduler interleaves execution.
//
// Cancellation is two-layered: a batch created with BatchContext stops
// *starting* jobs once its context dies, but a job already holding a
// Runner runs to completion unless the job itself observes the same
// context — a cancellable job captures ctx and threads it into its runs
// with WithContext(ctx) (or RunContext), so in-flight simulator rounds
// abort too.
type Job func(r *Runner, workers int) error

// Batch schedules independent jobs across a RunnerPool with bounded
// parallelism. Submit never blocks (jobs queue on the pool's checkout);
// Wait blocks until every submitted job has finished and returns the
// error of the lowest submission index that failed — deterministic, like
// everything else about a batch: jobs may run in any order, but results
// land in submission slots and the reported error does not depend on
// scheduling.
//
// A failed job does not cancel the rest of the batch; its Runner returns
// to the pool and is reset by its next run. Jobs must not Submit to their
// own batch or Get from their own pool (a full pool would deadlock), and
// a Batch must not be reused after Wait — create a new one per phase.
type Batch struct {
	pool *RunnerPool
	ctx  context.Context // nil = never canceled
	wg   sync.WaitGroup
	n    int

	mu     sync.Mutex
	errIdx int
	err    error
}

// Batch starts an empty batch on the pool; its jobs are never canceled
// by a context (BatchContext adds that).
func (p *RunnerPool) Batch() *Batch { return &Batch{pool: p, errIdx: -1} }

// BatchContext starts an empty batch whose remaining slots are canceled
// when ctx dies: a submitted job that has not yet checked a Runner out
// when the context is canceled never starts, and its slot fails with
// ctx.Err(). Jobs already running are not interrupted by the batch —
// they cancel only if they thread the same ctx into their runs
// (WithContext). Error reporting keeps the deterministic lowest-slot
// rule: Wait returns the lowest-slot failure, whether that is a job
// error or a cancellation.
func (p *RunnerPool) BatchContext(ctx context.Context) *Batch {
	return &Batch{pool: p, ctx: ctx, errIdx: -1}
}

// Submit enqueues a job. Not goroutine-safe: submissions come from the
// coordinating goroutine, in the order that defines the slot indices.
func (b *Batch) Submit(job Job) {
	idx := b.n
	b.n++
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		r, err := b.pool.GetContext(b.ctx)
		if err != nil {
			b.recordErr(idx, err)
			return
		}
		defer b.pool.Put(r)
		if err := job(r, b.pool.workers); err != nil {
			b.recordErr(idx, err)
		}
	}()
}

func (b *Batch) recordErr(idx int, err error) {
	b.mu.Lock()
	if b.errIdx < 0 || idx < b.errIdx {
		b.errIdx, b.err = idx, err
	}
	b.mu.Unlock()
}

// Wait blocks until every submitted job is done and returns the first
// error in submission order (nil when all succeeded).
func (b *Batch) Wait() error {
	b.wg.Wait()
	return b.err
}

// RunBatch executes the jobs with at most `parallel` in flight on a
// transient RunnerPool (parallel ≤ 0 selects GOMAXPROCS; the pool never
// outgrows the job count) and returns the first error in submission
// order. parallel = 1 degenerates to a plain sequential loop on one
// reusable Runner with the full worker budget — the reference the
// determinism tests compare every other parallelism against. Callers
// running several batches should hold their own RunnerPool and use
// Batch/Submit/Wait instead, so the warmed Runners carry over.
func RunBatch(parallel int, jobs ...Job) error {
	return RunBatchContext(context.Background(), parallel, jobs...)
}

// RunBatchContext is RunBatch under a context: once ctx dies, jobs that
// have not started fail with ctx.Err() in their slots (running jobs
// finish unless they observe ctx themselves — see Job), and the first
// error in submission order is returned. The sequential parallel = 1
// path checks ctx between jobs, preserving the same contract.
func RunBatchContext(ctx context.Context, parallel int, jobs ...Job) error {
	if len(jobs) == 0 {
		return nil
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	if parallel == 1 {
		r := NewRunner()
		defer r.Close()
		for _, job := range jobs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := job(r, runtime.GOMAXPROCS(0)); err != nil {
				return err
			}
		}
		return nil
	}
	pool := NewRunnerPool(parallel)
	defer pool.Close()
	b := pool.BatchContext(ctx)
	for _, job := range jobs {
		b.Submit(job)
	}
	return b.Wait()
}
