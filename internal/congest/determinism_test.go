package congest_test

import (
	"reflect"
	"runtime"
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// packToken is a second message type so MessageStats has >1 key.
func packToken(hops int32) congest.Packet {
	return congest.Packet{
		Tag:  tagToken,
		Bits: uint32(congest.MsgTagBits + congest.BitsInt(int64(hops))),
		A:    uint64(uint32(hops)),
	}
}

func tokenHops(p congest.Packet) int32 { return int32(uint32(p.A)) }

// chatterProc exercises every transcript dimension at once: staggered
// termination (drops), two message types (message stats), random
// payloads (seed plumbing), multiple messages per edge per round
// (aggregated edge accounting / audit violations), and a final
// send-and-terminate farewell.
type chatterProc struct {
	ni     congest.NodeInfo
	rounds int
	sum    int64
}

func (p *chatterProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	for _, m := range in {
		switch m.P.Tag {
		case tagPing:
			p.sum += pingPayload(m.P)
		case tagToken:
			p.sum += int64(tokenHops(m.P))
		}
	}
	if round >= p.rounds {
		if d := p.ni.Degree(); d > 0 {
			s.Send(int(p.ni.Neighbors[p.ni.Rand.Intn(d)]), packToken(int32(round)))
		}
		return true
	}
	s.Broadcast(packPing(int64(p.ni.Rand.Intn(1000))))
	if p.ni.Degree() > 0 && p.ni.Rand.Bernoulli(0.3) {
		s.Send(int(p.ni.Neighbors[0]), packToken(int32(round)))
	}
	return false
}

func (p *chatterProc) Output() int64 { return p.sum }

// TestWorkerCountInvariance: the sequential engine and the sharded
// parallel engine must produce identical Results — outputs, totals,
// per-round stats, and per-type message stats — on a batch of graphs.
func TestWorkerCountInvariance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle":        gen.Cycle(100).G,
		"star":         gen.Star(200).G,
		"grid":         gen.Grid(20, 25).G,
		"forest-union": gen.ForestUnion(400, 3, 11).G,
		"erdos-renyi":  gen.ErdosRenyi(500, 0.01, 12).G,
		"barabasi":     gen.BarabasiAlbert(300, 3, 13).G,
		"random-tree":  gen.RandomTree(257, 14).G,
		"hypercube":    gen.Hypercube(7).G,
	}
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		return &chatterProc{ni: ni, rounds: ni.ID%5 + 1}
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			run := func(workers int) *congest.Result[int64] {
				res, err := congest.Run(g, factory,
					congest.WithSeed(42),
					congest.WithWorkers(workers),
					congest.WithMode(congest.CongestAudit),
					congest.WithBandwidth(20), // tight: ping+token on one edge violates
					congest.WithRoundStats(),
					congest.WithMessageStats(),
				)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := run(1)
			if seq.DroppedMessages == 0 {
				t.Error("scenario exercises no drops — weaken it and the test proves less")
			}
			if seq.BandwidthViolations == 0 {
				t.Error("scenario exercises no audit violations")
			}
			if len(seq.MessageStats) != 2 {
				t.Errorf("want 2 message types, got %v", seq.MessageStats)
			}
			for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0) + 1} {
				par := run(workers)
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("workers=%d diverges from sequential:\nseq: %+v\npar: %+v", workers, seq, par)
				}
			}
		})
	}
}

// farewellProc (node 0) sends in the same Step that terminates it; the
// counterpart (node 1) stays alive for a few rounds counting arrivals.
type farewellProc struct {
	ni    congest.NodeInfo
	heard int
}

func (p *farewellProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	p.heard += len(in)
	if p.ni.ID == 0 {
		if round == 0 {
			s.Send(1, packPing(7))
		}
		return true
	}
	return round >= 3
}

func (p *farewellProc) Output() int { return p.heard }

// TestSendAndTerminateDeliversOnce: messages sent in a node's final Step
// are delivered exactly once. (Regression: the seed engine skipped
// stepping terminated nodes without truncating their outboxes, so a
// send-and-terminate outbox was re-routed every remaining round.)
func TestSendAndTerminateDeliversOnce(t *testing.T) {
	g := gen.Path(2).G
	res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int] {
		return &farewellProc{ni: ni}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != 1 {
		t.Fatalf("node 1 heard the farewell %d times, want exactly 1", res.Outputs[1])
	}
	if res.Messages != 1 {
		t.Fatalf("transcript counts %d messages, want 1", res.Messages)
	}
}
