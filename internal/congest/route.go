package congest

// routeShard is one worker's receiver range plus its routing scratch and
// accumulators. The scratch arrays are indexed by (receiver − lo) and
// reused across senders and rounds; stamp marks which entries belong to
// the sender currently being drained, so nothing is ever cleared — the
// per-sender `make(map[int]int)` of the old engine is gone entirely.
//
// Delivery is CSR-style: each round the shard counts, per receiver, the
// messages actually delivered (pass 1, which also does all of the bit and
// budget accounting), prefix-sums the counts into offsets, and then copies
// the packets into one flat []Incoming backing array at those offsets
// (pass 2). Receivers' inbox views are subslices of the flat array, so the
// per-node slice growth of the old engine — n append-grown inboxes on the
// first busy round — is gone: the only growth is the shard's single flat
// array, and a reused Runner keeps it warm across runs. Two flat arrays
// alternate by round parity because round r's inboxes are read while round
// r+1's are written.
type routeShard struct {
	lo, hi int // receiver range [lo, hi)

	// per-(sender, receiver) edge-bit accounting scratch
	edgeBits  []int64
	stamp     []uint64
	touched   []int32
	senderGen uint64

	// CSR delivery scratch: per-receiver delivered counts (reused as the
	// write cursor in pass 2), the prefix-summed offsets, and the two
	// parity-alternating flat backing arrays.
	cnt          []int32
	off          []int32
	flatA, flatB []Incoming

	// per-round results, reset by routeRange
	msgs, bits, inflight int64
	err                  *BandwidthError // strict mode: (min sender, then min receiver)
	pan                  *ProcPanicError // panic recovered while routing (engine fault, not user code)

	// per-run accumulators, merged by finish
	dropped     int64
	violations  int64
	maxEdgeBits int
	// stats is tag-indexed: recording a message is two array adds, and
	// finish aggregates by scanning MaxTags entries — no reflect.Type
	// map, no hashing in the hot path. Only the sequential router records
	// here; the parallel router's per-packet accounting happens on the
	// drain shards (senderShard.stats).
	stats [MaxTags]MessageStat

	_ linePad // keep adjacent shards' hot fields off shared cache lines
}

// routeRange is the sequential router: the single shard drains every
// sender's outbox directly into its flat inbox array, two passes, no
// staging copy. (Parallel runs route through drainRange/mergeRange in
// shard.go instead — each worker would otherwise scan every outbox.)
// Senders are scanned in ID order and outboxes preserve send order, so
// each inbox fills in (sender ID, send index) order — bit-identical to
// the parallel router at any worker count. The outbox entries are
// plain 32-byte values (destination, reverse index, 24-byte packet)
// streamed sequentially: no interface unboxing, no dynamic Bits() call,
// no allocation in steady state.
func (e *engine[O]) routeRange(w int) {
	s := &e.routes[w]
	lo, hi := s.lo, s.hi
	s.msgs, s.bits, s.inflight, s.err, s.pan = 0, 0, 0, nil, nil
	// Routing executes no user code, so a panic here is an engine bug (or
	// an injected fault) — still recovered, on the same contract as the
	// step phase: the run fails with ErrProcPanic, the process survives,
	// and the Runner is quarantined.
	defer func() {
		if v := recover(); v != nil {
			s.pan = newProcPanic(e.round, -1, v)
		}
	}()
	cnt := s.cnt
	clear(cnt)

	// Pass 1: accounting and per-receiver delivery counts. Budget applies
	// per directed edge (v, to): messages to the same neighbor in one round
	// share one B-bit slot, so their sizes sum.
	strict := e.cfg.mode == Congest
	budget := e.budget
	msgStats := e.cfg.msgStats
	var msgs, bits, inflight int64
	for v := 0; v < e.n; v++ {
		out := e.senders[v].out
		if len(out) == 0 {
			continue
		}
		gen := s.senderGen
		s.senderGen++
		nt := 0 // receivers this sender touched in range, in send order
		for i := range out {
			to := int(out[i].to)
			if to < lo || to >= hi {
				continue
			}
			mb := int64(out[i].p.Bits)
			idx := to - lo
			if s.stamp[idx] != gen {
				s.stamp[idx] = gen
				s.edgeBits[idx] = 0
				s.touched[nt] = int32(to)
				nt++
			}
			s.edgeBits[idx] += mb
			msgs++
			bits += mb
			if msgStats {
				st := &s.stats[out[i].p.Tag]
				st.Count++
				st.Bits += mb
			}
			if e.done[to] {
				s.dropped++
				continue
			}
			cnt[idx]++
			inflight++
		}
		for i := 0; i < nt; i++ {
			to := int(s.touched[i])
			sum := s.edgeBits[to-lo]
			if int(sum) > s.maxEdgeBits {
				s.maxEdgeBits = int(sum)
			}
			if budget > 0 && sum > int64(budget) {
				if strict {
					if s.err == nil || to < s.err.To {
						s.err = &BandwidthError{Round: e.round, From: v, To: to, Bits: int(sum), Budget: budget}
					}
				} else {
					s.violations++
				}
			}
		}
		if s.err != nil {
			// First violating sender found (senders scanned in ID order);
			// the run is about to abort, so stop draining.
			return
		}
	}
	s.msgs, s.bits, s.inflight = msgs, bits, inflight

	// Prefix-sum the counts into offsets and publish the inbox views —
	// every receiver in range gets one, empty or not, which also retires
	// the previous parity round's view.
	total := int32(0)
	for i := range cnt {
		s.off[i] = total
		total += cnt[i]
	}
	s.off[len(cnt)] = total
	flat := &s.flatA
	if e.round&1 == 1 {
		flat = &s.flatB
	}
	if cap(*flat) < int(total) {
		*flat = make([]Incoming, total+total/4)
	}
	dst := (*flat)[:total]
	for i := range cnt {
		e.next[lo+i] = dst[s.off[i]:s.off[i+1]:s.off[i+1]]
		cnt[i] = s.off[i] // pass-2 write cursor
	}

	// Pass 2: place the delivered packets at their offsets, in the same
	// (sender ID, send index) order pass 1 counted them.
	if total == 0 {
		return
	}
	for v := 0; v < e.n; v++ {
		out := e.senders[v].out
		for i := range out {
			to := int(out[i].to)
			if to < lo || to >= hi || e.done[to] {
				continue
			}
			idx := to - lo
			dst[cnt[idx]] = Incoming{From: int32(v), Idx: out[i].idx, P: out[i].p}
			cnt[idx]++
		}
	}
}
