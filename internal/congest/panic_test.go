package congest_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"arbods/internal/congest"
	"arbods/internal/faultinject"
	"arbods/internal/gen"
)

// panicProc behaves like echoProc but panics inside Step once round
// reaches panicRound on any node with ID ≥ panicFrom. Several nodes
// panicking in the same round exercises the lowest-node-wins rule across
// worker layouts.
type panicProc struct {
	echo       echoProc
	panicRound int
	panicFrom  int
}

func (p *panicProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if round == p.panicRound && p.echo.ni.ID >= p.panicFrom {
		panic("boom")
	}
	return p.echo.Step(round, in, s)
}

func (p *panicProc) Output() int64 { return p.echo.Output() }

// TestProcPanicIsolated: a Step panic surfaces as *ProcPanicError with the
// exact round and the lowest panicking node, for any worker count; the
// Runner is poisoned but a subsequent run on it is still byte-identical to
// a fresh-Runner run (bind resets everything — quarantine is a pool
// policy, not a correctness requirement).
func TestProcPanicIsolated(t *testing.T) {
	g := gen.ErdosRenyi(500, 0.01, 3).G
	want := runEcho(t, g)
	for _, workers := range []int{1, 4} {
		r := congest.NewRunner()
		_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
			return &panicProc{echo: echoProc{ni: ni, rounds: 3}, panicRound: 2, panicFrom: 123}
		}, congest.WithRunner(r), congest.WithWorkers(workers))
		if err == nil {
			t.Fatalf("workers=%d: panicking proc did not fail the run", workers)
		}
		if !errors.Is(err, congest.ErrProcPanic) {
			t.Fatalf("workers=%d: err %v does not match ErrProcPanic", workers, err)
		}
		var pe *congest.ProcPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err %T is not *ProcPanicError", workers, err)
		}
		if pe.Round != 2 || pe.Node != 123 {
			t.Fatalf("workers=%d: got (round=%d, node=%d), want (2, 123)", workers, pe.Round, pe.Node)
		}
		if pe.Value != "boom" {
			t.Fatalf("workers=%d: panic value %v, want boom", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if !r.Poisoned() {
			t.Fatalf("workers=%d: Runner not poisoned after proc panic", workers)
		}
		// Direct reuse stays correct: the next bind rebuilds all run state.
		if got := runEcho(t, g, congest.WithRunner(r), congest.WithWorkers(workers)); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: post-panic reuse diverges:\nwant %+v\n got %+v", workers, want, got)
		}
		r.Close()
	}
}

// TestPanicInFactory: a panicking constructor fails the run before round 0
// (Round = -1) and still reports the node being constructed.
func TestPanicInFactory(t *testing.T) {
	g := gen.Cycle(100).G
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		if ni.ID == 7 {
			panic("bad constructor")
		}
		return &echoProc{ni: ni, rounds: 1}
	})
	var pe *congest.ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v is not *ProcPanicError", err)
	}
	if pe.Round != -1 || pe.Node != 7 {
		t.Fatalf("got (round=%d, node=%d), want (-1, 7)", pe.Round, pe.Node)
	}
}

// outputPanicProc finishes normally but panics when its output is
// collected.
type outputPanicProc struct{ echoProc }

func (p *outputPanicProc) Output() int64 { panic("bad output") }

// TestPanicInOutput: a panic during output collection (after the round
// loop) is recovered with Round = -1 and the collecting node's ID.
func TestPanicInOutput(t *testing.T) {
	g := gen.Cycle(100).G
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		if ni.ID == 42 {
			return &outputPanicProc{echoProc{ni: ni, rounds: 1}}
		}
		return &echoProc{ni: ni, rounds: 1}
	})
	var pe *congest.ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v is not *ProcPanicError", err)
	}
	if pe.Round != -1 || pe.Node != 42 {
		t.Fatalf("got (round=%d, node=%d), want (-1, 42)", pe.Round, pe.Node)
	}
}

// TestRunnerPoolReplacesPoisoned: Put swaps a poisoned Runner for a fresh
// one, the swap is counted, and the replacement serves a byte-identical
// run.
func TestRunnerPoolReplacesPoisoned(t *testing.T) {
	g := gen.Grid(20, 25).G
	want := runEcho(t, g)
	p := congest.NewRunnerPool(1)
	defer p.Close()

	r := p.Get()
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &panicProc{echo: echoProc{ni: ni, rounds: 3}, panicRound: 1, panicFrom: 0}
	}, congest.WithRunner(r), congest.WithWorkers(p.Workers()))
	if !errors.Is(err, congest.ErrProcPanic) {
		t.Fatalf("want ErrProcPanic, got %v", err)
	}
	p.Put(r)
	if got := p.Replaced(); got != 1 {
		t.Fatalf("Replaced() = %d, want 1", got)
	}

	fresh := p.Get()
	if fresh == r {
		t.Fatal("pool returned the poisoned Runner")
	}
	if fresh.Poisoned() {
		t.Fatal("replacement Runner is poisoned")
	}
	got := runEcho(t, g, congest.WithRunner(fresh), congest.WithWorkers(p.Workers()))
	p.Put(fresh)
	if p.Replaced() != 1 {
		t.Fatalf("clean Put incremented Replaced to %d", p.Replaced())
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replacement Runner run diverges:\nwant %+v\n got %+v", want, got)
	}
}

// TestFaultInjectionStep: the congest.step seam converts an armed fault
// into the matching failure mode — an error fails the round it fires in, a
// panic is recovered on the engine contract (Node = -1), and a delay just
// slows the round down.
func TestFaultInjectionStep(t *testing.T) {
	g := gen.ErdosRenyi(200, 0.02, 5).G

	reg := faultinject.New(1)
	reg.Arm("congest.step", faultinject.Fault{Round: 2, Err: faultinject.ErrInjected})
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 5}
	}, congest.WithFaultInjection(reg))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}

	reg = faultinject.New(1)
	reg.Arm("congest.step", faultinject.Fault{Round: 3, Panic: "injected"})
	_, err = congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 5}
	}, congest.WithFaultInjection(reg), congest.WithWorkers(4))
	var pe *congest.ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v is not *ProcPanicError", err)
	}
	if pe.Round != 3 || pe.Node != -1 {
		t.Fatalf("got (round=%d, node=%d), want (3, -1)", pe.Round, pe.Node)
	}

	reg = faultinject.New(1)
	reg.Arm("congest.step", faultinject.Fault{Round: 1, Delay: time.Millisecond})
	want := runEcho(t, g)
	got := runEcho(t, g, congest.WithFaultInjection(reg))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("a delay-only fault changed the transcript")
	}
	if reg.Hits("congest.step") == 0 {
		t.Fatal("seam never fired")
	}
}
