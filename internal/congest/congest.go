// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing on top of a graph from internal/graph.
//
// The model (paper, Section 2): the communication network is the input
// graph; nodes exchange messages over edges in synchronous rounds; in
// CONGEST every message is restricted to O(log n) bits; initially a node
// knows only its ID, its weight, and its neighbor list (plus the globally
// known parameters n, Δ, α where the algorithm assumes them); at the end
// every node knows its own output.
//
// The simulator enforces the model rather than assuming it:
//
//   - messages may only be sent to neighbors,
//   - per directed edge and per round, the total size of all messages is
//     accounted in bits and checked against the bandwidth budget
//     (Strict mode errors, Audit mode records, LOCAL mode lifts the limit),
//   - messages sent in round r are delivered at the start of round r+1,
//   - randomness comes from per-node streams seeded by (runSeed, nodeID),
//     so the sequential engine and the parallel (goroutine-pool) engine
//     produce bit-identical transcripts.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// Message is anything a node can send over an edge. Bits must return the
// encoded size in bits; the engine uses it for bandwidth accounting.
type Message interface {
	Bits() int
}

// Incoming is a received message tagged with its sender.
type Incoming struct {
	From int
	Msg  Message
}

// NodeInfo is the local knowledge a node starts with.
type NodeInfo struct {
	// ID is the node's identifier in [0, N).
	ID int
	// Neighbors is the sorted neighbor list. Read-only view: procs must not
	// modify it.
	Neighbors []int32
	// Weight is the node's weight.
	Weight int64
	// N is the number of nodes in the network (globally known).
	N int
	// MaxDegree is Δ if the algorithm assumes it known, else 0.
	MaxDegree int
	// Arboricity is (an upper bound on) α if assumed known, else 0.
	Arboricity int
	// Rand is the node's private random stream.
	Rand *rng.Stream
}

// Degree returns the node's degree.
func (ni *NodeInfo) Degree() int { return len(ni.Neighbors) }

// Proc is the per-node state machine of a distributed algorithm. Step is
// called once per round with the messages delivered this round; it sends
// messages for the next round through s and returns true when the node has
// terminated locally (output fixed, no further messages will be sent, and no
// further messages need to be received).
//
// Once Step returns true the engine stops scheduling the node; messages that
// still arrive are counted and dropped. Output may be called only after the
// run completes.
type Proc[O any] interface {
	Step(round int, in []Incoming, s *Sender) (done bool)
	Output() O
}

// Factory builds the per-node proc. It is called once per node before round 0.
type Factory[O any] func(ni NodeInfo) Proc[O]

// Mode selects the communication model.
type Mode int

const (
	// Congest enforces the bandwidth budget strictly: a violation aborts the
	// run with a *BandwidthError.
	Congest Mode = iota + 1
	// CongestAudit records violations in the result but lets the run finish.
	CongestAudit
	// Local has unbounded messages (the LOCAL model); bits are still counted.
	Local
)

// DefaultBandwidth is the default CONGEST budget in bits for an n-node
// network: 32·⌈log₂(max(n,2))⌉, a concrete instantiation of the O(log n)
// bound that fits a small constant number of the library's messages.
func DefaultBandwidth(n int) int {
	if n < 2 {
		n = 2
	}
	return 32 * bits.Len(uint(n-1))
}

type config struct {
	mode       Mode
	bandwidth  int // 0 = DefaultBandwidth(n)
	maxRounds  int
	workers    int
	seed       uint64
	maxDegree  bool // expose Δ in NodeInfo
	arboricity int  // expose α in NodeInfo when > 0
	roundStats bool
	msgStats   bool
}

// Option configures a run.
type Option interface{ apply(*config) }

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithMode selects Congest (default), CongestAudit, or Local.
func WithMode(m Mode) Option { return optionFunc(func(c *config) { c.mode = m }) }

// WithBandwidth overrides the per-edge per-round bit budget.
func WithBandwidth(b int) Option { return optionFunc(func(c *config) { c.bandwidth = b }) }

// WithMaxRounds bounds the number of rounds (default 1_000_000). Exceeding
// it is an error: every algorithm in the library has a known round bound, so
// hitting the cap means a bug.
func WithMaxRounds(r int) Option { return optionFunc(func(c *config) { c.maxRounds = r }) }

// WithWorkers sets the number of goroutines stepping nodes (default
// GOMAXPROCS; 1 selects the sequential engine). Results are identical for
// any worker count.
func WithWorkers(w int) Option { return optionFunc(func(c *config) { c.workers = w }) }

// WithSeed sets the run seed for the per-node random streams.
func WithSeed(seed uint64) Option { return optionFunc(func(c *config) { c.seed = seed }) }

// WithKnownMaxDegree exposes Δ to the nodes via NodeInfo (the paper's
// default assumption; Remark 4.4 drops it).
func WithKnownMaxDegree() Option { return optionFunc(func(c *config) { c.maxDegree = true }) }

// WithKnownArboricity exposes the given arboricity bound to the nodes (the
// paper's default assumption; Remark 4.5 drops it).
func WithKnownArboricity(alpha int) Option {
	return optionFunc(func(c *config) { c.arboricity = alpha })
}

// WithRoundStats records per-round message/bit statistics in the result.
func WithRoundStats() Option { return optionFunc(func(c *config) { c.roundStats = true }) }

// WithMessageStats records per-message-type counts and bit volumes in the
// result (Result.MessageStats). Costs one type switch per message.
func WithMessageStats() Option { return optionFunc(func(c *config) { c.msgStats = true }) }

// RoundStat is the traffic of one round.
type RoundStat struct {
	Round       int
	Messages    int64
	Bits        int64
	ActiveNodes int
}

// Result is the outcome of a run.
type Result[O any] struct {
	// Outputs holds each node's output, indexed by node ID.
	Outputs []O
	// Rounds is the number of rounds executed (a round with no active nodes
	// and no in-flight messages is not counted).
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the total message volume in bits.
	TotalBits int64
	// MaxEdgeBits is the largest per-directed-edge per-round bit volume seen.
	MaxEdgeBits int
	// Bandwidth is the budget that applied (0 in Local mode).
	Bandwidth int
	// BandwidthViolations counts edge-rounds above budget (CongestAudit).
	BandwidthViolations int64
	// DroppedMessages counts messages sent to locally-terminated nodes.
	DroppedMessages int64
	// RoundStats is filled when WithRoundStats is set.
	RoundStats []RoundStat
	// MessageStats is filled when WithMessageStats is set: per message type,
	// how many were sent and their total bit volume.
	MessageStats map[string]MessageStat
}

// MessageStat aggregates traffic of one message type.
type MessageStat struct {
	Count int64
	Bits  int64
}

// BandwidthError reports a CONGEST bandwidth violation in Strict mode.
type BandwidthError struct {
	Round    int
	From, To int
	Bits     int
	Budget   int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("congest: round %d: edge %d→%d carries %d bits > budget %d",
		e.Round, e.From, e.To, e.Bits, e.Budget)
}

// Sender collects a node's outgoing messages for the current round.
type Sender struct {
	owner     int
	neighbors []int32
	out       []Incoming // From is reused to store the *destination* until routing
	err       error
}

// Send sends m to neighbor `to` (delivered next round). Sending to a
// non-neighbor records an error that aborts the run.
func (s *Sender) Send(to int, m Message) {
	if s.err != nil {
		return
	}
	if !s.isNeighbor(to) {
		s.err = fmt.Errorf("congest: node %d sent to non-neighbor %d", s.owner, to)
		return
	}
	s.out = append(s.out, Incoming{From: to, Msg: m})
}

// Broadcast sends m to every neighbor.
func (s *Sender) Broadcast(m Message) {
	if s.err != nil {
		return
	}
	for _, u := range s.neighbors {
		s.out = append(s.out, Incoming{From: int(u), Msg: m})
	}
}

func (s *Sender) isNeighbor(v int) bool {
	i := sort.Search(len(s.neighbors), func(i int) bool { return s.neighbors[i] >= int32(v) })
	return i < len(s.neighbors) && s.neighbors[i] == int32(v)
}

// Run executes the algorithm built by factory on g and returns the outputs
// and transcript statistics. The transcript is bit-identical for every
// worker count: see engine.go for the phase structure that guarantees it.
func Run[O any](g *graph.Graph, factory Factory[O], opts ...Option) (*Result[O], error) {
	cfg := config{
		mode:      Congest,
		maxRounds: 1_000_000,
		workers:   runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	e := newEngine(g, factory, cfg)
	defer e.close()
	return e.run()
}

// ErrNotRun is returned by helpers that require a completed run.
var ErrNotRun = errors.New("congest: run has not completed")
