// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing on top of a graph from internal/graph.
//
// The model (paper, Section 2): the communication network is the input
// graph; nodes exchange messages over edges in synchronous rounds; in
// CONGEST every message is restricted to O(log n) bits; initially a node
// knows only its ID, its weight, and its neighbor list (plus the globally
// known parameters n, Δ, α where the algorithm assumes them); at the end
// every node knows its own output.
//
// The simulator enforces the model rather than assuming it:
//
//   - messages may only be sent to neighbors,
//   - per directed edge and per round, the total size of all messages is
//     accounted in bits and checked against the bandwidth budget
//     (Strict mode errors, Audit mode records, LOCAL mode lifts the limit),
//   - messages sent in round r are delivered at the start of round r+1,
//   - randomness comes from per-node streams seeded by (runSeed, nodeID),
//     so the sequential engine and the parallel (goroutine-pool) engine
//     produce bit-identical transcripts.
//
// # Wire format
//
// Messages travel as Packet values: a Tag (4-bit header in the bit
// accounting, see MsgTagBits) plus a payload packed into at most two
// uint64 words, with the CONGEST bit cost precomputed at pack time from
// the same BitsInt/BitsUint field accounting the legacy interface-based
// path used. Outboxes and inboxes are flat slices of these values, so
// routing a message is a value copy — no boxing, no allocation, no
// reflection, no dynamic size call. Each delivered Incoming additionally
// carries the sender's position in the receiver's sorted neighbor list,
// read from the graph's precomputed reverse-edge index
// (graph.ReverseIndex), which replaces the O(log deg) binary search
// receivers used to pay per message.
//
// # Run state
//
// All run-scoped state lives on a Runner: the worker pool, the sender
// tables and their single outbox backing slab, the flat per-shard inbox
// arrays (CSR-style: per-receiver offsets computed from each round's send
// counts, delivery is a value copy into one backing array), the per-node
// random streams (embedded by value in NodeInfo and seeded in place by
// rng.Init), and an Arena that procs carve their neighbor caches from. A
// plain Run builds a transient Runner and discards it; serving-style
// callers create one Runner, pass it to every run with WithRunner, and
// amortize all of the setup — repeated runs on the same graph allocate
// almost nothing beyond the procs themselves. Transcripts are identical
// either way.
//
// # Parallel execution
//
// A round executes in barrier-separated phases on the Runner's worker
// pool. With workers > 1 there are three: step (each worker steps its
// node range), drain (each worker empties its own senders' outboxes into
// worker-local staging, bucketed by receiver shard with run-length sender
// headers), and merge (each worker assembles its own receivers' inboxes
// from the staging buckets in sender-shard order). The merge order
// replays every receiver's traffic in exact (sender ID, send index)
// order, so transcripts are bit-identical at every worker count — and
// each worker touches O(m/workers) messages per round instead of
// scanning every outbox. Shard boundaries are cut by cumulative degree
// (node weight deg+1, one binary search per boundary on the graph's CSR
// offsets), so hubs don't serialize one shard; on regular graphs the cut
// equals the node-count split. WithWorkers(1) uses the sequential
// single-shard router with no staging copy; WithWorkers(0) picks
// adaptively by graph size. Per-shard structs carry trailing cache-line
// padding so adjacent shards' hot fields never false-share.
//
// # Result lifetime
//
// A plain run's Result is ordinary heap memory with no strings attached.
// Under WithRecycledResult the Result's Outputs and MessageStats instead
// live on Runner-owned slabs and are valid only until the same Runner's
// next run — the zero-allocation serving contract. Result.Detach is the
// escape hatch: it deep-copies the Result onto ordinary heap memory, so a
// caller (a server handler, a sweep that accumulates results) keeps the
// recycled hot path and detaches exactly the results that must outlive
// the next run. Detach is opt-in and costs one graph-sized copy; the hot
// path itself never pays for it.
//
// # Batch execution
//
// A Runner serves one run at a time, so sweeps of independent runs —
// seeds × parameters × graphs, the bench layer's whole workload — scale
// across cores through a RunnerPool: a bounded set of Runners with
// checkout/checkin, plus a Batch scheduler (Submit/Wait, or the RunBatch
// convenience) that keeps at most pool-size runs in flight. The pool
// splits GOMAXPROCS between run-level and engine-level parallelism
// (RunnerPool.Workers), and the whole construction is deterministic:
// jobs write results into their submission slots, Wait reports the
// lowest-slot error, and per-run transcripts never depend on worker
// count — so a batch sweep is bit-identical to the sequential loop it
// replaces, only faster in wall-clock terms.
package congest

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"

	"arbods/internal/faultinject"
	"arbods/internal/graph"
	"arbods/internal/rng"
)

// Incoming is a received packet tagged with its sender and with the
// sender's precomputed position in the receiver's sorted neighbor list
// (the reverse-edge index), so procs index their neighbor caches directly
// instead of binary-searching per message.
type Incoming struct {
	From int32 // sender ID
	Idx  int32 // position of From in the receiver's Neighbors slice
	P    Packet
}

// NodeInfo is the local knowledge a node starts with.
type NodeInfo struct {
	// ID is the node's identifier in [0, N).
	ID int
	// Neighbors is the sorted neighbor list. Read-only view: procs must not
	// modify it.
	Neighbors []int32
	// Weight is the node's weight.
	Weight int64
	// N is the number of nodes in the network (globally known).
	N int
	// MaxDegree is Δ if the algorithm assumes it known, else 0.
	MaxDegree int
	// Arboricity is (an upper bound on) α if assumed known, else 0.
	Arboricity int
	// Rand is the node's private random stream, embedded by value: the
	// proc that stores this NodeInfo owns the stream state in place, with
	// no per-node heap object behind a pointer. Because it is a value,
	// copying a NodeInfo forks the stream — a composite proc that embeds
	// several sub-procs each holding a NodeInfo copy must draw randomness
	// from exactly one of them, or the identically-seeded copies will emit
	// correlated sequences.
	Rand rng.Stream
	// Arena is the run-scoped slab allocator for per-node state (neighbor
	// caches and similar degree-sized scratch). Carve only while the
	// Factory runs; see Arena for the lifetime contract. Nil when the proc
	// is constructed outside an engine run — the carve methods then fall
	// back to plain make.
	Arena *Arena
}

// Degree returns the node's degree.
func (ni *NodeInfo) Degree() int { return len(ni.Neighbors) }

// Proc is the per-node state machine of a distributed algorithm. Step is
// called once per round with the messages delivered this round; it sends
// messages for the next round through s and returns true when the node has
// terminated locally (output fixed, no further messages will be sent, and no
// further messages need to be received).
//
// Once Step returns true the engine stops scheduling the node; messages that
// still arrive are counted and dropped. Output may be called only after the
// run completes.
type Proc[O any] interface {
	Step(round int, in []Incoming, s *Sender) (done bool)
	Output() O
}

// Factory builds the per-node proc. It is called once per node before round 0.
type Factory[O any] func(ni NodeInfo) Proc[O]

// Mode selects the communication model.
type Mode int

const (
	// Congest enforces the bandwidth budget strictly: a violation aborts the
	// run with a *BandwidthError.
	Congest Mode = iota + 1
	// CongestAudit records violations in the result but lets the run finish.
	CongestAudit
	// Local has unbounded messages (the LOCAL model); bits are still counted.
	Local
)

// DefaultBandwidth is the default CONGEST budget in bits for an n-node
// network: 32·⌈log₂(max(n,2))⌉, a concrete instantiation of the O(log n)
// bound that fits a small constant number of the library's messages.
func DefaultBandwidth(n int) int {
	if n < 2 {
		n = 2
	}
	return 32 * bits.Len(uint(n-1))
}

type config struct {
	mode       Mode
	bandwidth  int // 0 = DefaultBandwidth(n)
	maxRounds  int
	workers    int
	seed       uint64
	maxDegree  bool // expose Δ in NodeInfo
	arboricity int  // expose α in NodeInfo when > 0
	roundStats bool
	msgStats   bool
	roundObs   func(RoundStat)       // per-round progress hook (nil = none)
	runner     *Runner               // nil = transient per-run state
	recycle    bool                  // Result.Outputs/MessageStats on runner-owned memory
	ctx        context.Context       // run cancellation; nil = never canceled
	faults     *faultinject.Registry // nil = no fault injection (production)
}

// Option configures a run.
type Option interface{ apply(*config) }

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithMode selects Congest (default), CongestAudit, or Local.
func WithMode(m Mode) Option { return optionFunc(func(c *config) { c.mode = m }) }

// WithBandwidth overrides the per-edge per-round bit budget.
func WithBandwidth(b int) Option { return optionFunc(func(c *config) { c.bandwidth = b }) }

// WithMaxRounds bounds the number of rounds (default 1_000_000). Exceeding
// it is an error: every algorithm in the library has a known round bound, so
// hitting the cap means a bug.
func WithMaxRounds(r int) Option { return optionFunc(func(c *config) { c.maxRounds = r }) }

// WithWorkers sets the number of goroutines stepping and routing nodes
// (default GOMAXPROCS; 1 selects the sequential engine). WithWorkers(0)
// selects the adaptive heuristic: the sequential engine below a node-count
// crossover — small runs never pay the per-round dispatch barriers — and
// GOMAXPROCS workers above it. Results are bit-identical for every worker
// count, so the choice is purely about wall-clock time.
func WithWorkers(w int) Option { return optionFunc(func(c *config) { c.workers = w }) }

// WithSeed sets the run seed for the per-node random streams.
func WithSeed(seed uint64) Option { return optionFunc(func(c *config) { c.seed = seed }) }

// WithKnownMaxDegree exposes Δ to the nodes via NodeInfo (the paper's
// default assumption; Remark 4.4 drops it).
func WithKnownMaxDegree() Option { return optionFunc(func(c *config) { c.maxDegree = true }) }

// WithKnownArboricity exposes the given arboricity bound to the nodes (the
// paper's default assumption; Remark 4.5 drops it).
func WithKnownArboricity(alpha int) Option {
	return optionFunc(func(c *config) { c.arboricity = alpha })
}

// WithRoundStats records per-round message/bit statistics in the result.
func WithRoundStats() Option { return optionFunc(func(c *config) { c.roundStats = true }) }

// WithMessageStats records per-message-type counts and bit volumes in the
// result (Result.MessageStats), keyed by tag name. Costs two array adds
// per message.
func WithMessageStats() Option { return optionFunc(func(c *config) { c.msgStats = true }) }

// WithContext attaches ctx to the run so option-based callers — the mds
// algorithm wrappers, the server's solve path, anything that forwards
// ...Option — get cancellation without a signature change. RunContext is
// the canonical context-first spelling for direct engine runs; the two
// are interchangeable (RunContext is implemented with this option, and
// the later of the two wins when both appear).
//
// Cancellation contract: the engine checks ctx at the per-round barrier,
// so a canceled run returns ctx.Err() within one round of the
// cancellation — it never interrupts a round midway. The aborted run's
// Runner is immediately reusable (the next bind resets all per-run
// state) and there are no partial results: the error return is the whole
// outcome. A nil ctx means "never canceled".
func WithContext(ctx context.Context) Option {
	return optionFunc(func(c *config) { c.ctx = ctx })
}

// WithFaultInjection threads a faultinject.Registry into the run: the
// engine fires the "congest.step" failpoint once per round (on shard 0,
// which executes on a worker goroutine when the run is parallel), so
// chaos tests inject panics at a chosen round, slow rounds down, or fail
// them with an error — deterministically, with no build tags. A nil
// registry is the production state and costs one nil check per round.
func WithFaultInjection(reg *faultinject.Registry) Option {
	return optionFunc(func(c *config) { c.faults = reg })
}

// WithRoundObserver calls fn once per completed round with that round's
// traffic — the live-streaming form of WithRoundStats. fn runs on the
// run's coordinating goroutine between rounds, so the round loop is
// blocked while it executes: keep it cheap (hand the stat to a channel or
// an encoder, don't compute in it). The stat values are exactly the ones
// WithRoundStats would record, and the hook never changes the transcript.
func WithRoundObserver(fn func(RoundStat)) Option {
	return optionFunc(func(c *config) { c.roundObs = fn })
}

// recycledResult is a singleton so the hot serving loop pays no closure
// allocation for the option.
var recycledResult Option = optionFunc(func(c *config) { c.recycle = true })

// WithRecycledResult assembles Result.Outputs (and Result.MessageStats,
// when recorded) on memory owned by the run's Runner instead of freshly
// allocated memory: the last graph-sized per-run allocations disappear,
// so a warm serving loop runs in O(1) allocations total. The trade is the
// arena lifetime contract extended to the Result: Outputs and
// MessageStats are valid only until the same Runner's next run, so a
// caller that keeps results across runs must copy what it needs first.
// Values (not the backing memory) are bit-identical with and without this
// option. It has no effect worth paying for on transient runs — the
// recycled slabs die with the transient Runner.
func WithRecycledResult() Option { return recycledResult }

// RoundStat is the traffic of one round.
type RoundStat struct {
	Round       int
	Messages    int64
	Bits        int64
	ActiveNodes int
}

// Result is the outcome of a run.
type Result[O any] struct {
	// Outputs holds each node's output, indexed by node ID.
	Outputs []O
	// Rounds is the number of rounds executed (a round with no active nodes
	// and no in-flight messages is not counted).
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the total message volume in bits.
	TotalBits int64
	// MaxEdgeBits is the largest per-directed-edge per-round bit volume seen.
	MaxEdgeBits int
	// Bandwidth is the budget that applied (0 in Local mode).
	Bandwidth int
	// BandwidthViolations counts edge-rounds above budget (CongestAudit).
	BandwidthViolations int64
	// DroppedMessages counts messages sent to locally-terminated nodes.
	DroppedMessages int64
	// RoundStats is filled when WithRoundStats is set.
	RoundStats []RoundStat
	// MessageStats is filled when WithMessageStats is set: per message type,
	// how many were sent and their total bit volume.
	MessageStats map[string]MessageStat
}

// MessageStat aggregates traffic of one message type.
type MessageStat struct {
	Count int64
	Bits  int64
}

// Detach returns a copy of the Result whose Outputs, RoundStats, and
// MessageStats live on ordinary heap memory, severing every tie to
// Runner-owned slabs. It is the safe hand-off for results produced under
// WithRecycledResult: a detached Result stays valid after the Runner's
// next run (and after the Runner is closed), so a serving loop can run
// recycled for the zero-allocation hot path and Detach only the results
// that must outlive the loop iteration.
//
// The copy is deep with respect to the Result's own backing memory;
// output *elements* are copied by value, so an Output type that itself
// holds references into run-scoped memory (e.g. arena-carved slices)
// stays tied to the Runner. Every Output in this library's public surface
// is scalar-only, so detached reports are fully independent. Detaching a
// Result from a non-recycled run is harmless — just an ordinary copy.
func (r *Result[O]) Detach() *Result[O] {
	if r == nil {
		return nil
	}
	cp := *r
	if r.Outputs != nil {
		cp.Outputs = make([]O, len(r.Outputs))
		copy(cp.Outputs, r.Outputs)
	}
	if r.RoundStats != nil {
		cp.RoundStats = make([]RoundStat, len(r.RoundStats))
		copy(cp.RoundStats, r.RoundStats)
	}
	if r.MessageStats != nil {
		cp.MessageStats = make(map[string]MessageStat, len(r.MessageStats))
		for k, v := range r.MessageStats {
			cp.MessageStats[k] = v
		}
	}
	return &cp
}

// BandwidthError reports a CONGEST bandwidth violation in Strict mode.
type BandwidthError struct {
	Round    int
	From, To int
	Bits     int
	Budget   int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("congest: round %d: edge %d→%d carries %d bits > budget %d",
		e.Round, e.From, e.To, e.Bits, e.Budget)
}

// outPacket is one queued send: the destination, the sender's position in
// the destination's neighbor list (from the graph's reverse-edge index),
// and the packet itself. Outboxes are flat slices of these values; the
// routing shards stream through them cache-linearly with no pointer
// chasing and no per-message dynamic calls.
type outPacket struct {
	to  int32
	idx int32
	p   Packet
}

// Sender collects a node's outgoing packets for the current round.
type Sender struct {
	owner     int32
	neighbors []int32
	revIdx    []int32 // graph.ReverseIndex(owner): owner's position in each neighbor's list
	out       []outPacket
	err       error
}

// Send sends p to neighbor `to` (delivered next round). Sending to a
// non-neighbor or with an out-of-range tag records an error that aborts
// the run. The neighbor check is the same binary search as before; the
// position it finds also yields the reverse-edge index, so the receiver
// pays nothing.
func (s *Sender) Send(to int, p Packet) {
	if s.err != nil {
		return
	}
	j := s.neighborPos(to)
	if j < 0 {
		s.err = fmt.Errorf("congest: node %d sent to non-neighbor %d", s.owner, to)
		return
	}
	if err := s.validate(p); err != nil {
		return
	}
	s.out = append(s.out, outPacket{to: int32(to), idx: s.revIdx[j], p: p})
}

// Broadcast sends p to every neighbor. The reverse-edge indices come
// straight from the precomputed table — no searches at all.
func (s *Sender) Broadcast(p Packet) {
	if s.err != nil {
		return
	}
	if err := s.validate(p); err != nil {
		return
	}
	for j, u := range s.neighbors {
		s.out = append(s.out, outPacket{to: u, idx: s.revIdx[j], p: p})
	}
}

// validate rejects malformed packets: an out-of-range tag (would index
// past the stats arrays) or a bit cost below the tag header (a
// hand-assembled packet with an unset Bits field would otherwise
// silently undercount the bandwidth accounting the simulator enforces;
// under the legacy Message interface that mistake was impossible).
func (s *Sender) validate(p Packet) error {
	if p.Tag >= MaxTags {
		s.err = fmt.Errorf("congest: node %d sent tag %d ≥ MaxTags", s.owner, p.Tag)
		return s.err
	}
	if p.Bits < MsgTagBits {
		s.err = fmt.Errorf("congest: node %d sent a %d-bit packet, below the %d-bit tag header", s.owner, p.Bits, MsgTagBits)
		return s.err
	}
	return nil
}

// neighborPos returns v's position in the owner's sorted neighbor list,
// or -1 if v is not a neighbor.
func (s *Sender) neighborPos(v int) int {
	i := sort.Search(len(s.neighbors), func(i int) bool { return s.neighbors[i] >= int32(v) })
	if i < len(s.neighbors) && s.neighbors[i] == int32(v) {
		return i
	}
	return -1
}

// Run executes the algorithm built by factory on g and returns the outputs
// and transcript statistics. The transcript is bit-identical for every
// worker count (see engine.go for the phase structure that guarantees it)
// and independent of whether the run executes on transient state or on a
// reused Runner (WithRunner). Run is the context-free convenience over
// RunContext — it never cancels (unless a WithContext option says
// otherwise).
func Run[O any](g *graph.Graph, factory Factory[O], opts ...Option) (*Result[O], error) {
	cfg := config{
		mode:      Congest,
		maxRounds: 1_000_000,
		workers:   runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.workers < 0 {
		cfg.workers = 0 // negative collapses to the adaptive heuristic
	}
	r := cfg.runner
	transient := r == nil
	if transient {
		r = NewRunner()
	}
	e, err := newEngine(r, g, factory, cfg)
	if err != nil {
		// newEngine fails two ways with opposite ownership: a recovered
		// factory panic happens after bind took the Runner (poison and
		// release it), while a bind refusal means someone else is mid-run
		// on it — touching it here would release a run we don't own.
		if _, ok := err.(*ProcPanicError); ok {
			r.noteRunError(err)
			r.release(transient)
		} else if transient {
			r.Close() // never mid-run when fresh, but don't leak the pool
		}
		return nil, err
	}
	defer r.release(transient)
	res, err := e.run()
	r.noteRunError(err)
	return res, err
}

// RunContext is Run with a cancellation context: the engine checks ctx at
// the per-round barrier, so after ctx is canceled (deadline, client
// disconnect, caller Cancel) the run returns ctx.Err() within one round.
// A canceled run has no partial results, and its Runner (WithRunner) is
// immediately reusable — the next run on it is bit-identical to one on a
// fresh Runner. There is no Runner.RunContext method form: Go methods
// cannot be type-parameterized, so RunContext(ctx, …, WithRunner(r)) is
// that spelling.
func RunContext[O any](ctx context.Context, g *graph.Graph, factory Factory[O], opts ...Option) (*Result[O], error) {
	all := make([]Option, 0, len(opts)+1)
	all = append(all, WithContext(ctx))
	all = append(all, opts...)
	return Run(g, factory, all...)
}

// ErrNotRun is returned by helpers that require a completed run.
var ErrNotRun = errors.New("congest: run has not completed")
