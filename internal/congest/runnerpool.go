package congest

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by GetContext (and reported by Batch slots)
// when a checkout finds the RunnerPool closed. Get returns nil in the
// same situation.
var ErrPoolClosed = errors.New("congest: RunnerPool is closed")

// RunnerPool is a bounded, goroutine-safe set of reusable Runners. One
// Runner serves one run at a time (see Runner), so concurrent batch
// execution needs several of them: workers check a Runner out with Get
// (or the cancellable GetContext), execute any number of sequential runs
// on it, and check it back in with Put. The pool's size therefore bounds
// the number of simulator runs in flight at once, and each checked-in
// Runner keeps its warmed state — the graph-derived tables, flat inbox
// arrays, arenas, and worker goroutines survive the checkout/checkin
// cycle, so a sweep of hundreds of runs pays the setup cost at most size
// times.
//
// The pool also owns the machine's worker budget: Workers reports how many
// intra-run engine workers each checkout should use (GOMAXPROCS split
// evenly across the pool, never below 1), so for size ≤ GOMAXPROCS the
// pool does not oversubscribe the CPUs the way `size` runs at the default
// WithWorkers(GOMAXPROCS) would. An explicit size is honored even beyond
// GOMAXPROCS — useful for checkout-slot isolation — but buys CPU-bound
// runs nothing and keeps size warmed Runners resident, so CPU-bound
// sweeps should stay at or below the core count (cmd/mdsbench clamps its
// -parallel flag accordingly). Transcripts are identical for every worker
// count, so the split never changes results.
type RunnerPool struct {
	free      chan *Runner
	closed    chan struct{} // closed by Close once every Runner is back
	closeOnce sync.Once
	size      int
	workers   int
	replaced  atomic.Int64 // poisoned Runners discarded by Put
}

// NewRunnerPool builds a pool of `size` Runners (size ≤ 0 selects
// GOMAXPROCS, the largest count that can make progress simultaneously).
// All Runners are created up front — Runner state is lazy, so an unused
// pool slot costs almost nothing.
func NewRunnerPool(size int) *RunnerPool {
	procs := runtime.GOMAXPROCS(0)
	if size <= 0 {
		size = procs
	}
	p := &RunnerPool{
		free:    make(chan *Runner, size),
		closed:  make(chan struct{}),
		size:    size,
		workers: procs / size,
	}
	if p.workers < 1 {
		p.workers = 1
	}
	for i := 0; i < size; i++ {
		p.free <- NewRunner()
	}
	return p
}

// Size is the number of Runners the pool owns — the bound on concurrent
// runs.
func (p *RunnerPool) Size() int { return p.size }

// Workers is the per-checkout intra-run worker budget: GOMAXPROCS divided
// by the pool size (at least 1). Pass it to WithWorkers so run-level and
// engine-level parallelism share the machine instead of multiplying.
func (p *RunnerPool) Workers() int { return p.workers }

// GetContext checks a Runner out, waiting until one is free, ctx is
// canceled (ctx.Err()), or the pool is closed (ErrPoolClosed). A free
// Runner is preferred over an already-expired context, so a pool with
// capacity never rejects. Every successful GetContext must be balanced by
// a Put of the same Runner.
func (p *RunnerPool) GetContext(ctx context.Context) (*Runner, error) {
	select {
	case r := <-p.free:
		return r, nil
	default:
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case r := <-p.free:
		return r, nil
	case <-done:
		return nil, ctx.Err()
	case <-p.closed:
		return nil, ErrPoolClosed
	}
}

// Get checks a Runner out, blocking until one is free. Every Get must be
// balanced by a Put of the same Runner; the easiest way to get both the
// pairing and the worker budget right is to go through Batch or RunBatch.
// A Get that finds the pool closed — including a Get already waiting when
// Close drains the last Runner — returns nil instead of blocking forever.
func (p *RunnerPool) Get() *Runner {
	r, err := p.GetContext(context.Background())
	if err != nil {
		return nil
	}
	return r
}

// Put checks a Runner back in. The Runner keeps its warmed buffers; a
// failed or aborted run needs no special handling (the next bind resets
// all per-run state, which TestBatchAbortedJob pins down) — with one
// exception: a Runner poisoned by a recovered proc panic (ErrProcPanic)
// is not returned to circulation. Put closes it and checks in a fresh
// replacement instead, so the pool's capacity is preserved and the next
// checkout warms clean state on its first bind; Replaced counts the
// swaps. One panicking callback therefore costs its own run plus one
// Runner re-warm — never a pool slot and never the process.
func (p *RunnerPool) Put(r *Runner) {
	if r.Poisoned() {
		r.Close()
		p.replaced.Add(1)
		r = NewRunner()
	}
	p.free <- r
}

// Replaced reports how many poisoned Runners Put has discarded and
// replaced over the pool's lifetime.
func (p *RunnerPool) Replaced() int64 { return p.replaced.Load() }

// Close waits for every Runner to be checked back in, releases their
// worker pools, and then fails all pending and future checkouts
// (GetContext returns ErrPoolClosed, Get returns nil). A checkout that
// races the drain and wins still completes normally — Close keeps
// waiting for that Runner's Put. Close is idempotent.
func (p *RunnerPool) Close() {
	p.closeOnce.Do(func() {
		for i := 0; i < p.size; i++ {
			(<-p.free).Close()
		}
		close(p.closed)
	})
}
