package congest

import (
	"fmt"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// parallelStepMin is the node count below which the engine stays
// sequential regardless of the configured worker count: for tiny graphs
// the barrier cost dwarfs the per-node work.
const parallelStepMin = 64

// engine is the per-run, output-typed veneer over a Runner. The Runner
// (embedded) owns everything O-independent — senders, done flags, shard
// layout, flat inbox arrays, outbox slab, worker pool, arena — and persists
// across runs; the engine adds the run's config, the procs, and the result.
//
// The round loop alternates two phases with a barrier between:
//
//   - step: workers step disjoint node ranges (each node touches only
//     its own proc, inbox and sender, so shards race on nothing);
//   - route: workers own disjoint contiguous *receiver* ranges and drain
//     every sender's outbox for their range, so every inbox is written
//     by exactly one worker and — because senders are drained in ID
//     order and outboxes preserve send order — ends up ordered by
//     (sender ID, send index), exactly the sequential engine's order.
//
// All scratch (outbox slab, flat inbox arrays, edge-bit accounting, worker
// goroutines) lives on the Runner and is reused across rounds and runs.
type engine[O any] struct {
	*Runner
	cfg    config
	budget int
	round  int

	// ctxDone is cfg.ctx.Done(), captured once: nil for a context-free
	// run (or context.Background()), so the per-round cancellation check
	// costs a single nil comparison unless a real context is attached.
	ctxDone <-chan struct{}

	procs []Proc[O]
	res   *Result[O]
}

// runShard implements phaseRunner: the pool's workers call back into the
// engine with (phase, shard) pairs, so dispatching a phase allocates
// nothing — no per-run method values, no per-round closures.
func (e *engine[O]) runShard(ph phase, w int) {
	switch ph {
	case phaseStep:
		e.stepRange(w)
	case phaseDrain:
		e.drainRange(w)
	case phaseMerge:
		e.mergeRange(w)
	}
}

func newEngine[O any](r *Runner, g *graph.Graph, factory Factory[O], cfg config) (*engine[O], error) {
	if err := r.bind(g, cfg); err != nil {
		return nil, err
	}
	n := g.N()
	e := &engine[O]{Runner: r, cfg: cfg}
	if cfg.ctx != nil {
		e.ctxDone = cfg.ctx.Done()
	}
	if cfg.mode != Local {
		e.budget = cfg.bandwidth
		if e.budget == 0 {
			e.budget = DefaultBandwidth(n)
		}
	}

	// The proc slice never escapes the run, so it always comes from the
	// Runner's cached slab when the output type matches: a warm serving
	// loop rebuilds the procs in place instead of allocating n interface
	// slots per run. The clear drops references to the previous run's
	// procs beyond this run's n, so a shrinking rebind cannot leak them.
	if slab, ok := r.procSlab.([]Proc[O]); ok && cap(slab) >= n {
		slab = slab[:cap(slab)]
		clear(slab[n:]) // [0, n) is rebuilt by the factory loop below
		e.procs = slab[:n]
	} else {
		e.procs = make([]Proc[O], n)
		r.procSlab = e.procs
	}
	// The factory is user code running before round 0 on the coordinating
	// goroutine; a panic there is recovered like a mid-run Step panic
	// (Round = -1) so a faulty constructor fails this run, not the process.
	var perr *ProcPanicError
	func() {
		cur := -1
		defer func() {
			if v := recover(); v != nil {
				perr = newProcPanic(-1, cur, v)
			}
		}()
		for v := 0; v < n; v++ {
			cur = v
			ni := NodeInfo{
				ID:        v,
				Neighbors: g.Neighbors(v),
				Weight:    g.Weight(v),
				N:         n,
				Rand:      rng.Init(cfg.seed, v),
				Arena:     &r.arena,
			}
			if cfg.maxDegree {
				ni.MaxDegree = g.MaxDegree()
			}
			if cfg.arboricity > 0 {
				ni.Arboricity = cfg.arboricity
			}
			e.procs[v] = factory(ni)
		}
	}()
	if perr != nil {
		return nil, perr
	}

	e.res = &Result[O]{Bandwidth: e.budget}
	return e, nil
}

// stepPhase steps every shard (inline when sequential).
func (e *engine[O]) stepPhase() {
	if len(e.steps) == 1 {
		e.stepRange(0)
		return
	}
	e.pool.run(e, phaseStep, len(e.steps))
}

// routePhase routes the round's outboxes into the next round's inboxes.
// Sequential runs take the single-shard direct path (two passes over the
// outboxes, no staging copy). Parallel runs split routing at a barrier:
// drain (workers own disjoint *sender* ranges, staging packets into
// worker-local buckets keyed by receiver shard) and merge (workers own
// disjoint *receiver* ranges, replaying the buckets in sender-shard order).
// Each phase's worker touches only its own shard's memory, so total
// routing work is O(m) split across workers — the previous single-phase
// router had every worker scanning every outbox, O(m) *per worker*.
// A drain-phase panic (engine fault or injected) aborts before the merge
// reads the half-built staging.
func (e *engine[O]) routePhase() *ProcPanicError {
	if len(e.steps) == 1 {
		e.routeRange(0)
		return nil
	}
	e.pool.run(e, phaseDrain, len(e.drains))
	for w := range e.drains {
		if p := e.drains[w].pan; p != nil {
			return p // shards checked in order: deterministic winner
		}
	}
	e.pool.run(e, phaseMerge, len(e.routes))
	return nil
}

func (e *engine[O]) run() (*Result[O], error) {
	activeCount := e.n
	for round := 0; ; round++ {
		if activeCount == 0 {
			break
		}
		if round >= e.cfg.maxRounds {
			return nil, fmt.Errorf("congest: exceeded max rounds (%d) with %d active nodes", e.cfg.maxRounds, activeCount)
		}
		// The per-round barrier is the cancellation point: a canceled
		// context aborts here, before the next round's step phase, so the
		// run returns ctx.Err() within one round of the cancellation and
		// never tears a round apart mid-phase. The Runner's next bind
		// resets all per-run state, exactly as for the other abort paths
		// (Sender errors, bandwidth violations, the round cap above).
		if e.ctxDone != nil {
			select {
			case <-e.ctxDone:
				return nil, e.cfg.ctx.Err()
			default:
			}
		}
		e.round = round

		e.stepPhase()
		activeCount = 0
		var pan *ProcPanicError
		for w := range e.steps {
			s := &e.steps[w]
			// Panics take precedence over Sender errors, lowest node first:
			// shards keep stepping past a Sender error but stop at a panic,
			// so only this ordering is invariant across worker layouts (see
			// stepShard.pan).
			if s.pan != nil && (pan == nil || s.pan.Node < pan.Node) {
				pan = s.pan
			}
			activeCount += s.active
		}
		if pan != nil {
			return nil, pan
		}
		for w := range e.steps {
			s := &e.steps[w]
			if s.err != nil {
				// Shards cover ascending node ranges and each records its
				// lowest-ID error, so the first one wins deterministically.
				return nil, s.err
			}
		}

		if p := e.routePhase(); p != nil {
			return nil, p
		}
		var roundMsgs, roundBits, inflight int64
		var rerr *BandwidthError
		for w := range e.routes {
			if s := &e.routes[w]; s.pan != nil {
				return nil, s.pan // engine-internal panic while routing; shards checked in order
			}
		}
		// Message/bit totals live on the drain shards when the parallel
		// router ran and on the route shards when the sequential one did;
		// the unused side is zero, so summing both is mode-free.
		for w := range e.drains {
			d := &e.drains[w]
			roundMsgs += d.msgs
			roundBits += d.bits
		}
		for w := range e.routes {
			s := &e.routes[w]
			roundMsgs += s.msgs
			roundBits += s.bits
			inflight += s.inflight
			if s.err != nil && (rerr == nil || s.err.From < rerr.From ||
				(s.err.From == rerr.From && s.err.To < rerr.To)) {
				rerr = s.err
			}
		}
		if rerr != nil {
			return nil, rerr
		}

		e.res.Messages += roundMsgs
		e.res.TotalBits += roundBits
		if e.cfg.roundStats {
			e.res.RoundStats = append(e.res.RoundStats, RoundStat{
				Round: round, Messages: roundMsgs, Bits: roundBits, ActiveNodes: activeCount,
			})
		}
		if e.cfg.roundObs != nil {
			e.cfg.roundObs(RoundStat{
				Round: round, Messages: roundMsgs, Bits: roundBits, ActiveNodes: activeCount,
			})
		}
		e.res.Rounds = round + 1

		// Swap inbox views; the route shards alternate between two flat
		// backing arrays by round parity, so the views just published in
		// next stay valid while the other array is overwritten.
		e.inbox, e.next = e.next, e.inbox

		if activeCount == 0 && inflight > 0 {
			// Messages to terminated nodes only; they were dropped above.
			break
		}
	}
	return e.finish()
}

// mergeTagStats folds one shard's per-tag accumulators into the result,
// lazily creating the MessageStats map (Runner-owned under recycle).
func (e *engine[O]) mergeTagStats(stats *[MaxTags]MessageStat) {
	res := e.res
	for t := range stats {
		st := stats[t]
		if st.Count == 0 {
			continue
		}
		if res.MessageStats == nil {
			if e.cfg.recycle {
				// Runner-owned map, cleared at reuse time rather than
				// per run: the previous Result's view stays intact
				// until the Runner actually runs again.
				if e.Runner.msgStats == nil {
					e.Runner.msgStats = make(map[string]MessageStat, MaxTags)
				}
				clear(e.Runner.msgStats)
				res.MessageStats = e.Runner.msgStats
			} else {
				res.MessageStats = make(map[string]MessageStat, 4)
			}
		}
		// One name lookup per *tag* per shard; the per-message work in
		// the routers is two array adds.
		name := Tag(t).String()
		agg := res.MessageStats[name]
		agg.Count += st.Count
		agg.Bits += st.Bits
		res.MessageStats[name] = agg
	}
}

// finish merges the per-run shard accumulators and collects outputs. The
// Output calls are user code, recovered on the same contract as Step
// panics (Round = -1: the round loop is over).
func (e *engine[O]) finish() (*Result[O], error) {
	res := e.res
	for w := range e.routes {
		s := &e.routes[w]
		res.DroppedMessages += s.dropped
		res.BandwidthViolations += s.violations
		if s.maxEdgeBits > res.MaxEdgeBits {
			res.MaxEdgeBits = s.maxEdgeBits
		}
		e.mergeTagStats(&s.stats)
	}
	// Tag statistics are recorded where the per-packet accounting ran: on
	// the route shards under the sequential router, on the drain shards
	// under the parallel one. The unused side is all zeros.
	for w := range e.drains {
		e.mergeTagStats(&e.drains[w].stats)
	}
	if slab, ok := e.Runner.outSlabO.([]O); e.cfg.recycle && ok && cap(slab) >= e.n {
		slab = slab[:cap(slab)]
		clear(slab[e.n:]) // [0, n) is overwritten by the Output loop below
		res.Outputs = slab[:e.n]
	} else {
		res.Outputs = make([]O, e.n)
		if e.cfg.recycle {
			e.Runner.outSlabO = res.Outputs
		}
	}
	var perr *ProcPanicError
	func() {
		cur := -1
		defer func() {
			if v := recover(); v != nil {
				perr = newProcPanic(-1, cur, v)
			}
		}()
		for v := range e.procs {
			cur = v
			res.Outputs[v] = e.procs[v].Output()
		}
	}()
	if perr != nil {
		return nil, perr
	}
	return res, nil
}
