package congest

import (
	"fmt"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// parallelStepMin is the node count below which the engine stays
// sequential regardless of the configured worker count: for tiny graphs
// the barrier cost dwarfs the per-node work.
const parallelStepMin = 64

// engine holds one run's state, shared by the sequential and parallel
// paths. The round loop alternates two phases with a barrier between:
//
//   - step: workers step disjoint node ranges (each node touches only
//     its own proc, inbox and sender, so shards race on nothing);
//   - route: workers own disjoint contiguous *receiver* ranges and drain
//     every sender's outbox for their range, so every inbox is written
//     by exactly one worker and — because senders are drained in ID
//     order and outboxes preserve send order — ends up ordered by
//     (sender ID, send index), exactly the sequential engine's order.
//
// All scratch (outboxes, inboxes, edge-bit accounting, worker
// goroutines) is allocated once per run and reused across rounds.
type engine[O any] struct {
	cfg    config
	budget int
	n      int
	round  int

	procs   []Proc[O]
	senders []Sender
	done    []bool
	inbox   [][]Incoming
	next    [][]Incoming

	res *Result[O]

	pool      *pool // nil when running sequentially
	steps     []stepShard
	routes    []routeShard
	stepTask  func(w int)
	routeTask func(w int)
}

func newEngine[O any](g *graph.Graph, factory Factory[O], cfg config) *engine[O] {
	n := g.N()
	e := &engine[O]{cfg: cfg, n: n}
	if cfg.mode != Local {
		e.budget = cfg.bandwidth
		if e.budget == 0 {
			e.budget = DefaultBandwidth(n)
		}
	}

	e.procs = make([]Proc[O], n)
	e.senders = make([]Sender, n)
	for v := 0; v < n; v++ {
		ni := NodeInfo{
			ID:        v,
			Neighbors: g.Neighbors(v),
			Weight:    g.Weight(v),
			N:         n,
			Rand:      rng.ForNode(cfg.seed, v),
		}
		if cfg.maxDegree {
			ni.MaxDegree = g.MaxDegree()
		}
		if cfg.arboricity > 0 {
			ni.Arboricity = cfg.arboricity
		}
		e.procs[v] = factory(ni)
		e.senders[v] = Sender{owner: int32(v), neighbors: g.Neighbors(v), revIdx: g.ReverseIndex(v)}
	}

	e.res = &Result[O]{Bandwidth: e.budget}
	e.done = make([]bool, n)
	e.inbox = make([][]Incoming, n)
	e.next = make([][]Incoming, n)

	workers := cfg.workers
	if workers > n {
		workers = n
	}
	if n < parallelStepMin || workers < 1 {
		workers = 1
	}
	e.steps = make([]stepShard, workers)
	e.routes = make([]routeShard, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo > hi {
			lo = hi
		}
		e.steps[w] = stepShard{lo: lo, hi: hi}
		rs := &e.routes[w]
		rs.lo, rs.hi = lo, hi
		rs.edgeBits = make([]int64, hi-lo)
		rs.stamp = make([]uint64, hi-lo)
		rs.touched = make([]int32, hi-lo)
		rs.senderGen = 1 // stamp's zero value must mean "never touched"
	}
	if workers > 1 {
		e.pool = newPool(workers)
	}
	e.stepTask = e.stepRange
	e.routeTask = e.routeRange
	return e
}

// close releases the worker pool. The engine must be idle.
func (e *engine[O]) close() {
	if e.pool != nil {
		e.pool.close()
	}
}

// dispatch runs a phase task on every worker (inline when sequential).
func (e *engine[O]) dispatch(task func(w int)) {
	if e.pool == nil {
		task(0)
		return
	}
	e.pool.run(task)
}

func (e *engine[O]) run() (*Result[O], error) {
	activeCount := e.n
	for round := 0; ; round++ {
		if activeCount == 0 {
			break
		}
		if round >= e.cfg.maxRounds {
			return nil, fmt.Errorf("congest: exceeded max rounds (%d) with %d active nodes", e.cfg.maxRounds, activeCount)
		}
		e.round = round

		e.dispatch(e.stepTask)
		activeCount = 0
		for w := range e.steps {
			s := &e.steps[w]
			if s.err != nil {
				// Shards cover ascending node ranges and each records its
				// lowest-ID error, so the first one wins deterministically.
				return nil, s.err
			}
			activeCount += s.active
		}

		e.dispatch(e.routeTask)
		var roundMsgs, roundBits, inflight int64
		var rerr *BandwidthError
		for w := range e.routes {
			s := &e.routes[w]
			roundMsgs += s.msgs
			roundBits += s.bits
			inflight += s.inflight
			if s.err != nil && (rerr == nil || s.err.From < rerr.From ||
				(s.err.From == rerr.From && s.err.To < rerr.To)) {
				rerr = s.err
			}
		}
		if rerr != nil {
			return nil, rerr
		}

		e.res.Messages += roundMsgs
		e.res.TotalBits += roundBits
		if e.cfg.roundStats {
			e.res.RoundStats = append(e.res.RoundStats, RoundStat{
				Round: round, Messages: roundMsgs, Bits: roundBits, ActiveNodes: activeCount,
			})
		}
		e.res.Rounds = round + 1

		// Swap inboxes; route workers truncate their receivers' next-round
		// inboxes in place, so the backing arrays are reused across rounds.
		e.inbox, e.next = e.next, e.inbox

		if activeCount == 0 && inflight > 0 {
			// Messages to terminated nodes only; they were dropped above.
			break
		}
	}
	return e.finish(), nil
}

// finish merges the per-run shard accumulators and collects outputs.
func (e *engine[O]) finish() *Result[O] {
	res := e.res
	for w := range e.routes {
		s := &e.routes[w]
		res.DroppedMessages += s.dropped
		res.BandwidthViolations += s.violations
		if s.maxEdgeBits > res.MaxEdgeBits {
			res.MaxEdgeBits = s.maxEdgeBits
		}
		for t := range s.stats {
			st := s.stats[t]
			if st.Count == 0 {
				continue
			}
			if res.MessageStats == nil {
				res.MessageStats = make(map[string]MessageStat, 4)
			}
			// One name lookup per *tag* per shard; the per-message work in
			// routeRange is two array adds.
			name := Tag(t).String()
			agg := res.MessageStats[name]
			agg.Count += st.Count
			agg.Bits += st.Bits
			res.MessageStats[name] = agg
		}
	}
	res.Outputs = make([]O, e.n)
	for v := range e.procs {
		res.Outputs[v] = e.procs[v].Output()
	}
	return res
}
