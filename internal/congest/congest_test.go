package congest_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// Test tags live above the library tag space (still charged MsgTagBits,
// matching the legacy interface path).
const (
	tagPing  = congest.Tag(16)
	tagToken = congest.Tag(17)
)

// packPing builds a fixed-shape test packet carrying one int64.
func packPing(payload int64) congest.Packet {
	return congest.Packet{
		Tag:  tagPing,
		Bits: uint32(congest.MsgTagBits + congest.BitsInt(payload)),
		A:    uint64(payload),
	}
}

func pingPayload(p congest.Packet) int64 { return int64(p.A) }

// fatPacket claims an enormous size, to trigger bandwidth enforcement.
func fatPacket() congest.Packet {
	return congest.Packet{Tag: tagPing, Bits: 1 << 20}
}

// echoProc broadcasts its ID for a fixed number of rounds and records the
// sum of everything it hears. Output: the sum.
type echoProc struct {
	ni     congest.NodeInfo
	rounds int
	sum    int64
}

func (p *echoProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	for _, m := range in {
		if m.P.Tag == tagPing {
			p.sum += pingPayload(m.P)
		}
	}
	if round < p.rounds {
		s.Broadcast(packPing(int64(p.ni.ID)))
		return false
	}
	return true
}

func (p *echoProc) Output() int64 { return p.sum }

func TestEchoSums(t *testing.T) {
	g := gen.Cycle(10).G
	const rounds = 3
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: rounds}
	}
	res, err := congest.Run(g, factory)
	if err != nil {
		t.Fatal(err)
	}
	// Each node hears both cycle neighbors for `rounds` rounds.
	for v := 0; v < g.N(); v++ {
		left := (v + 9) % 10
		right := (v + 1) % 10
		want := int64(rounds) * int64(left+right)
		if res.Outputs[v] != want {
			t.Fatalf("node %d heard %d, want %d", v, res.Outputs[v], want)
		}
	}
	if res.Rounds != rounds+1 {
		t.Fatalf("rounds = %d, want %d", res.Rounds, rounds+1)
	}
	// 10 nodes × 2 neighbors × `rounds` broadcasts.
	if res.Messages != int64(10*2*rounds) {
		t.Fatalf("messages = %d", res.Messages)
	}
}

type sendOnceProc struct {
	target int
	fat    bool
	sent   bool
}

func (p *sendOnceProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if !p.sent {
		p.sent = true
		if p.fat {
			s.Send(p.target, fatPacket())
		} else {
			s.Send(p.target, packPing(0))
		}
		return false
	}
	return true
}

func (p *sendOnceProc) Output() struct{} { return struct{}{} }

func TestBandwidthEnforcement(t *testing.T) {
	g := gen.Path(2).G
	factory := func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &sendOnceProc{target: 1 - ni.ID, fat: ni.ID == 0}
	}
	_, err := congest.Run(g, factory)
	var be *congest.BandwidthError
	if !errors.As(err, &be) {
		t.Fatalf("want BandwidthError, got %v", err)
	}
	if be.From != 0 || be.To != 1 {
		t.Fatalf("violation attributed to %d→%d", be.From, be.To)
	}
	// Audit mode records instead of failing.
	res, err := congest.Run(g, factory, congest.WithMode(congest.CongestAudit))
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthViolations == 0 {
		t.Fatal("audit mode recorded no violations")
	}
	// LOCAL mode has no budget at all.
	res, err = congest.Run(g, factory, congest.WithMode(congest.Local))
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthViolations != 0 || res.Bandwidth != 0 {
		t.Fatal("local mode should not track violations")
	}
}

type rogueProc struct{ ni congest.NodeInfo }

func (p *rogueProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	// Node 0 tries to message non-neighbor node 2 on a path 0-1-2.
	if p.ni.ID == 0 {
		s.Send(2, packPing(0))
	}
	return true
}

func (p *rogueProc) Output() struct{} { return struct{}{} }

func TestNonNeighborRejected(t *testing.T) {
	g := gen.Path(3).G
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &rogueProc{ni: ni}
	})
	if err == nil {
		t.Fatal("expected error for non-neighbor send")
	}
}

type foreverProc struct{}

func (p *foreverProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool { return false }
func (p *foreverProc) Output() struct{}                                              { return struct{}{} }

func TestMaxRounds(t *testing.T) {
	g := gen.Path(2).G
	_, err := congest.Run(g, func(congest.NodeInfo) congest.Proc[struct{}] {
		return &foreverProc{}
	}, congest.WithMaxRounds(10))
	if err == nil {
		t.Fatal("expected max-rounds error")
	}
}

// randProc outputs a few random bits, to check seed plumbing and
// engine-parallelism determinism.
type randProc struct {
	ni  congest.NodeInfo
	out uint64
}

func (p *randProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	p.out = p.ni.Rand.Uint64()
	return true
}

func (p *randProc) Output() uint64 { return p.out }

func TestSeedDeterminism(t *testing.T) {
	g := gen.ForestUnion(64, 2, 3).G
	run := func(seed uint64, workers int) []uint64 {
		res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[uint64] {
			return &randProc{ni: ni}
		}, congest.WithSeed(seed), congest.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a := run(7, 1)
	b := run(7, 8)
	c := run(8, 1)
	diff := false
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("worker-count changed node %d's randomness", v)
		}
		if a[v] != c[v] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical randomness")
	}
}

func TestRoundStats(t *testing.T) {
	g := gen.Cycle(6).G
	res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 2}
	}, congest.WithRoundStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundStats) != res.Rounds {
		t.Fatalf("stats for %d rounds, ran %d", len(res.RoundStats), res.Rounds)
	}
	var total int64
	for _, st := range res.RoundStats {
		total += st.Messages
	}
	if total != res.Messages {
		t.Fatalf("per-round messages sum %d != total %d", total, res.Messages)
	}
}

func TestKnowledgeFlags(t *testing.T) {
	g := gen.Star(5).G
	factory := func(ni congest.NodeInfo) congest.Proc[know] {
		return &knowProc{k: know{n: ni.N, d: ni.MaxDegree, a: ni.Arboricity}}
	}
	res, err := congest.Run(g, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].d != 0 || res.Outputs[0].a != 0 {
		t.Fatal("Δ/α leaked without options")
	}
	res, err = congest.Run(g, factory, congest.WithKnownMaxDegree(), congest.WithKnownArboricity(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].d != 4 || res.Outputs[0].a != 1 || res.Outputs[0].n != 5 {
		t.Fatalf("knowledge flags wrong: %+v", res.Outputs[0])
	}
}

type know struct{ n, d, a int }

type knowProc struct{ k know }

func (p *knowProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool { return true }
func (p *knowProc) Output() know                                                  { return p.k }

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 || res.Rounds != 0 {
		t.Fatalf("empty graph ran %d rounds", res.Rounds)
	}
}

// doubleSendProc sends two messages over the same edge in one round; their
// bits must be summed against the budget (they share one B-bit slot).
type doubleSendProc struct {
	ni   congest.NodeInfo
	sent bool
}

func (p *doubleSendProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if p.ni.ID == 0 && !p.sent {
		p.sent = true
		s.Send(1, packPing(1))
		s.Send(1, packPing(2))
		return false
	}
	return true
}

func (p *doubleSendProc) Output() struct{} { return struct{}{} }

func TestMultiMessageEdgeAccounting(t *testing.T) {
	g := gen.Path(2).G
	factory := func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &doubleSendProc{ni: ni}
	}
	// Budget below the sum of the two messages but above each single one.
	one := int(packPing(1).Bits)
	res, err := congest.Run(g, factory, congest.WithBandwidth(one+1))
	if err == nil {
		t.Fatalf("two messages (%d+%d bits) fit a %d-bit edge slot: %+v",
			one, packPing(2).Bits, one+1, res)
	}
	// With a budget covering both, the run succeeds and MaxEdgeBits shows
	// the aggregated volume.
	res, err = congest.Run(g, factory, congest.WithBandwidth(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxEdgeBits <= one {
		t.Fatalf("MaxEdgeBits=%d does not reflect aggregation", res.MaxEdgeBits)
	}
}

func TestMessageStats(t *testing.T) {
	g := gen.Cycle(5).G
	res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 2}
	}, congest.WithMessageStats())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MessageStats) != 1 {
		t.Fatalf("stats: %+v", res.MessageStats)
	}
	var total int64
	for _, st := range res.MessageStats {
		total += st.Count
		if st.Bits <= 0 {
			t.Fatal("zero bits recorded")
		}
	}
	if total != res.Messages {
		t.Fatalf("per-type counts sum %d != %d", total, res.Messages)
	}
}

// TestNoGoroutineLeaks: the engine joins all its workers every round; a
// run must not leave goroutines behind.
func TestNoGoroutineLeaks(t *testing.T) {
	g := gen.ForestUnion(300, 2, 3).G
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
			return &echoProc{ni: ni, rounds: 3}
		}, congest.WithWorkers(8)); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d", before, after)
	}
}

func TestBitsHelpers(t *testing.T) {
	tests := []struct {
		x    uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {255, 8}, {256, 9},
	}
	for _, tt := range tests {
		if got := congest.BitsUint(tt.x); got != tt.want {
			t.Fatalf("BitsUint(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
	if congest.BitsInt(-5) != 1+congest.BitsUint(5) {
		t.Fatal("BitsInt sign accounting wrong")
	}
	if congest.DefaultBandwidth(1024) != 32*10 {
		t.Fatalf("DefaultBandwidth(1024) = %d", congest.DefaultBandwidth(1024))
	}
}

// badTagProc sends a packet whose tag is outside the tag space.
type badTagProc struct{ ni congest.NodeInfo }

func (p *badTagProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if p.ni.ID == 0 {
		s.Broadcast(congest.Packet{Tag: congest.MaxTags, Bits: congest.MsgTagBits})
	}
	return true
}

func (p *badTagProc) Output() struct{} { return struct{}{} }

func TestOutOfRangeTagRejected(t *testing.T) {
	g := gen.Path(2).G
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &badTagProc{ni: ni}
	})
	if err == nil {
		t.Fatal("expected error for tag ≥ MaxTags")
	}
}

// zeroBitsProc hand-assembles a packet without setting Bits; the engine
// must reject it rather than undercount the bandwidth accounting.
type zeroBitsProc struct{ ni congest.NodeInfo }

func (p *zeroBitsProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if p.ni.ID == 0 {
		s.Broadcast(congest.Packet{Tag: tagPing})
	}
	return true
}

func (p *zeroBitsProc) Output() struct{} { return struct{}{} }

func TestBelowTagHeaderBitsRejected(t *testing.T) {
	g := gen.Path(2).G
	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &zeroBitsProc{ni: ni}
	})
	if err == nil {
		t.Fatal("expected error for Bits < MsgTagBits")
	}
}

func TestTagNames(t *testing.T) {
	if congest.TagJoin.String() != "join" || congest.TagPacking.String() != "packing" {
		t.Fatalf("library tag names wrong: %v %v", congest.TagJoin, congest.TagPacking)
	}
	if congest.Tag(20).String() != "tag-20" {
		t.Fatalf("fallback tag name wrong: %v", congest.Tag(20))
	}
	p := congest.TagOnly(congest.TagDom)
	if p.Tag != congest.TagDom || p.Bits != congest.MsgTagBits || p.A != 0 || p.B != 0 {
		t.Fatalf("TagOnly malformed: %+v", p)
	}
}
