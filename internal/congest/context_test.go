package congest_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
)

// chattyProc broadcasts for a fixed number of rounds — a long enough run
// to cancel somewhere in the middle — and sums what it hears, so results
// are sensitive to every delivered message.
type chattyProc struct {
	ni     congest.NodeInfo
	rounds int
	sum    int64
}

func (p *chattyProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	for _, m := range in {
		p.sum += pingPayload(m.P)
	}
	if round < p.rounds {
		s.Broadcast(packPing(int64(p.ni.ID) + int64(round)))
		return false
	}
	return true
}

func (p *chattyProc) Output() int64 { return p.sum }

func chattyFactory(rounds int) congest.Factory[int64] {
	return func(ni congest.NodeInfo) congest.Proc[int64] {
		return &chattyProc{ni: ni, rounds: rounds}
	}
}

// TestRunContextCancelMidRun pins the cancellation contract: a context
// canceled mid-run aborts at the next per-round barrier (within one
// round, no partial results), and the aborted Runner is immediately
// reusable — its next run is bit-identical to one on a fresh Runner.
func TestRunContextCancelMidRun(t *testing.T) {
	g := gen.Cycle(96).G
	factory := chattyFactory(40)

	ref, err := congest.Run(g, factory, congest.WithSeed(1), congest.WithMessageStats())
	if err != nil {
		t.Fatal(err)
	}

	r := congest.NewRunner()
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lastRound := -1
	res, err := congest.RunContext(ctx, g, factory,
		congest.WithSeed(1), congest.WithRunner(r),
		congest.WithRoundObserver(func(rs congest.RoundStat) {
			lastRound = rs.Round
			if rs.Round == 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned partial results")
	}
	// The observer fires after each completed round; the cancel lands in
	// round 2's observer and the barrier check runs before round 3 steps,
	// so round 2 must be the last round that executed.
	if lastRound != 2 {
		t.Fatalf("last completed round %d, want 2 (abort within one round)", lastRound)
	}

	// The aborted Runner serves the next run bit-identically.
	got, err := congest.Run(g, factory,
		congest.WithSeed(1), congest.WithMessageStats(), congest.WithRunner(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("post-cancel run deviates from fresh-Runner reference:\n%+v\nvs\n%+v", ref, got)
	}
}

// TestRunContextPreCanceled: an already-dead context aborts before any
// round executes, through both spellings (RunContext and the WithContext
// option on plain Run).
func TestRunContextPreCanceled(t *testing.T) {
	g := gen.Cycle(8).G
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	rounds := 0
	obs := congest.WithRoundObserver(func(congest.RoundStat) { rounds++ })
	if _, err := congest.RunContext(ctx, g, chattyFactory(5), obs); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v", err)
	}
	if _, err := congest.Run(g, chattyFactory(5), congest.WithContext(ctx), obs); !errors.Is(err, context.Canceled) {
		t.Fatalf("WithContext err = %v", err)
	}
	if rounds != 0 {
		t.Fatalf("%d rounds executed under a pre-canceled context", rounds)
	}
}

// TestGetContextCancel: a checkout waiting on an exhausted pool is
// cancellable; a free Runner is preferred over an expired context.
func TestGetContextCancel(t *testing.T) {
	pool := congest.NewRunnerPool(1)
	defer pool.Close()

	held := pool.Get() // exhaust the pool
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pool.GetContext(ctx)
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting GetContext err = %v, want context.Canceled", err)
	}
	pool.Put(held)

	// With capacity available the same dead context still checks out.
	r, err := pool.GetContext(ctx)
	if err != nil || r == nil {
		t.Fatalf("GetContext with free capacity: (%v, %v)", r, err)
	}
	pool.Put(r)
}

// TestRunnerPoolClosedCheckout: checkouts fail fast on a closed pool
// instead of blocking forever, and Close is idempotent.
func TestRunnerPoolClosedCheckout(t *testing.T) {
	pool := congest.NewRunnerPool(2)
	pool.Close()
	if r := pool.Get(); r != nil {
		t.Fatal("Get on a closed pool returned a Runner")
	}
	if _, err := pool.GetContext(context.Background()); !errors.Is(err, congest.ErrPoolClosed) {
		t.Fatalf("GetContext err = %v, want ErrPoolClosed", err)
	}
	pool.Close() // must not panic
}

// TestRunnerPoolCloseUnblocksWaiter reproduces the pre-fix deadlock: a
// Get already waiting when Close drains the last Runner used to block
// forever. Now the waiter either wins the race for the returning Runner
// (and checks it back in) or fails fast with ErrPoolClosed.
func TestRunnerPoolCloseUnblocksWaiter(t *testing.T) {
	pool := congest.NewRunnerPool(1)
	held := pool.Get()

	type checkout struct {
		r   *congest.Runner
		err error
	}
	got := make(chan checkout, 1)
	go func() {
		r, err := pool.GetContext(context.Background())
		got <- checkout{r, err}
	}()

	closed := make(chan struct{})
	go func() {
		pool.Close()
		close(closed)
	}()
	pool.Put(held)

	c := <-got // deadlocks here without the closed-channel fix
	if c.err == nil {
		pool.Put(c.r) // waiter won the race; hand the Runner back so Close finishes
	} else if !errors.Is(c.err, congest.ErrPoolClosed) {
		t.Fatalf("waiter err = %v, want ErrPoolClosed or success", c.err)
	}
	<-closed
}

// TestBatchContextCancelsPendingSlots: once the batch context dies, jobs
// that have not checked a Runner out never start, their slots fail with
// ctx.Err(), and Wait reports it via the usual lowest-slot rule.
func TestBatchContextCancelsPendingSlots(t *testing.T) {
	pool := congest.NewRunnerPool(1)
	defer pool.Close()
	held := pool.Get() // starve the batch so no submitted job can start

	ctx, cancel := context.WithCancel(context.Background())
	b := pool.BatchContext(ctx)
	var ran [3]bool
	for i := range ran {
		b.Submit(func(r *congest.Runner, workers int) error {
			ran[i] = true
			return nil
		})
	}
	cancel()
	if err := b.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	for i, x := range ran {
		if x {
			t.Fatalf("job %d ran after cancellation", i)
		}
	}
	pool.Put(held)
}

// TestRunBatchContextSequential: the parallel=1 degenerate path checks
// the context between jobs.
func TestRunBatchContextSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count := 0
	err := congest.RunBatchContext(ctx, 1,
		func(r *congest.Runner, workers int) error {
			count++
			cancel()
			return nil
		},
		func(r *congest.Runner, workers int) error {
			count++
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count != 1 {
		t.Fatalf("%d jobs ran, want 1", count)
	}
}
