package congest_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// runEcho runs the echo workload and returns the full Result.
func runEcho(t *testing.T, g *graph.Graph, opts ...congest.Option) *congest.Result[int64] {
	t.Helper()
	res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 3}
	}, append([]congest.Option{congest.WithSeed(9), congest.WithRoundStats(), congest.WithMessageStats()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunnerAcrossGraphsAndWorkers reuses one Runner across different
// graphs, alternating worker counts (pool growth, shrink, sequential), and
// interleaving revisits of earlier graphs. Every reused run must equal the
// transient-state run bit for bit.
func TestRunnerAcrossGraphsAndWorkers(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyi(500, 0.01, 3).G,
		gen.Grid(20, 25).G,
		gen.Star(300).G,
		gen.ErdosRenyi(500, 0.01, 3).G, // same shape, different *graph.Graph
	}
	r := congest.NewRunner()
	defer r.Close()
	schedule := []struct {
		gi, workers int
	}{
		{0, 1}, {0, 4}, {1, 2}, {2, 8}, {0, 4}, {3, 1}, {1, 1}, {2, 2},
	}
	for i, s := range schedule {
		want := runEcho(t, graphs[s.gi], congest.WithWorkers(s.workers))
		got := runEcho(t, graphs[s.gi], congest.WithWorkers(s.workers), congest.WithRunner(r))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("step %d (graph %d, workers=%d): reused Runner diverges from transient run\nwant %+v\n got %+v",
				i, s.gi, s.workers, want, got)
		}
	}
}

// TestRunnerAfterAbortedRun: an aborted run must leave the Runner
// reusable, with the next run's transcript unaffected — both for a
// route-phase abort (strict-mode bandwidth violation) and for a
// step-phase abort (Sender error), which poisons different shard state.
func TestRunnerAfterAbortedRun(t *testing.T) {
	g := gen.Cycle(100).G
	r := congest.NewRunner()
	defer r.Close()
	want := runEcho(t, g)

	_, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &sendOnceProc{target: int(ni.Neighbors[0]), fat: true}
	}, congest.WithRunner(r))
	if err == nil {
		t.Fatal("fat packet did not trip strict mode")
	}
	if got := runEcho(t, g, congest.WithRunner(r)); !reflect.DeepEqual(want, got) {
		t.Fatalf("post-bandwidth-abort reuse diverges:\nwant %+v\n got %+v", want, got)
	}

	_, err = congest.Run(g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &rogueProc{ni: ni} // sends to a non-neighbor: a Sender error
	}, congest.WithRunner(r))
	if err == nil {
		t.Fatal("non-neighbor send did not abort")
	}
	if got := runEcho(t, g, congest.WithRunner(r)); !reflect.DeepEqual(want, got) {
		t.Fatalf("post-sender-error reuse diverges:\nwant %+v\n got %+v", want, got)
	}
}

// TestRunnerCloseReleasesPool: Close tears the worker goroutines down, and
// a closed Runner can still serve runs (the pool is rebuilt on demand).
func TestRunnerCloseReleasesPool(t *testing.T) {
	g := gen.ErdosRenyi(400, 0.01, 7).G
	before := runtime.NumGoroutine()
	r := congest.NewRunner()
	want := runEcho(t, g, congest.WithWorkers(8))
	got := runEcho(t, g, congest.WithWorkers(8), congest.WithRunner(r))
	r.Close()
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d after Close", before, after)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("pooled run diverged")
	}
	// Reuse after Close rebuilds the pool transparently.
	again := runEcho(t, g, congest.WithWorkers(8), congest.WithRunner(r))
	defer r.Close()
	if !reflect.DeepEqual(want, again) {
		t.Fatal("run after Close diverged")
	}
}

// nestedProc tries to start a run on the Runner that is currently driving
// it — the one misuse the mid-run guard must reject.
type nestedProc struct {
	r   *congest.Runner
	g   *graph.Graph
	err error
}

func (p *nestedProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	_, p.err = congest.Run(p.g, func(ni congest.NodeInfo) congest.Proc[struct{}] {
		return &foreverProc{}
	}, congest.WithRunner(p.r))
	return true
}

func (p *nestedProc) Output() error { return p.err }

// TestRunnerMidRunGuard: starting a run on a busy Runner fails cleanly
// instead of corrupting the outer run's state.
func TestRunnerMidRunGuard(t *testing.T) {
	g := gen.Path(2).G
	r := congest.NewRunner()
	defer r.Close()
	res, err := congest.Run(g, func(ni congest.NodeInfo) congest.Proc[error] {
		return &nestedProc{r: r, g: g}
	}, congest.WithRunner(r))
	if err != nil {
		t.Fatal(err)
	}
	for v, nested := range res.Outputs {
		if nested == nil {
			t.Fatalf("node %d: nested run on a busy Runner did not error", v)
		}
	}
}
