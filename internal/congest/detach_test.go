package congest_test

import (
	"sync"
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
)

// TestDetachSurvivesNextRun pins the Result.Detach contract: a Result
// produced under WithRecycledResult lives on Runner-owned memory, but its
// detached copy must stay valid — and readable without data races — while
// the same Runner executes its next run. Run under -race this fails loudly
// if Detach ever stops copying a Runner-owned backing array.
func TestDetachSurvivesNextRun(t *testing.T) {
	g := gen.Cycle(200).G
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 3}
	}
	r := congest.NewRunner()
	defer r.Close()
	opts := func(seed uint64) []congest.Option {
		return []congest.Option{
			congest.WithSeed(seed), congest.WithRunner(r),
			congest.WithRecycledResult(), congest.WithMessageStats(), congest.WithRoundStats(),
		}
	}

	first, err := congest.Run(g, factory, opts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	det := first.Detach()
	if &det.Outputs[0] == &first.Outputs[0] {
		t.Fatal("Detach returned a view of the recycled Outputs slab, not a copy")
	}
	want := make([]int64, len(det.Outputs))
	copy(want, det.Outputs)
	wantStats := make(map[string]congest.MessageStat, len(det.MessageStats))
	for k, v := range det.MessageStats {
		wantStats[k] = v
	}

	// Read the detached result continuously while the Runner's next run
	// overwrites the recycled slabs it was copied from.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for v := range det.Outputs {
				if det.Outputs[v] != want[v] {
					t.Errorf("detached output %d changed under the Runner's next run", v)
					return
				}
			}
			for k, v := range det.MessageStats {
				if wantStats[k] != v {
					t.Errorf("detached MessageStats[%q] changed under the Runner's next run", k)
					return
				}
			}
			_ = det.RoundStats[len(det.RoundStats)-1]
		}
	}()
	second, err := congest.Run(g, factory, opts(2)...)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// The recycled path really did reuse the slab the copy was taken from —
	// otherwise this test would pass vacuously.
	if &second.Outputs[0] != &first.Outputs[0] {
		t.Fatal("recycled run did not reuse the Runner-owned Outputs slab; test premise broken")
	}
	for v := range det.Outputs {
		if det.Outputs[v] != want[v] {
			t.Fatalf("detached output %d = %d, want %d after the Runner's next run", v, det.Outputs[v], want[v])
		}
	}
}

// TestRoundObserver pins WithRoundObserver against WithRoundStats: the
// streamed stats must be exactly the recorded ones, in order.
func TestRoundObserver(t *testing.T) {
	g := gen.Star(64).G
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 2}
	}
	var streamed []congest.RoundStat
	res, err := congest.Run(g, factory,
		congest.WithSeed(7), congest.WithRoundStats(),
		congest.WithRoundObserver(func(rs congest.RoundStat) { streamed = append(streamed, rs) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.RoundStats) || len(streamed) == 0 {
		t.Fatalf("observer saw %d rounds, RoundStats recorded %d", len(streamed), len(res.RoundStats))
	}
	for i, rs := range res.RoundStats {
		if streamed[i] != rs {
			t.Fatalf("round %d: observer %+v != recorded %+v", i, streamed[i], rs)
		}
	}
}
