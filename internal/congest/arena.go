package congest

// Arena is a run-scoped typed-slab allocator. A run allocates a handful of
// large backing blocks (sized, in practice, by n and the 2m directed edge
// slots of the graph) and carves per-node slices out of them, so the
// per-node `make` calls that used to dominate a run's allocation count —
// one neighbor cache per node per algorithm — collapse into a few block
// allocations that a reused Runner amortizes across runs.
//
// Procs reach the arena through NodeInfo.Arena and must carve only while
// their Factory runs (the engine constructs procs sequentially before
// round 0; Step executes on worker goroutines, and the arena is not
// goroutine-safe). Carved slices are zeroed, are valid for the duration of
// the run, and must not be referenced from a Result — the owning Runner
// recycles the blocks on its next run. A nil *Arena falls back to plain
// make, so procs built outside an engine run (tests, direct construction)
// keep working.
type Arena struct {
	f64   slab[float64]
	i64   slab[int64]
	i32   slab[int32]
	ints  slab[int]
	bools slab[bool]
}

// Float64s carves a zeroed []float64 of length and capacity n.
func (a *Arena) Float64s(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64.alloc(n)
}

// Int64s carves a zeroed []int64 of length and capacity n.
func (a *Arena) Int64s(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	return a.i64.alloc(n)
}

// Int32s carves a zeroed []int32 of length and capacity n.
func (a *Arena) Int32s(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32.alloc(n)
}

// Ints carves a zeroed []int of length and capacity n.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.alloc(n)
}

// Bools carves a zeroed []bool of length and capacity n.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bools.alloc(n)
}

// Reset recycles every block for the next run: carve cursors rewind and the
// used memory is re-zeroed, so the next run's carves see zero values again.
// The caller (the Runner) must guarantee no slice carved before the Reset
// is still in use.
func (a *Arena) Reset() {
	a.f64.reset()
	a.i64.reset()
	a.i32.reset()
	a.ints.reset()
	a.bools.reset()
}

// slab is one element type's block list. Blocks are retained across resets
// and grow geometrically, so a warmed-up slab allocates nothing.
type slab[T any] struct {
	blocks [][]T
	bi     int // block currently being carved
	off    int // carve offset within blocks[bi]
}

// minSlabBlock is the smallest block a slab allocates; tiny runs shouldn't
// fragment into one block per carve.
const minSlabBlock = 1024

func (s *slab[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for s.bi < len(s.blocks) {
		if b := s.blocks[s.bi]; s.off+n <= len(b) {
			out := b[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.bi++
		s.off = 0
	}
	size := minSlabBlock
	if len(s.blocks) > 0 {
		// Geometric growth keeps the block count logarithmic in the total
		// carved volume, whatever mix of sizes the procs request.
		size = 2 * len(s.blocks[len(s.blocks)-1])
	}
	if size < n {
		size = n
	}
	s.blocks = append(s.blocks, make([]T, size))
	s.off = n
	return s.blocks[s.bi][0:n:n]
}

func (s *slab[T]) reset() {
	// Re-zero every block that was touched (blocks past bi were never
	// carved this cycle). Fresh blocks come zeroed from make, so alloc can
	// hand out slices without a per-carve clear.
	for i := 0; i <= s.bi && i < len(s.blocks); i++ {
		clear(s.blocks[i])
	}
	s.bi, s.off = 0, 0
}
