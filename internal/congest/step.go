package congest

// stepShard is one worker's node range plus its per-round step results.
type stepShard struct {
	lo, hi int
	active int   // nodes in range still running after this round
	err    error // first Sender error in range (lowest node ID)

	// cur is the node whose Step is currently executing — a plain store
	// per node, read only by the panic recovery path so a recovered panic
	// knows which node's callback blew up.
	cur int
	// pan is the panic recovered from this shard's range this round, if
	// any. The engine converts the lowest-node pan across shards into the
	// run's *ProcPanicError at the barrier; panics take precedence over
	// Sender errors so the reported failure is worker-count invariant
	// (shards keep stepping past a Sender error but stop at a panic, so
	// the Sender-error set can differ across layouts — the panic set of
	// the surviving minimum cannot).
	pan *ProcPanicError

	_ [8]byte // round the live fields up to a line boundary
	_ linePad // keep adjacent shards' hot fields off shared cache lines
}

// stepRange steps every node in shard w's range. Each node touches only
// its own proc, inbox and sender, so shards are race-free.
//
// A panic in a Proc.Step call (or in an injected engine fault) is
// recovered here — on the worker goroutine that runs the shard — and
// parked in the shard for the engine's barrier to convert into a run
// error, so one faulty proc fails one run instead of the process.
func (e *engine[O]) stepRange(w int) {
	s := &e.steps[w]
	s.active = 0
	// Reset the error like routeRange resets its own: a Sender error from
	// an aborted previous run must not poison a reused Runner.
	s.err = nil
	s.pan = nil
	s.cur = -1
	defer func() {
		if v := recover(); v != nil {
			s.pan = newProcPanic(e.round, s.cur, v)
		}
	}()
	round := e.round
	if e.cfg.faults != nil && w == 0 {
		// The engine-side injection seam: a chaos test arms "congest.step"
		// to panic (exercising exactly this recover, on a pool goroutine
		// when parallel), to sleep (a slow round), or to fail the round
		// with an error. Fired once per round, on shard 0 only, so Times
		// accounting is layout-independent.
		if err := e.cfg.faults.FireRound("congest.step", round); err != nil {
			s.err = err
			return
		}
	}
	for v := s.lo; v < s.hi; v++ {
		snd := &e.senders[v]
		// Truncate the outbox even for terminated nodes: a node's final
		// messages are routed the round it finishes, and the router scans
		// every outbox every round, so a stale outbox would re-deliver.
		snd.out = snd.out[:0]
		if e.done[v] {
			continue
		}
		s.cur = v
		if e.procs[v].Step(round, e.inbox[v], snd) {
			e.done[v] = true
		} else {
			s.active++
		}
		if snd.err != nil && s.err == nil {
			s.err = snd.err
		}
	}
}
