package congest

// stepShard is one worker's node range plus its per-round step results.
type stepShard struct {
	lo, hi int
	active int   // nodes in range still running after this round
	err    error // first Sender error in range (lowest node ID)
}

// stepRange steps every node in shard w's range. Each node touches only
// its own proc, inbox and sender, so shards are race-free.
func (e *engine[O]) stepRange(w int) {
	s := &e.steps[w]
	s.active = 0
	// Reset the error like routeRange resets its own: a Sender error from
	// an aborted previous run must not poison a reused Runner.
	s.err = nil
	round := e.round
	for v := s.lo; v < s.hi; v++ {
		snd := &e.senders[v]
		// Truncate the outbox even for terminated nodes: a node's final
		// messages are routed the round it finishes, and the router scans
		// every outbox every round, so a stale outbox would re-deliver.
		snd.out = snd.out[:0]
		if e.done[v] {
			continue
		}
		if e.procs[v].Step(round, e.inbox[v], snd) {
			e.done[v] = true
		} else {
			s.active++
		}
		if snd.err != nil && s.err == nil {
			s.err = snd.err
		}
	}
}
