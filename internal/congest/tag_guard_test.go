package congest

import "testing"

// TestTagSpaceHeadroom guards the library's wire header: every library tag
// must fit the MsgTagBits (4-bit) header the bandwidth accounting charges,
// i.e. at most 15 registered tags beyond tagInvalid. Adding a 16th library
// message type is NOT a matter of squeezing — widen MsgTagBits (and accept
// that every message's accounted size grows by the extra header bits; the
// wire round-trip tests in mds/baseline pin the per-field accounting and
// will flag the change). That escape hatch is documented on MsgTagBits and
// in ROADMAP.md.
func TestTagSpaceHeadroom(t *testing.T) {
	const capacity = 1 << MsgTagBits // 16 values incl. tagInvalid ⇒ 15 usable
	registered := int(numLibraryTags) - 1
	if registered > capacity-1 {
		t.Fatalf("%d library tags registered, but only %d fit the %d-bit MsgTagBits header: widen MsgTagBits (the documented escape hatch) instead of overflowing the header",
			registered, capacity-1, MsgTagBits)
	}
	if free := capacity - 1 - registered; free < 1 {
		t.Logf("tag space full: %d/%d used — the next library message type requires widening MsgTagBits", registered, capacity-1)
	}
	// Every registered tag must have a stable name (MessageStats keys).
	for tag := Tag(1); tag < numLibraryTags; tag++ {
		if tagNames[tag] == "" {
			t.Errorf("tag %d has no name", tag)
		}
	}
}
