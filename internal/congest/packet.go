package congest

import "fmt"

// Tag identifies a message's wire format. The library's algorithm messages
// occupy the low tag values and fit the MsgTagBits (= 4 bit) header the
// bandwidth accounting charges; the remaining space up to MaxTags is
// headroom for external procs (tests, examples), charged at the same rate
// exactly as the legacy interface path charged every message MsgTagBits.
type Tag uint8

// Library message tags. Tags are globally unique so that composed
// algorithms (e.g. Remark 4.5 = orientation + dominating set) never
// collide, and so the engine can aggregate per-type statistics with a
// plain array lookup instead of a reflect.Type map.
const (
	tagInvalid Tag = iota

	// internal/mds
	TagWeight  // weight announcement (w, deg)
	TagPacking // packing value as (τ, exponent[, normalizer]) — x = τ·(1+ε)^exp/(D+1)
	TagJoin    // sender joined the dominating set
	TagRequest // ask the τ-neighbor to join
	TagDom     // sender is dominated
	TagDegree  // degree announcement

	// internal/orient
	TagPeel // sender peeled this iteration

	// internal/baseline
	TagFracX       // KW05 fractional value exponent index
	TagFracCovered // KW05 fractional coverage flag
	TagSpan        // LRG span/coverage status
	TagCovered     // LW newly-covered announcement
	TagMaxSpan     // LRG distance-1 max span relay
	TagCandidate   // LRG candidacy announcement
	TagSupport     // LRG support count

	numLibraryTags
)

// MaxTags bounds the tag space (and sizes the per-shard statistics
// arrays). Library tags must additionally fit the 4-bit wire header.
const MaxTags = 32

// The library's wire format must fit the MsgTagBits header it is charged
// (compile-time check: this constant overflows if tags exceed 1<<MsgTagBits).
const _ = uint((1 << MsgTagBits) - numLibraryTags)

var tagNames = [numLibraryTags]string{
	tagInvalid:     "invalid",
	TagWeight:      "weight",
	TagPacking:     "packing",
	TagJoin:        "join",
	TagRequest:     "request",
	TagDom:         "dom",
	TagDegree:      "degree",
	TagPeel:        "peel",
	TagFracX:       "frac-x",
	TagFracCovered: "frac-covered",
	TagSpan:        "span",
	TagCovered:     "covered",
	TagMaxSpan:     "max-span",
	TagCandidate:   "candidate",
	TagSupport:     "support",
}

// String returns the stable name used as the MessageStats key.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return fmt.Sprintf("tag-%d", uint8(t))
}

// Packet is the wire-word message representation: a tag plus a payload
// packed into at most two machine words, with the CONGEST bit cost fixed
// at pack time. Packets are plain values — sending one allocates nothing,
// boxes nothing, and routing reads Bits as a field instead of making a
// dynamic Bits() call per delivered copy.
//
// Bits is the encoded size in bits charged against the per-edge bandwidth
// budget; it must equal MsgTagBits plus the BitsInt/BitsUint cost of the
// payload fields (the per-message-type pack helpers compute it, and the
// wire round-trip tests pin it against the legacy accounting). A, B carry
// the payload; their layout is private to the pack/decode helpers of the
// package that owns the tag.
type Packet struct {
	A, B uint64
	Bits uint32
	Tag  Tag
}

// TagOnly returns the packet for a payload-free message (join, dom, peel,
// …): just the MsgTagBits type header.
func TagOnly(tag Tag) Packet {
	return Packet{Tag: tag, Bits: MsgTagBits}
}
