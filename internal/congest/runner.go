package congest

import (
	"fmt"
	"runtime"

	"arbods/internal/graph"
)

// Runner owns the run-scoped state of the simulator — the worker pool, the
// proc Arena, the flat inbox/outbox backing arrays, and the graph-derived
// sender tables — and reuses all of it across Run calls. A one-shot
// congest.Run constructs and discards a transient Runner; a serving-style
// caller that executes many runs (cmd/mdsbench, parameter sweeps, repeated
// requests on the same graph) creates one Runner, passes it to each run
// with WithRunner, and amortizes the whole setup: on a rebind to the same
// graph nothing graph-sized is allocated at all.
//
// A Runner may be reused across different graphs (graph-derived state is
// rebuilt on the first run after the graph changes) and across different
// option sets. It is not goroutine-safe: runs sharing a Runner must be
// sequential, and a run that finds the Runner mid-run fails. Close releases
// the worker pool; closing is optional for transient use but polite for
// long-lived Runners (the pool goroutines otherwise persist until the
// Runner is collected).
type Runner struct {
	g       *graph.Graph
	n       int
	workers int // shard layout currently built (0 = none)

	pool     *pool
	poolSize int

	senders []Sender
	outSlab []outPacket // one backing array; sender v owns deg(v)+1 slots
	done    []bool
	inbox   [][]Incoming // per-node views into the route shards' flat arrays
	next    [][]Incoming
	bounds  []int32 // degree-weighted shard boundaries, len workers+1
	steps   []stepShard
	routes  []routeShard
	drains  []senderShard // drain-phase shards + staging; nil when workers == 1
	arena   Arena

	// Output-typed slabs, cached through any-boxes because the Runner
	// itself is not generic: procSlab holds the engine's []Proc[O] (always
	// reused — procs never escape the run), outSlabO the []O behind
	// Result.Outputs and msgStats the Result.MessageStats map (both reused
	// only under WithRecycledResult, which trades Result immortality for
	// zero graph-sized allocations; see the option's contract). A run with
	// a different output type simply rebuilds the boxes.
	procSlab any
	outSlabO any
	msgStats map[string]MessageStat

	running  bool
	poisoned bool
}

// NewRunner returns an empty Runner; all state is built lazily by the first
// run and reused afterwards.
func NewRunner() *Runner { return &Runner{} }

// Poisoned reports whether a run on this Runner ended in a recovered proc
// panic (ErrProcPanic). A panicking callback may have been interrupted at
// an arbitrary point — mid-arena-carve, mid-slab-write — so although the
// next bind resets every piece of per-run state the engine owns, the
// Runner is conservatively quarantined: RunnerPool.Put discards poisoned
// Runners and checks a replacement in instead. The flag is sticky; a
// caller that understands the risk may keep using the Runner directly
// (transcripts remain correct — bind rebuilds all run state), but pooled
// serving paths should let the pool swap it out.
func (r *Runner) Poisoned() bool { return r.poisoned }

// noteRunError marks the Runner poisoned when err is a recovered proc
// panic. Cheap type assertion instead of errors.As: the engine returns
// *ProcPanicError un-wrapped.
func (r *Runner) noteRunError(err error) {
	if err == nil {
		return
	}
	if _, ok := err.(*ProcPanicError); ok {
		r.poisoned = true
	}
}

// Close releases the worker pool. The Runner must be idle; it may be used
// again afterwards (a fresh pool is built on demand).
func (r *Runner) Close() {
	if r.pool != nil {
		r.pool.close()
		r.pool = nil
		r.poolSize = 0
	}
}

// WithRunner executes the run on a reusable Runner instead of transient
// state. See Runner for the reuse and concurrency contract.
func WithRunner(r *Runner) Option { return optionFunc(func(c *config) { c.runner = r }) }

// bind points the Runner at (g, cfg) for one run: graph-derived state is
// rebuilt only when the graph changed, the shard layout only when the node
// or worker count changed, and everything else is reset in place.
func (r *Runner) bind(g *graph.Graph, cfg config) error {
	if r.running {
		return fmt.Errorf("congest: Runner is already mid-run (Runners are not goroutine-safe)")
	}
	r.running = true
	n := g.N()

	if r.g != g {
		r.g = g
		r.n = n
		if cap(r.senders) >= n {
			r.senders = r.senders[:n]
		} else {
			r.senders = make([]Sender, n)
		}
		// One outbox backing array for all nodes: node v owns deg(v)+1
		// slots — degree covers a full broadcast, the +1 the occasional
		// extra targeted send (a node that outgrows its slot falls back to
		// ordinary append growth and keeps the grown slice).
		slots := g.DegreeSum() + n
		if cap(r.outSlab) < slots {
			r.outSlab = make([]outPacket, slots)
		}
		base := 0
		for v := 0; v < n; v++ {
			nbr := g.Neighbors(v)
			end := base + len(nbr) + 1
			r.senders[v] = Sender{
				owner:     int32(v),
				neighbors: nbr,
				revIdx:    g.ReverseIndex(v),
				out:       r.outSlab[base:base:end],
			}
			base = end
		}
		r.done = resized(r.done, n)
		r.inbox = resized(r.inbox, n)
		r.next = resized(r.next, n)
		r.workers = 0 // force a shard-layout rebuild below
	} else {
		for v := range r.senders {
			s := &r.senders[v]
			s.err = nil
			s.out = s.out[:0]
		}
		clear(r.done)
		// Stale views would alias flat arrays about to be overwritten; the
		// round-0 step must see empty inboxes.
		clear(r.inbox)
		clear(r.next)
	}

	workers := cfg.workers
	if workers == 0 {
		// Adaptive: callers that pass WithWorkers(0) let the engine pick.
		// Small graphs stay sequential — the per-round dispatch barriers
		// cost more than the parallelism recovers below the crossover.
		workers = 1
		if n >= adaptiveWorkersMin {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers > n {
		workers = n
	}
	if n < parallelStepMin || workers < 1 {
		workers = 1
	}
	if workers != r.workers {
		r.workers = workers
		// Boundaries are cut by cumulative degree (one binary search on the
		// CSR offsets per boundary), so skewed-degree graphs don't serialize
		// on the shard that holds the hubs; see shardBounds.
		r.bounds = shardBounds(g, workers)
		r.steps = make([]stepShard, workers)
		r.routes = make([]routeShard, workers)
		r.drains = nil
		if workers > 1 {
			r.drains = make([]senderShard, workers)
		}
		for w := 0; w < workers; w++ {
			lo, hi := int(r.bounds[w]), int(r.bounds[w+1])
			r.steps[w] = stepShard{lo: lo, hi: hi}
			rs := &r.routes[w]
			rs.lo, rs.hi = lo, hi
			rs.edgeBits = make([]int64, hi-lo)
			rs.stamp = make([]uint64, hi-lo)
			rs.touched = make([]int32, hi-lo)
			rs.cnt = make([]int32, hi-lo)
			rs.off = make([]int32, hi-lo+1)
			rs.senderGen = 1 // stamp's zero value must mean "never touched"
			if workers > 1 {
				d := &r.drains[w]
				d.lo, d.hi = lo, hi
				// CSR staging bookkeeping (one int32 array per role, sized by
				// the worker count, not the graph); the entry/run slabs grow
				// on the first busy round and stay warm afterwards.
				d.cntE = make([]int32, workers)
				d.cntR = make([]int32, workers)
				d.offE = make([]int32, workers+1)
				d.offR = make([]int32, workers+1)
				d.last = make([]int32, workers)
			}
		}
	}
	for w := range r.routes {
		rs := &r.routes[w]
		rs.dropped, rs.violations, rs.maxEdgeBits = 0, 0, 0
		rs.stats = [MaxTags]MessageStat{}
		// senderGen stays monotonic across runs, so the stamp scratch needs
		// no clearing — entries from previous runs can never match.
	}
	for w := range r.drains {
		r.drains[w].stats = [MaxTags]MessageStat{}
	}

	if workers > 1 && (r.pool == nil || r.poolSize < workers) {
		if r.pool != nil {
			r.pool.close()
		}
		r.pool = newPool(workers)
		r.poolSize = workers
	}
	r.arena.Reset()
	return nil
}

// release marks the run finished. closePool additionally tears the worker
// pool down (transient Runners built inside congest.Run).
func (r *Runner) release(closePool bool) {
	r.running = false
	if closePool {
		r.Close()
	}
}

// resized returns s resized to length n with every element zeroed,
// reusing the backing array when it is large enough.
func resized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
