package congest

import (
	"reflect"
	"testing"
	"unsafe"

	"arbods/internal/graph"
)

// buildStar returns a star: node 0 is the hub, nodes 1..n-1 are leaves.
func buildStar(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildBroom returns a broom: a path 0–1–…–(handle−1) whose last node is
// the hub of a star with `bristles` leaves — the skewed-degree shape of
// the lower-bound families, where node-count shards serialize on the
// shard holding the hub and its bristles.
func buildBroom(t *testing.T, handle, bristles int) *graph.Graph {
	t.Helper()
	n := handle + bristles
	b := graph.NewBuilder(n)
	for v := 1; v < handle; v++ {
		b.AddEdge(v-1, v)
	}
	for i := 0; i < bristles; i++ {
		b.AddEdge(handle-1, handle+i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildCycle returns the n-cycle — a 2-regular graph on which the
// degree-weighted cut must degrade to the plain node-count split.
func buildCycle(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// shardWeight is the cumulative node weight (deg+1 per node) of [lo, hi).
func shardWeight(g *graph.Graph, lo, hi int) int {
	return g.AdjOffset(hi) - g.AdjOffset(lo) + (hi - lo)
}

// TestShardBoundsCover pins the partition invariants on every graph
// shape: bounds start at 0, end at n, never decrease, and shardOf agrees
// with the ranges — so the shards cover [0, n) exactly, with no gaps and
// no overlaps, even when a hub makes some shards empty.
func TestShardBoundsCover(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"star":  buildStar(t, 1000),
		"broom": buildBroom(t, 500, 500),
		"cycle": buildCycle(t, 1000),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			bounds := shardBounds(g, workers)
			if len(bounds) != workers+1 {
				t.Fatalf("%s workers=%d: %d bounds, want %d", name, workers, len(bounds), workers+1)
			}
			if bounds[0] != 0 || int(bounds[workers]) != g.N() {
				t.Fatalf("%s workers=%d: bounds span [%d,%d], want [0,%d]", name, workers, bounds[0], bounds[workers], g.N())
			}
			for k := 1; k <= workers; k++ {
				if bounds[k] < bounds[k-1] {
					t.Fatalf("%s workers=%d: bounds decrease at %d: %v", name, workers, k, bounds)
				}
			}
			for v := 0; v < g.N(); v++ {
				w := shardOf(bounds, int32(v))
				if int32(v) < bounds[w] || int32(v) >= bounds[w+1] {
					t.Fatalf("%s workers=%d: shardOf(%d)=%d but range is [%d,%d)", name, workers, v, w, bounds[w], bounds[w+1])
				}
			}
		}
	}
}

// TestShardBoundsBalance asserts the one-node overshoot bound on the
// skewed families: every shard's cumulative weight stays below
// total/workers + (Δ+1). On a star or broom a node-count split would give
// the hub's shard ~all of the weight; the degree-weighted split cannot
// exceed a fair share by more than the single node that crossed the
// target.
func TestShardBoundsBalance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"star":      buildStar(t, 10_000),
		"broom":     buildBroom(t, 5_000, 5_000),
		"long-tail": buildBroom(t, 9_000, 1_000),
	}
	for name, g := range graphs {
		total := g.DegreeSum() + g.N()
		for _, workers := range []int{2, 4, 8} {
			bounds := shardBounds(g, workers)
			limit := total/workers + g.MaxDegree() + 1
			for w := 0; w < workers; w++ {
				got := shardWeight(g, int(bounds[w]), int(bounds[w+1]))
				if got > limit {
					t.Errorf("%s workers=%d shard %d: weight %d > fair share + one node = %d (bounds %v)",
						name, workers, w, got, limit, bounds)
				}
			}
		}
	}
}

// TestShardBoundsRegularDegradesToNodeCount: on a regular graph every
// node weighs the same, so the degree-weighted cut is exactly the
// node-count cut the engine used before.
func TestShardBoundsRegularDegradesToNodeCount(t *testing.T) {
	g := buildCycle(t, 1024)
	for _, workers := range []int{2, 4, 8} {
		bounds := shardBounds(g, workers)
		for k := 0; k <= workers; k++ {
			want := int32(k * 1024 / workers)
			if bounds[k] != want {
				t.Errorf("workers=%d bounds[%d] = %d, want the node-count split %d", workers, k, bounds[k], want)
			}
		}
	}
}

// TestShardPadding pins the cache-line layout: each shard struct carries a
// trailing linePad, so its total size is a 64-byte multiple and no cache
// line can hold live fields of two adjacent shards in the Runner's
// slices, at any backing-array alignment.
func TestShardPadding(t *testing.T) {
	sizes := map[string]uintptr{
		"stepShard":   unsafe.Sizeof(stepShard{}),
		"routeShard":  unsafe.Sizeof(routeShard{}),
		"senderShard": unsafe.Sizeof(senderShard{}),
	}
	for name, size := range sizes {
		if size%64 != 0 {
			t.Errorf("%s is %d bytes — not a cache-line multiple; adjust its linePad", name, size)
		}
		if size < 64+unsafe.Sizeof(linePad{}) {
			t.Errorf("%s is %d bytes — smaller than its own padding plus one line?", name, size)
		}
	}
}

// floodProc broadcasts a fixed packet for `rounds` rounds, then
// terminates. Nodes with earlier deadlines keep receiving traffic after
// they are done, exercising the dropped-message accounting.
type floodProc struct {
	ni     NodeInfo
	rounds int
	bits   uint32
	got    int64
}

func (p *floodProc) Step(round int, in []Incoming, s *Sender) bool {
	p.got += int64(len(in))
	if round >= p.rounds {
		return true
	}
	s.Broadcast(Packet{Tag: MaxTags - 1, Bits: p.bits})
	return false
}

func (p *floodProc) Output() int64 { return p.got }

// runFlood executes a flood run where node v stops after 1+v%3 rounds.
func runFlood(t *testing.T, g *graph.Graph, bits uint32, opts ...Option) (*Result[int64], error) {
	t.Helper()
	slab := make([]floodProc, g.N())
	return Run(g, func(ni NodeInfo) Proc[int64] {
		p := &slab[ni.ID]
		*p = floodProc{ni: ni, rounds: 1 + ni.ID%3, bits: bits}
		return p
	}, opts...)
}

// TestBandwidthErrorWorkerInvariance pins the strict-mode abort across
// engine layouts: the sequential router, the staged parallel router, and
// every worker count must report the identical *BandwidthError (the
// lowest violating sender, then its lowest receiver).
func TestBandwidthErrorWorkerInvariance(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"broom": buildBroom(t, 400, 400),
		"star":  buildStar(t, 500),
	} {
		var want *BandwidthError
		for _, w := range []int{1, 2, 4, 7} {
			_, err := runFlood(t, g, 1<<12, WithSeed(5), WithWorkers(w), WithBandwidth(64))
			be, ok := err.(*BandwidthError)
			if !ok {
				t.Fatalf("%s workers=%d: got %v, want a *BandwidthError", name, w, err)
			}
			if want == nil {
				want = be
				continue
			}
			if !reflect.DeepEqual(be, want) {
				t.Errorf("%s workers=%d: error %+v differs from workers=1's %+v", name, w, be, want)
			}
		}
	}
}

// TestAuditAccountingWorkerInvariance pins the full audit-mode transcript
// — violations, dropped messages, per-edge maxima, tag statistics, round
// stats, outputs — across worker counts on skewed graphs, where the
// degree-weighted boundaries put hubs and leaves in different shards than
// the old node-count split would have.
func TestAuditAccountingWorkerInvariance(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"broom": buildBroom(t, 300, 300),
		"star":  buildStar(t, 400),
		"cycle": buildCycle(t, 300),
	} {
		var want *Result[int64]
		for _, w := range []int{1, 2, 4} {
			res, err := runFlood(t, g, 160, WithSeed(7), WithWorkers(w), WithBandwidth(128),
				WithMode(CongestAudit), WithRoundStats(), WithMessageStats())
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if res.BandwidthViolations == 0 {
				t.Fatalf("%s: audit run recorded no violations — the scenario lost its teeth", name)
			}
			if res.DroppedMessages == 0 {
				t.Fatalf("%s: no dropped messages — the scenario lost its teeth", name)
			}
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(res, want) {
				t.Errorf("%s workers=%d: result diverges from workers=1\n got: %+v\nwant: %+v", name, w, res, want)
			}
		}
	}
}
