package congest

import (
	"sort"

	"arbods/internal/graph"
)

// Shard layout. Workers own contiguous node ranges twice per round: as
// *sender* ranges in the drain phase (each worker empties its own senders'
// outboxes) and as *receiver* ranges in the merge phase (each worker owns
// its receivers' inboxes exclusively). Both phases use the same
// boundaries, cut by cumulative degree rather than node count: a node's
// routing work is proportional to its degree on both sides (outbox size
// when sending, inbox traffic when receiving), so equal-node shards
// serialize on whichever shard holds the hubs of a skewed-degree graph —
// a star's center shard does ~all of the work while the others idle.
// Equal-degree shards keep the broom/star/lower-bound families balanced,
// and on regular graphs they degrade to exactly the node-count split.

// adaptiveWorkersMin is the node count at which WithWorkers(0) switches
// from the sequential engine to GOMAXPROCS workers. Below it the per-round
// dispatch barriers (three per round: step, drain, merge) cost more than
// the parallelism recovers; the crossover is a provisional estimate — the
// development container is single-core, where the parallel engine can
// never win — so it is set where per-round work (≈ degree-sum packet
// copies) comfortably exceeds the few-µs barrier cost. Re-measure on
// multicore hardware before tuning.
const adaptiveWorkersMin = 1 << 15

// shardBounds cuts [0, n) into `workers` contiguous ranges of near-equal
// cumulative weight, where node v weighs deg(v)+1 (the +1 keeps zero-degree
// nodes from collapsing into one shard and bounds every shard's node
// count). The graph's CSR offsets are a monotone prefix-degree array, so
// each boundary is one binary search: boundary k is the smallest b whose
// cumulative weight AdjOffset(b)+b reaches k/workers of the total.
//
// The result has workers+1 entries, starts at 0, ends at n, and is
// non-decreasing; a shard may be empty when a single hub outweighs a full
// share. Every shard's weight is below total/workers + (Δ+1), the
// one-node overshoot bound.
func shardBounds(g *graph.Graph, workers int) []int32 {
	n := g.N()
	bounds := make([]int32, workers+1)
	total := g.DegreeSum() + n
	for k := 1; k < workers; k++ {
		target := total * k / workers
		b := sort.Search(n, func(b int) bool {
			return g.AdjOffset(b+1)+(b+1) >= target
		})
		bounds[k] = int32(b + 1)
	}
	bounds[workers] = int32(n)
	return bounds
}

// shardOf returns the index of the shard whose range contains node v:
// the largest k with bounds[k] <= v. bounds is small (workers+1 entries,
// cache-resident), so this is a handful of well-predicted branches per
// routed packet.
func shardOf(bounds []int32, v int32) int {
	lo, hi := 0, len(bounds)-1
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// stageRun is a run-length header over staged entries: `count` consecutive
// entries in one bucket all sent by `from`. Senders are drained in ID
// order, each sender lives in exactly one sender shard, and sorted
// broadcasts visit receiver shards in non-decreasing order, so within a
// bucket the runs ascend by sender — which is what lets the merge phase
// replay a receiver shard's traffic in exact (sender ID, send index)
// order and do the per-directed-edge bit accounting over contiguous
// slices with no per-entry sender comparisons.
type stageRun struct {
	from  int32
	count int32
}

// senderShard is one worker's sender range in the drain phase, plus its
// worker-local staging and accumulators. The staging is CSR-shaped: one
// entry slab and one run slab per shard, with per-receiver-shard counted
// offsets ("bucket" b of shard d is entSlab[offE[b]:offE[b+1]]), all
// Runner-owned and reused across rounds and runs — a warm drain allocates
// nothing, and a cold one allocates O(workers) slices, not O(workers²)
// growing buffers. Nothing here is touched by any other worker during the
// phase: the drain writes only worker-local memory, which is the point —
// the previous single-phase router had every worker scanning every
// sender's outbox (O(m) work per worker, O(m·workers) total) over shared
// cursor arrays. The struct is padded so adjacent shards in the Runner's
// slice never share a cache line (TestShardPadding pins the layout).
type senderShard struct {
	lo, hi int

	// CSR staging: entries/runs for receiver shard b live at
	// entSlab[offE[b]:offE[b+1]] / runSlab[offR[b]:offR[b+1]].
	entSlab []outPacket
	runSlab []stageRun
	cntE    []int32 // per-bucket entry counts; reused as pass-B cursors
	cntR    []int32 // per-bucket run counts; reused as pass-B cursors
	offE    []int32 // len workers+1
	offR    []int32 // len workers+1
	last    []int32 // per-bucket last sender seen (run-boundary detection)

	// per-round accumulators (the merge side owns edge-level accounting)
	msgs, bits int64
	pan        *ProcPanicError // engine fault recovered while draining

	// per-run accumulator, merged by finish
	stats [MaxTags]MessageStat

	_ [48]byte // round the live fields up to a line boundary
	_ linePad  // keep adjacent shards' hot fields off shared cache lines
}

// linePad is a full cache line of trailing padding. Shards live in plain
// slices whose backing arrays are not line-aligned, so rounding a struct
// to a 64-byte multiple alone cannot keep neighbors apart; a full trailing
// line guarantees that no cache line holds live fields of two adjacent
// shards at any base alignment. TestShardPadding pins the layouts.
type linePad [64]byte

// drainRange empties every outbox in shard w's sender range into the
// worker-local staging, bucketed by the receiver's shard. Like the
// sequential router it works in two counted passes (count per bucket,
// prefix-sum to offsets, place), so the slabs are written exactly once
// per round with no growth bookkeeping in the inner loop. Message and tag
// accounting (per-packet, sender-attributable) happens here; the
// per-directed-edge bit accounting needs the receiver's full traffic and
// so belongs to the merge phase. Senders are scanned in ID order and
// outboxes preserve send order, so each bucket's entries are ordered by
// (sender ID, send index) by construction.
func (e *engine[O]) drainRange(w int) {
	d := &e.drains[w]
	d.msgs, d.bits, d.pan = 0, 0, nil
	// Draining executes no user code; a panic is an engine bug (or an
	// injected fault), recovered on the same contract as the other phases.
	defer func() {
		if v := recover(); v != nil {
			d.pan = newProcPanic(e.round, -1, v)
		}
	}()
	nb := len(e.drains)
	cntE, cntR, last := d.cntE, d.cntR, d.last
	for i := 0; i < nb; i++ {
		cntE[i], cntR[i], last[i] = 0, 0, -1
	}
	bounds := e.bounds
	msgStats := e.cfg.msgStats
	var msgs, bits int64

	// Pass A: per-bucket entry and run counts; per-packet accounting
	// rides along, including messages to terminated receivers (their
	// bandwidth is consumed whether or not delivery happens).
	for v := d.lo; v < d.hi; v++ {
		out := e.senders[v].out
		if len(out) == 0 {
			continue
		}
		v32 := int32(v)
		for i := range out {
			mb := int64(out[i].p.Bits)
			msgs++
			bits += mb
			if msgStats {
				st := &d.stats[out[i].p.Tag]
				st.Count++
				st.Bits += mb
			}
			rs := shardOf(bounds, out[i].to)
			cntE[rs]++
			if last[rs] != v32 {
				last[rs] = v32
				cntR[rs]++
			}
		}
	}
	d.msgs, d.bits = msgs, bits

	// Prefix-sum the counts into bucket offsets, size the slabs (amortized
	// growth, Runner-owned), and turn the counters into write cursors.
	offE, offR := d.offE, d.offR
	var te, tr int32
	for i := 0; i < nb; i++ {
		offE[i] = te
		te += cntE[i]
		offR[i] = tr
		tr += cntR[i]
		cntE[i] = offE[i]
		cntR[i] = offR[i]
		last[i] = -1
	}
	offE[nb], offR[nb] = te, tr
	if cap(d.entSlab) < int(te) {
		d.entSlab = make([]outPacket, te+te/4)
	}
	if cap(d.runSlab) < int(tr) {
		d.runSlab = make([]stageRun, tr+tr/4)
	}
	ents := d.entSlab[:te]
	runs := d.runSlab[:tr]

	// Pass B: place entries and run-length headers at their offsets.
	for v := d.lo; v < d.hi; v++ {
		out := e.senders[v].out
		if len(out) == 0 {
			continue
		}
		v32 := int32(v)
		for i := range out {
			rs := shardOf(bounds, out[i].to)
			ents[cntE[rs]] = out[i]
			cntE[rs]++
			if last[rs] != v32 {
				last[rs] = v32
				runs[cntR[rs]] = stageRun{from: v32, count: 1}
				cntR[rs]++
			} else {
				runs[cntR[rs]-1].count++
			}
		}
	}
}

// mergeRange assembles the inboxes of shard w's receiver range from the
// staging buckets every drain worker filled for it. Walking the sender
// shards in index order visits senders in ascending ID order (each
// bucket's runs already ascend), so the merged stream for every receiver
// is in exact (sender ID, send index) order — bit-identical to the
// sequential router at any worker count and any shard layout.
//
// The walk happens twice, mirroring the sequential router's two passes:
// pass 1 does the per-directed-edge bit accounting (run-length headers
// make "all packets on edge (from, to) this round" a contiguous scan) and
// counts deliveries per receiver; then the counts prefix-sum into offsets
// in the shard's flat parity array and pass 2 places the packets. Every
// write — counts, offsets, flat array, inbox views — lands in this
// shard's own memory; the only cross-worker reads are the staging slabs
// published at the drain barrier.
func (e *engine[O]) mergeRange(w int) {
	s := &e.routes[w]
	lo := s.lo
	s.msgs, s.bits, s.inflight, s.err, s.pan = 0, 0, 0, nil, nil
	defer func() {
		if v := recover(); v != nil {
			s.pan = newProcPanic(e.round, -1, v)
		}
	}()
	cnt := s.cnt
	clear(cnt)

	strict := e.cfg.mode == Congest
	budget := e.budget
	var inflight int64
	for dw := range e.drains {
		d := &e.drains[dw]
		ents := d.entSlab[d.offE[w]:d.offE[w+1]]
		runs := d.runSlab[d.offR[w]:d.offR[w+1]]
		base := 0
		for _, run := range runs {
			end := base + int(run.count)
			gen := s.senderGen
			s.senderGen++
			nt := 0 // receivers this sender touched, in send order
			for i := base; i < end; i++ {
				to := int(ents[i].to)
				idx := to - lo
				if s.stamp[idx] != gen {
					s.stamp[idx] = gen
					s.edgeBits[idx] = 0
					s.touched[nt] = int32(to)
					nt++
				}
				s.edgeBits[idx] += int64(ents[i].p.Bits)
				if e.done[to] {
					s.dropped++
					continue
				}
				cnt[idx]++
				inflight++
			}
			base = end
			from := int(run.from)
			for i := 0; i < nt; i++ {
				to := int(s.touched[i])
				sum := s.edgeBits[to-lo]
				if int(sum) > s.maxEdgeBits {
					s.maxEdgeBits = int(sum)
				}
				if budget > 0 && sum > int64(budget) {
					if strict {
						if s.err == nil || to < s.err.To {
							s.err = &BandwidthError{Round: e.round, From: from, To: to, Bits: int(sum), Budget: budget}
						}
					} else {
						s.violations++
					}
				}
			}
			if s.err != nil {
				// First violating sender in ID order (the same stop rule as
				// the sequential router); the run is about to abort.
				return
			}
		}
	}
	s.inflight = inflight

	// Prefix-sum into offsets and publish the inbox views, exactly as the
	// sequential router does.
	total := int32(0)
	for i := range cnt {
		s.off[i] = total
		total += cnt[i]
	}
	s.off[len(cnt)] = total
	flat := &s.flatA
	if e.round&1 == 1 {
		flat = &s.flatB
	}
	if cap(*flat) < int(total) {
		*flat = make([]Incoming, total+total/4)
	}
	dst := (*flat)[:total]
	for i := range cnt {
		e.next[lo+i] = dst[s.off[i]:s.off[i+1]:s.off[i+1]]
		cnt[i] = s.off[i] // pass-2 write cursor
	}
	if total == 0 {
		return
	}

	// Pass 2: place the delivered packets at their offsets, in the same
	// merged order pass 1 counted them.
	for dw := range e.drains {
		d := &e.drains[dw]
		ents := d.entSlab[d.offE[w]:d.offE[w+1]]
		runs := d.runSlab[d.offR[w]:d.offR[w+1]]
		base := 0
		for _, run := range runs {
			end := base + int(run.count)
			for i := base; i < end; i++ {
				to := int(ents[i].to)
				if e.done[to] {
					continue
				}
				idx := to - lo
				dst[cnt[idx]] = Incoming{From: run.from, Idx: ents[i].idx, P: ents[i].p}
				cnt[idx]++
			}
			base = end
		}
	}
}
