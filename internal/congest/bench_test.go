package congest_test

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// TestMain stamps the CPU topology into every benchmark record, next to
// the goos/goarch/cpu lines the testing package prints. The committed
// BENCH_* trajectory includes records from single-core containers, where
// the workers>1 rows measure pure dispatch overhead rather than scaling —
// the numcpu/gomaxprocs header is what keeps such a record from being
// mistaken for a multicore scaling curve. Emitted only when benchmarks
// are requested, so ordinary test runs stay quiet.
func TestMain(m *testing.M) {
	flag.Parse()
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		fmt.Printf("numcpu: %d\ngomaxprocs: %d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	os.Exit(m.Run())
}

// largeGraph caches the million-node benchmark instance across
// sub-benchmarks (generation itself takes seconds at this size).
var largeGraph *graph.Graph

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	if largeGraph == nil || largeGraph.N() != n {
		largeGraph = gen.ErdosRenyi(n, 4/float64(n), 1).G
	}
	return largeGraph
}

// slabFactory builds echo procs in place in one n-sized slab — the
// in-place construction pattern every library algorithm uses since the
// arena engine, so the benchmark measures the engine, not n heap procs.
func slabFactory(slab []echoProc, rounds int) congest.Factory[int64] {
	return func(ni congest.NodeInfo) congest.Proc[int64] {
		p := &slab[ni.ID]
		*p = echoProc{ni: ni, rounds: rounds}
		return p
	}
}

// warmRun executes one untimed run before b.ResetTimer so committed
// records measure the steady state. The first run in a fresh process pays
// one-time costs — page faults on the just-generated graph, first-touch
// zeroing of the run's large arrays, and for a reused Runner the whole
// buffer build — which at the small iteration counts the committed
// records use (-benchtime with 3 iterations) skew the mean badly: the
// pr7 record's first BenchmarkRouteOnly iteration ran 2.7× its steady
// state, and the RunnerReuse rows averaged the cold bind into the "warm"
// allocs/op.
func warmRun(b *testing.B, g *graph.Graph, slab []echoProc, rounds int, opts ...congest.Option) {
	b.Helper()
	if _, err := congest.Run(g, slabFactory(slab, rounds), opts...); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunLarge drives the engine end to end on a million-node
// sparse random graph (avg degree ≈ 4, ≈ 2·10⁶ edges): three rounds of
// broadcast traffic, ≈ 12·10⁶ routed messages per run. workers=1 is the
// sequential engine; the other sub-benchmarks exercise the sharded
// parallel routing path. Allocation counts are the headline: messages
// are value-typed packets, routing is CSR placement into per-shard flat
// arrays, rng streams seed in place, and procs build into one slab, so
// allocs/op is O(1) in both the message volume and (beyond the slab and
// the run's few backing arrays) the node count.
func BenchmarkRunLarge(b *testing.B) {
	g := benchGraph(b, 1_000_000)
	slab := make([]echoProc, g.N())
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			warmRun(b, g, slab, 2,
				congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := congest.Run(g, slabFactory(slab, 2),
					congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local))
				if err != nil {
					b.Fatal(err)
				}
				if res.Messages == 0 {
					b.Fatal("no traffic routed")
				}
			}
		})
	}
}

// BenchmarkRunnerReuse is BenchmarkRunLarge on one shared Runner — the
// serving pattern: graph-derived tables, flat inbox arrays, outbox slab,
// arena, and worker pool all amortized, so per-run setup drops to the
// proc slab and the result.
func BenchmarkRunnerReuse(b *testing.B) {
	g := benchGraph(b, 1_000_000)
	slab := make([]echoProc, g.N())
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			r := congest.NewRunner()
			defer r.Close()
			// Warm the Runner before the timer: the first run builds every
			// graph-derived buffer, which is exactly what this benchmark
			// exists to show is amortized away.
			warmRun(b, g, slab, 2,
				congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local),
				congest.WithRunner(r))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := congest.Run(g, slabFactory(slab, 2),
					congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local),
					congest.WithRunner(r))
				if err != nil {
					b.Fatal(err)
				}
				if res.Messages == 0 {
					b.Fatal("no traffic routed")
				}
			}
		})
	}
}

// BenchmarkSweepBatch measures what PR 5 is about: wall-clock throughput
// of a sweep of independent runs (here 8 seeds on a 100k-node sparse
// graph — the shape of one experiment repetition loop), sequential versus
// pipelined across a RunnerPool. parallel=1 is the exact sequential
// reference (one warm Runner, full worker budget); the other
// sub-benchmarks split GOMAXPROCS between concurrent runs, so on a
// ≥ 4-core machine the batch rows should show the multicore scaling
// curve (≈ #cores× up to memory bandwidth) at bit-identical results. On
// a single-core machine all rows degenerate to the sequential engine.
func BenchmarkSweepBatch(b *testing.B) {
	const (
		sweepN    = 100_000
		sweepJobs = 8
	)
	g := gen.ErdosRenyi(sweepN, 4/float64(sweepN), 1).G
	parallels := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		if p > 4 {
			parallels = append(parallels, 4)
		}
		parallels = append(parallels, p)
	}
	for _, par := range parallels {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			sums := make([]int64, sweepJobs)
			jobs := make([]congest.Job, sweepJobs)
			for j := range jobs {
				jobs[j] = func(r *congest.Runner, workers int) error {
					// Each job owns its proc slab — concurrent runs must
					// not share one. Both modes pay the same make, so the
					// comparison stays apples to apples.
					slab := make([]echoProc, g.N())
					res, err := congest.Run(g, slabFactory(slab, 2),
						congest.WithSeed(uint64(j+1)), congest.WithMode(congest.Local),
						congest.WithRunner(r), congest.WithWorkers(workers))
					if err != nil {
						return err
					}
					sums[j] = res.Messages
					return nil
				}
			}
			// One untimed batch warms the pool's Runners (and the OS pages
			// behind the shared graph) so the record measures steady state.
			if err := congest.RunBatch(par, jobs...); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := congest.RunBatch(par, jobs...); err != nil {
					b.Fatal(err)
				}
				for j, s := range sums {
					if s == 0 {
						b.Fatalf("job %d routed no traffic", j)
					}
				}
			}
		})
	}
}

// BenchmarkRouteOnly isolates the routing phase: one round in which
// every node broadcasts once, so step work is negligible next to the
// 2m ≈ 4·10⁶ message deliveries.
func BenchmarkRouteOnly(b *testing.B) {
	g := benchGraph(b, 1_000_000)
	slab := make([]echoProc, g.N())
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			warmRun(b, g, slab, 1,
				congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := congest.Run(g, slabFactory(slab, 1),
					congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
