package congest_test

import (
	"fmt"
	"runtime"
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

// largeGraph caches the million-node benchmark instance across
// sub-benchmarks (generation itself takes seconds at this size).
var largeGraph *graph.Graph

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	if largeGraph == nil || largeGraph.N() != n {
		largeGraph = gen.ErdosRenyi(n, 4/float64(n), 1).G
	}
	return largeGraph
}

// BenchmarkRunLarge drives the engine end to end on a million-node
// sparse random graph (avg degree ≈ 4, ≈ 2·10⁶ edges): three rounds of
// broadcast traffic, ≈ 12·10⁶ routed messages per run. workers=1 is the
// sequential engine; the other sub-benchmarks exercise the sharded
// parallel routing path. Allocation counts are the headline: messages
// are value-typed packets and routing is scratch-reuse only, so
// allocs/op is independent of the message volume (what remains is
// per-run setup: procs, rng streams, first-round inbox growth).
func BenchmarkRunLarge(b *testing.B) {
	g := benchGraph(b, 1_000_000)
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 2}
	}
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := congest.Run(g, factory,
					congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local))
				if err != nil {
					b.Fatal(err)
				}
				if res.Messages == 0 {
					b.Fatal("no traffic routed")
				}
			}
		})
	}
}

// BenchmarkRouteOnly isolates the routing phase: one round in which
// every node broadcasts once, so step work is negligible next to the
// 2m ≈ 4·10⁶ message deliveries.
func BenchmarkRouteOnly(b *testing.B) {
	g := benchGraph(b, 1_000_000)
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		return &echoProc{ni: ni, rounds: 1}
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := congest.Run(g, factory,
					congest.WithSeed(1), congest.WithWorkers(w), congest.WithMode(congest.Local)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
