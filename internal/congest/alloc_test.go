package congest_test

import (
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
)

// allocGraph is the mid-size instance the allocation gate runs on: 20k
// nodes, avg degree ≈ 4, ≈ 120k routed messages per run — big enough that
// any per-node or per-message allocation regression multiplies into the
// tens of thousands and trips the ceilings below immediately.
const allocGraphN = 20_000

// TestAllocationCeiling is the allocation-regression gate (wired into CI
// next to `make bench-compare` via `make alloc-gate`). It asserts three
// ceilings with testing.AllocsPerRun:
//
//   - a run on a reused Runner must stay O(1) in n: the proc slab and the
//     proc interface slice are recycled, so only the Outputs slice and
//     the run's constant-size bookkeeping (options, engine, result
//     header) remain. The ceiling (32) tolerates runtime noise but not a
//     per-node make slipping back in.
//   - the same run under WithRecycledResult must stay at or below 15
//     allocs — the PR 4 warm-Runner mark, now with the procs slab and
//     Outputs assembly recycled too: every remaining allocation is
//     constant-sized, none scales with n or the message volume.
//   - a transient run (no Runner) additionally pays the run-scoped
//     buffers, but still nothing per message and only O(1) slices sized
//     by n — far below one alloc per node.
//
// If this test starts failing after an engine change, something in the
// step/route/proc-construction path allocates again; see ROADMAP.md's
// allocation trajectory before raising a ceiling.
func TestAllocationCeiling(t *testing.T) {
	g := gen.ErdosRenyi(allocGraphN, 4/float64(allocGraphN), 1).G
	// The proc slab lives outside the measured loop, like every serving
	// caller's: the factory rebuilds procs in place each run.
	slab := make([]echoProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[int64] {
		p := &slab[ni.ID]
		*p = echoProc{ni: ni, rounds: 2}
		return p
	}

	// The ceilings are gated at every worker count, not just the
	// sequential engine: the parallel path's warm runs must be exactly as
	// allocation-clean (the staged drain/merge router appends into
	// Runner-owned buckets, and phase dispatch carries no per-run method
	// values), so workers=4 is held to the same 32/15 marks as workers=1.
	for _, workers := range []int{1, 4} {
		r := congest.NewRunner()
		run := func(opts ...congest.Option) {
			res, err := congest.Run(g, factory,
				append([]congest.Option{congest.WithSeed(1), congest.WithWorkers(workers)}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages == 0 {
				t.Fatal("no traffic routed")
			}
		}

		run(congest.WithRunner(r)) // warm the Runner's buffers once
		reused := testing.AllocsPerRun(3, func() { run(congest.WithRunner(r)) })
		t.Logf("workers=%d allocs/run on a warm Runner: %.0f", workers, reused)
		if reused > 32 {
			t.Errorf("workers=%d reused-Runner run allocates %.0f times (ceiling 32): per-node or per-message allocation crept back into the engine", workers, reused)
		}

		run(congest.WithRunner(r), congest.WithRecycledResult())
		recycled := testing.AllocsPerRun(3, func() { run(congest.WithRunner(r), congest.WithRecycledResult()) })
		t.Logf("workers=%d allocs/run on a warm Runner with recycled results: %.0f", workers, recycled)
		if recycled > 15 {
			t.Errorf("workers=%d recycled-result run allocates %.0f times (ceiling 15, the PR 4 warm mark): procs/Outputs reuse regressed", workers, recycled)
		}

		transient := testing.AllocsPerRun(3, func() { run() })
		t.Logf("workers=%d allocs/run transient: %.0f", workers, transient)
		if ceiling := float64(allocGraphN) / 100; transient > ceiling {
			t.Errorf("workers=%d transient run allocates %.0f times (ceiling %.0f = n/100): run setup is no longer slab-based", workers, transient, ceiling)
		}
		r.Close()
	}
}
