package congest_test

import (
	"testing"

	"arbods/internal/congest"
	"arbods/internal/gen"
)

// allocGraph is the mid-size instance the allocation gate runs on: 20k
// nodes, avg degree ≈ 4, ≈ 120k routed messages per run — big enough that
// any per-node or per-message allocation regression multiplies into the
// tens of thousands and trips the ceilings below immediately.
const allocGraphN = 20_000

// TestAllocationCeiling is the allocation-regression gate (wired into CI
// next to `make bench-compare` via `make alloc-gate`). It asserts two
// ceilings with testing.AllocsPerRun:
//
//   - a run on a reused Runner must stay O(1) in n: procs slab + proc
//     interface slice + result assembly, nothing per node, nothing per
//     message. The ceiling (64) is ~3× the measured steady state, so it
//     tolerates runtime noise but not a per-node make slipping back in.
//   - a transient run (no Runner) additionally pays the run-scoped
//     buffers, but still nothing per message and only O(1) slices sized
//     by n — far below one alloc per node.
//
// If this test starts failing after an engine change, something in the
// step/route/proc-construction path allocates again; see ROADMAP.md's
// allocation trajectory before raising a ceiling.
func TestAllocationCeiling(t *testing.T) {
	g := gen.ErdosRenyi(allocGraphN, 4/float64(allocGraphN), 1).G
	factory := func(slab []echoProc) congest.Factory[int64] {
		return func(ni congest.NodeInfo) congest.Proc[int64] {
			p := &slab[ni.ID]
			*p = echoProc{ni: ni, rounds: 2}
			return p
		}
	}

	r := congest.NewRunner()
	defer r.Close()
	run := func(opts ...congest.Option) {
		slab := make([]echoProc, g.N())
		res, err := congest.Run(g, factory(slab),
			append([]congest.Option{congest.WithSeed(1), congest.WithWorkers(1)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages == 0 {
			t.Fatal("no traffic routed")
		}
	}

	run(congest.WithRunner(r)) // warm the Runner's buffers once
	reused := testing.AllocsPerRun(3, func() { run(congest.WithRunner(r)) })
	t.Logf("allocs/run on a warm Runner: %.0f", reused)
	if reused > 64 {
		t.Errorf("reused-Runner run allocates %.0f times (ceiling 64): per-node or per-message allocation crept back into the engine", reused)
	}

	transient := testing.AllocsPerRun(3, func() { run() })
	t.Logf("allocs/run transient: %.0f", transient)
	if ceiling := float64(allocGraphN) / 100; transient > ceiling {
		t.Errorf("transient run allocates %.0f times (ceiling %.0f = n/100): run setup is no longer slab-based", transient, ceiling)
	}
}
