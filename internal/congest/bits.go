package congest

import "math/bits"

// MsgTagBits is the bit cost charged for a message's type tag. With fewer
// than 16 message types in the library, 4 bits suffice.
const MsgTagBits = 4

// BitsUint returns the number of bits needed to encode x (at least 1).
func BitsUint(x uint64) int {
	if x == 0 {
		return 1
	}
	return bits.Len64(x)
}

// BitsInt returns the number of bits needed to encode x with a sign bit.
func BitsInt(x int64) int {
	if x < 0 {
		x = -x
	}
	return 1 + BitsUint(uint64(x))
}
