package congest

import "math/bits"

// MsgTagBits is the bit cost charged for a message's type tag. With fewer
// than 16 message types in the library, 4 bits suffice.
//
// This is the escape hatch if a future algorithm needs a 16th library
// message type: widen MsgTagBits (every message's accounted size then
// grows by the extra header bits — the wire round-trip tests in
// mds/baseline and the pinned transcripts will surface the accounting
// change, which must be accepted deliberately, not silently). The
// compile-time check in packet.go and TestTagSpaceHeadroom guard the
// current budget.
const MsgTagBits = 4

// BitsUint returns the number of bits needed to encode x (at least 1).
func BitsUint(x uint64) int {
	if x == 0 {
		return 1
	}
	return bits.Len64(x)
}

// BitsInt returns the number of bits needed to encode x with a sign bit.
func BitsInt(x int64) int {
	if x < 0 {
		x = -x
	}
	return 1 + BitsUint(uint64(x))
}
