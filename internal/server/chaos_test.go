package server_test

// Chaos suite: deterministic fault injection (internal/faultinject)
// driven through Config.Faults. Every failure here is armed, not raced —
// a panic at an exact round, a snapshot write that fails on the exact
// upload, an admission that overflows on the exact request — so the
// suite pins the server's degraded behavior as precisely as the happy
// path's golden receipt pins its answers.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"arbods"
	"arbods/internal/faultinject"
	"arbods/internal/server"
)

// uploadGraph posts g in the text format and returns the cached entry.
func uploadGraph(t *testing.T, base string, g *arbods.Graph) server.GraphInfo {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs", "text/plain", bytes.NewReader(encodeGraph(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	return info
}

// getJSON fetches url, decodes into out when non-nil, and returns the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// captureLog returns a Logf sink plus a reader over everything logged.
func captureLog() (func(string, ...any), func() string) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(&buf, format+"\n", args...)
		mu.Unlock()
	}
	read := func() string {
		mu.Lock()
		defer mu.Unlock()
		return buf.String()
	}
	return logf, read
}

// checkRetryAfter asserts the adaptive Retry-After hint: an integer
// second count inside the server's [1, 30] clamp. The exact value
// depends on live queue depth and latency history, so the assertion is
// the range, not a constant.
func checkRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After = %q, want integer seconds", ra)
	}
	if secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %d, want within [1, 30]", secs)
	}
}

// errBody decodes the uniform error envelope.
func errBody(t *testing.T, body []byte) (msg, code string) {
	t.Helper()
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error envelope: %v\n%s", err, body)
	}
	return eb.Error, eb.Code
}

// TestSolvePanicIsolation arms a proc panic at round 2 and requires the
// blast radius to be exactly one request: 500 with code proc_panic and a
// structured log record, the poisoned Runner replaced at checkin, and the
// very next identical request answered with the byte-identical receipt a
// fault-free server produces.
func TestSolvePanicIsolation(t *testing.T) {
	reg := faultinject.New(1)
	reg.Arm("congest.step", faultinject.Fault{Round: 2, Panic: "chaos: injected proc panic"})
	logf, logs := captureLog()
	_, ts := newTestServer(t, server.Config{PoolSize: 1, Faults: reg, Logf: logf})

	req := server.SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 7}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d: %s", resp.StatusCode, body)
	}
	msg, code := errBody(t, body)
	if code != "proc_panic" || !strings.Contains(msg, "round 2") {
		t.Fatalf("panicking solve: code %q, msg %q", code, msg)
	}
	if reg.Hits("congest.step") == 0 {
		t.Fatal("congest.step seam never reached")
	}

	// The Runner swap happens in the handler's deferred Put, which may
	// still be running when the client has its response — poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for serverStats(t, ts.URL).RunnersReplaced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("poisoned Runner never replaced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := serverStats(t, ts.URL)
	if st.Panics != 1 || st.RunnersReplaced != 1 || st.Solves != 0 {
		t.Fatalf("stats after panic: panics=%d replaced=%d solves=%d", st.Panics, st.RunnersReplaced, st.Solves)
	}
	rec := logs()
	if !strings.Contains(rec, "event=proc_panic") || !strings.Contains(rec, "round=2") ||
		!strings.Contains(rec, "stack=") {
		t.Fatalf("missing structured panic record in:\n%s", rec)
	}

	// Recovery: the fault is spent, the replacement Runner serves, and the
	// answer matches a server that never saw a panic, byte for byte.
	_, ref := newTestServer(t, server.Config{PoolSize: 1})
	_, want, _ := solveRaw(t, ref.URL, req)
	_, got, _ := solveRaw(t, ts.URL, req)
	if !bytes.Equal(want.Receipt, got.Receipt) {
		t.Fatalf("post-panic receipt diverges from fault-free receipt:\n%s\nvs\n%s", got.Receipt, want.Receipt)
	}
}

// TestSnapshotPersistRestart is the in-process half of the crash-safety
// story (cmd/arbods-server's crash test covers the SIGKILL half): a second
// server on the same DataDir serves the first server's upload from its
// snapshot — no re-upload, no builds, byte-identical receipt.
func TestSnapshotPersistRestart(t *testing.T) {
	dir := t.TempDir()
	g := arbods.Grid(12, 12).G
	_, ts1 := newTestServer(t, server.Config{DataDir: dir})
	info := uploadGraph(t, ts1.URL, g)
	if !info.New {
		t.Fatalf("first upload not new: %+v", info)
	}
	req := server.SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 11}
	_, out1, _ := solveRaw(t, ts1.URL, req)

	_, ts2 := newTestServer(t, server.Config{DataDir: dir})
	var meta server.GraphInfo
	if code := getJSON(t, ts2.URL+"/v1/graphs/"+info.ID, &meta); code != http.StatusOK {
		t.Fatalf("restored graph not served: status %d", code)
	}
	if meta.Nodes != info.Nodes || meta.Edges != info.Edges || meta.Alpha != info.Alpha {
		t.Fatalf("restored metadata diverges: %+v vs %+v", meta, info)
	}
	st := serverStats(t, ts2.URL)
	if st.SnapshotsLoaded != 1 || st.Builds != 0 || st.Graphs != 1 {
		t.Fatalf("restore stats: loaded=%d builds=%d graphs=%d", st.SnapshotsLoaded, st.Builds, st.Graphs)
	}
	_, out2, _ := solveRaw(t, ts2.URL, req)
	if !bytes.Equal(out1.Receipt, out2.Receipt) {
		t.Fatalf("receipt across restart diverges:\n%s\nvs\n%s", out1.Receipt, out2.Receipt)
	}
}

// TestSnapshotCorruptRecovery flips one byte in a snapshot blob between
// two server lifetimes. The restarted server must detect it (checksum),
// log it, drop it, refuse to serve the id — and heal completely when the
// graph is uploaded again.
func TestSnapshotCorruptRecovery(t *testing.T) {
	dir := t.TempDir()
	g := arbods.Grid(9, 9).G
	_, ts1 := newTestServer(t, server.Config{DataDir: dir})
	info := uploadGraph(t, ts1.URL, g)

	blob := filepath.Join(dir, "graphs", strings.TrimPrefix(info.ID, "sha256:")+".csr")
	data, err := os.ReadFile(blob)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(blob, data, 0o644); err != nil {
		t.Fatal(err)
	}

	logf, logs := captureLog()
	_, ts2 := newTestServer(t, server.Config{DataDir: dir, Logf: logf})
	st := serverStats(t, ts2.URL)
	if st.SnapshotErrors < 1 || st.SnapshotsLoaded != 0 || st.Graphs != 0 {
		t.Fatalf("corrupt restore stats: errors=%d loaded=%d graphs=%d", st.SnapshotErrors, st.SnapshotsLoaded, st.Graphs)
	}
	if !strings.Contains(logs(), "event=snapshot_corrupt") {
		t.Fatalf("missing snapshot_corrupt record in:\n%s", logs())
	}
	if code := getJSON(t, ts2.URL+"/v1/graphs/"+info.ID, nil); code != http.StatusNotFound {
		t.Fatalf("corrupt graph served: status %d", code)
	}
	if _, err := os.Stat(blob); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob not removed: %v", err)
	}

	// Re-upload rebuilds both the cache entry and the snapshot.
	re := uploadGraph(t, ts2.URL, g)
	if !re.New || re.ID != info.ID {
		t.Fatalf("re-upload after corruption: %+v", re)
	}
	if _, err := os.Stat(blob); err != nil {
		t.Fatalf("snapshot not rewritten: %v", err)
	}
}

// TestSnapshotWriteFailure arms a blob-write failure: the upload must
// still answer 200 (persistence is a durability upgrade, never a serving
// dependency), the failure must be counted, and a restart must honestly
// not have the graph.
func TestSnapshotWriteFailure(t *testing.T) {
	reg := faultinject.New(3)
	reg.Arm("persist.writeBlob", faultinject.Fault{Round: -1, Err: faultinject.ErrInjected})
	dir := t.TempDir()
	logf, logs := captureLog()
	_, ts1 := newTestServer(t, server.Config{DataDir: dir, Faults: reg, Logf: logf})

	info := uploadGraph(t, ts1.URL, arbods.Grid(8, 8).G)
	st := serverStats(t, ts1.URL)
	if st.SnapshotErrors != 1 || st.SnapshotSaves != 0 {
		t.Fatalf("write-failure stats: errors=%d saves=%d", st.SnapshotErrors, st.SnapshotSaves)
	}
	if reg.Hits("persist.writeBlob") != 1 {
		t.Fatalf("persist.writeBlob hits = %d", reg.Hits("persist.writeBlob"))
	}
	if !strings.Contains(logs(), "event=snapshot_error") {
		t.Fatalf("missing snapshot_error record in:\n%s", logs())
	}
	// The graph serves from memory regardless.
	solveRaw(t, ts1.URL, server.SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 2})

	// A restart has nothing on disk to restore.
	_, ts2 := newTestServer(t, server.Config{DataDir: dir})
	if code := getJSON(t, ts2.URL+"/v1/graphs/"+info.ID, nil); code != http.StatusNotFound {
		t.Fatalf("unsnapshotted graph served after restart: status %d", code)
	}
}

// TestHotGraphShed pins the per-graph fairness cap: while a slowed
// streaming solve holds a graph's only in-flight slot, a second request
// on the same graph sheds with 429 hot_graph — even though the pool has
// a free Runner — and both the shed counter and the shed histogram see
// it. The held solve finishes untouched.
func TestHotGraphShed(t *testing.T) {
	reg := faultinject.New(5)
	// Slow every round after the first: once request A's round-0 progress
	// line arrives, A stays mid-run for ≥400ms per remaining round —
	// plenty for B's shed round trip.
	reg.Arm("congest.step", faultinject.Fault{Round: -1, After: 1, Times: 1000, Delay: 400 * time.Millisecond})
	_, ts := newTestServer(t, server.Config{PoolSize: 2, MaxPerGraph: 1, Faults: reg})

	aBody, err := json.Marshal(server.SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 3, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	aResp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(aBody))
	if err != nil {
		t.Fatal(err)
	}
	defer aResp.Body.Close()
	br := bufio.NewReader(aResp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first, []byte(`"round"`)) {
		t.Fatalf("first stream line: %s", first)
	}

	// B: same graph, different seed (a solve-cache hit would answer before
	// the gate). Must shed, not queue.
	resp, body := postJSON(t, ts.URL+"/v1/solve",
		server.SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 4})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hot-graph request: status %d: %s", resp.StatusCode, body)
	}
	if _, code := errBody(t, body); code != "hot_graph" {
		t.Fatalf("hot-graph code = %q", code)
	}
	checkRetryAfter(t, resp)
	st := serverStats(t, ts.URL)
	if st.Shed != 1 || st.Rejected != 0 {
		t.Fatalf("shed stats: shed=%d rejected=%d", st.Shed, st.Rejected)
	}
	var m server.Metrics
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.ShedMicros.Count != 1 {
		t.Fatalf("shedMicros count = %d", m.ShedMicros.Count)
	}

	// A runs to a normal, verified completion.
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	var final struct {
		Result *rawSolveResponse `json:"result"`
	}
	for _, line := range bytes.Split(bytes.TrimSpace(rest), []byte("\n")) {
		if bytes.Contains(line, []byte(`"result"`)) {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatalf("bad result line %s: %v", line, err)
			}
		}
	}
	if final.Result == nil || len(final.Result.Receipt) == 0 {
		t.Fatalf("held solve did not finish cleanly:\n%s%s", first, rest)
	}
}

// TestAdaptiveRetryAfter pins that the Retry-After hint actually adapts:
// after an injected slow solve inflates the latency history, a shed
// request is told to wait at least the mean solve time instead of the
// old constant "1".
func TestAdaptiveRetryAfter(t *testing.T) {
	reg := faultinject.New(3)
	// One slow round pushes the mean solve latency past 1s…
	reg.Arm("congest.step", faultinject.Fault{Round: -1, Delay: 1100 * time.Millisecond})
	_, ts := newTestServer(t, server.Config{PoolSize: 1, Faults: reg})
	solveRaw(t, ts.URL, server.SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 6})

	// …so the next shed must hint ⌈(queued+1)·mean/workers⌉ ≥ 2 seconds.
	reg.Arm("server.admit", faultinject.Fault{Round: -1, Err: faultinject.ErrInjected})
	resp, body := postJSON(t, ts.URL+"/v1/solve",
		server.SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 7})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowed solve: status %d: %s", resp.StatusCode, body)
	}
	checkRetryAfter(t, resp)
	if secs, _ := strconv.Atoi(resp.Header.Get("Retry-After")); secs < 2 {
		t.Fatalf("Retry-After = %d after a >1s mean solve, want >= 2", secs)
	}
}

// TestQueueFullShed injects an admission overflow: the request answers
// 429 at_capacity with Retry-After, counts in both rejected and shed, and
// the next request (fault spent) serves normally.
func TestQueueFullShed(t *testing.T) {
	reg := faultinject.New(2)
	reg.Arm("server.admit", faultinject.Fault{Round: -1, Err: faultinject.ErrInjected})
	_, ts := newTestServer(t, server.Config{PoolSize: 1, Faults: reg})

	req := server.SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 5}
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowed solve: status %d: %s", resp.StatusCode, body)
	}
	if _, code := errBody(t, body); code != "at_capacity" {
		t.Fatalf("overflow code = %q", code)
	}
	checkRetryAfter(t, resp)
	st := serverStats(t, ts.URL)
	if st.Rejected != 1 || st.Shed != 1 || st.Solves != 0 {
		t.Fatalf("overflow stats: rejected=%d shed=%d solves=%d", st.Rejected, st.Shed, st.Solves)
	}

	solveRaw(t, ts.URL, req)
	if st := serverStats(t, ts.URL); st.Solves != 1 {
		t.Fatalf("post-overflow solves = %d", st.Solves)
	}
}

// TestReadyzDrain pins the readiness split: /readyz flips to 503 the
// moment a drain begins while /healthz and every serving endpoint keep
// answering — the load balancer leaves, in-flight clients finish.
func TestReadyzDrain(t *testing.T) {
	s, ts := newTestServer(t, server.Config{PoolSize: 1})
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", code)
	}

	s.BeginDrain()
	var rb struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rb); code != http.StatusServiceUnavailable || rb.Status != "draining" {
		t.Fatalf("/readyz during drain: %d %q", code, rb.Status)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz during drain: %d", code)
	}
	// Draining sheds nothing by itself: in-flight and late solves finish.
	solveRaw(t, ts.URL, server.SolveRequest{Graph: "spec:cycle:n=32", Algorithm: "thm1.1", Seed: 6})
	st := serverStats(t, ts.URL)
	if !st.Draining || st.Solves != 1 {
		t.Fatalf("drain stats: draining=%v solves=%d", st.Draining, st.Solves)
	}
	s.BeginDrain() // idempotent
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after second BeginDrain: %d", code)
	}
}
