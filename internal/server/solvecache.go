package server

import (
	"container/list"
	"sync"

	"arbods"
)

// solveKey identifies one solve answer. Every run-shaping request field
// participates — graph content hash, algorithm, all numeric parameters,
// seed, mode, round cap — after normalize has filled the defaults in, so
// "eps omitted" and "eps: 0.2" share an entry. Presentation fields
// (IncludeDS, Stream) are deliberately absent: the cache stores the full
// answer and the handler shapes the response.
type solveKey struct {
	graphID   string
	algorithm string
	alpha     int
	eps       float64
	t         int
	k         int
	seed      uint64
	mode      string
	maxRounds int
}

// solveAnswer is one cached solve result: the verification receipt and
// the dominating set, both detached from any Runner. Entries are shared
// across responses and must be treated as immutable.
type solveAnswer struct {
	receipt *arbods.Receipt
	ds      []int
}

type solveEntry struct {
	key    solveKey
	answer solveAnswer
	elem   *list.Element
}

// solveCache is the response-level LRU: solves are deterministic per
// (graph, algorithm, parameters, seed) — randomized algorithms included,
// since per-node streams derive from (seed, nodeID) — so a repeated
// request can skip the engine entirely and return the byte-identical
// receipt. Keyed by solveKey, bounded by entry count, LRU-evicted.
type solveCache struct {
	mu     sync.Mutex
	cap    int
	m      map[solveKey]*solveEntry
	lru    *list.List // front = most recently used; values are *solveEntry
	hits   int64
	misses int64
}

func newSolveCache(capacity int) *solveCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &solveCache{
		cap: capacity,
		m:   make(map[solveKey]*solveEntry),
		lru: list.New(),
	}
}

// get returns the cached answer for key, counting a hit or miss.
func (c *solveCache) get(key solveKey) (solveAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return solveAnswer{}, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	return e.answer, true
}

// put stores an answer (first writer wins on a race; the answers are
// identical by the determinism contract, so it does not matter which).
func (c *solveCache) put(key solveKey, a solveAnswer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &solveEntry{key: key, answer: a}
	e.elem = c.lru.PushFront(e)
	c.m[key] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		ev := back.Value.(*solveEntry)
		c.lru.Remove(back)
		delete(c.m, ev.key)
	}
}

// counters returns the cumulative hit/miss counts.
func (c *solveCache) counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
