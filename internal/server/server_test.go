package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"arbods"
	"arbods/internal/server"
)

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func encodeGraph(t *testing.T, g *arbods.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// rawSolveResponse shadows server.SolveResponse to capture the receipt's
// raw bytes for byte-identity assertions.
type rawSolveResponse struct {
	Graph       server.GraphInfo `json:"graph"`
	CacheHit    bool             `json:"cacheHit"`
	SolveCached bool             `json:"solveCached"`
	Seed        uint64           `json:"seed"`
	DS          []int            `json:"ds"`
	Receipt     json.RawMessage  `json:"receipt"`
}

func solveRaw(t *testing.T, base string, req server.SolveRequest) (*http.Response, rawSolveResponse, []byte) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	var out rawSolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("solve: %v\n%s", err, body)
	}
	return resp, out, body
}

// goldenReceipt pins the full receipt JSON of one canonical request:
// thm1.1 on the 16-node path, α=1, ε=0.25, seed=1. The receipt is
// deterministic plain data, so this golden breaks only when the
// algorithm's transcript or the Receipt schema changes — both events a
// human should acknowledge by updating it.
const goldenReceipt = `{
  "algorithm": "weighted-deterministic",
  "nodes": 16,
  "edges": 15,
  "setSize": 15,
  "setWeight": 15,
  "packingSum": 5.333333333333332,
  "certifiedRatio": 2.8125000000000004,
  "guaranteeFactor": 3.75,
  "alpha": 1,
  "eps": 0.25,
  "rounds": 4,
  "messages": 45,
  "totalBits": 298,
  "checks": [
    {
      "name": "domination",
      "pass": true,
      "detail": "all 16 nodes dominated by the 15-node set"
    },
    {
      "name": "packing",
      "pass": true,
      "detail": "dual packing feasible; Σx=5.33333 lower-bounds OPT"
    },
    {
      "name": "ratio",
      "pass": true,
      "detail": "w(S)=15 ≤ 3.75·Σx=20 (α-bound holds)"
    }
  ],
  "ok": true
}`

func TestUploadSolveReceiptGolden(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 2})
	g := arbods.Path(16).G

	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", bytes.NewReader(encodeGraph(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	var info server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !info.New || !strings.HasPrefix(info.ID, "sha256:") {
		t.Fatalf("upload: status %d info %+v", resp.StatusCode, info)
	}
	if info.Nodes != 16 || info.Edges != 15 || info.Alpha != 1 {
		t.Fatalf("upload metadata wrong: %+v", info)
	}

	_, out, _ := solveRaw(t, ts.URL, server.SolveRequest{
		Graph: info.ID, Algorithm: "thm1.1", Alpha: 1, Eps: 0.25, Seed: 1, IncludeDS: true,
	})
	if !out.CacheHit {
		t.Fatal("solve by uploaded id must hit the CSR cache")
	}
	var rec arbods.Receipt
	if err := json.Unmarshal(out.Receipt, &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.OK {
		t.Fatalf("receipt not OK: %s", out.Receipt)
	}
	set := make([]bool, g.N())
	for _, v := range out.DS {
		set[v] = true
	}
	if und := arbods.IsDominatingSet(g, set); len(und) > 0 {
		t.Fatalf("returned DS leaves %d nodes undominated", len(und))
	}

	var got, want bytes.Buffer
	if err := json.Indent(&got, out.Receipt, "", "  "); err != nil {
		t.Fatal(err)
	}
	if err := json.Indent(&want, []byte(goldenReceipt), "", "  "); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("receipt deviates from golden:\n--- got\n%s\n--- want\n%s", got.String(), want.String())
	}
}

func TestUploadDedupAndMeta(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1})
	raw := encodeGraph(t, arbods.Star(10).G)

	var first server.GraphInfo
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !first.New {
		t.Fatal("first upload not marked new")
	}

	// Same graph with comments and reordered weight lines hashes the same:
	// canonicalization runs before hashing.
	commented := append([]byte("# a comment\n"), raw...)
	var second server.GraphInfo
	resp, err = http.Post(ts.URL+"/v1/graphs", "text/plain", bytes.NewReader(commented))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if second.New || second.ID != first.ID {
		t.Fatalf("re-upload not deduplicated: %+v vs %+v", first, second)
	}

	meta, err := http.Get(ts.URL + "/v1/graphs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer meta.Body.Close()
	if meta.StatusCode != http.StatusOK {
		t.Fatalf("meta: status %d", meta.StatusCode)
	}
	list, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var infos []server.GraphInfo
	if err := json.NewDecoder(list.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != first.ID {
		t.Fatalf("list: %+v", infos)
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1})
	req := server.SolveRequest{Graph: "spec:forest:n=120,k=2,seed=3", Algorithm: "thm1.1", Seed: 1}

	_, first, _ := solveRaw(t, ts.URL, req)
	if first.CacheHit {
		t.Fatal("first spec solve must be a cache miss (build required)")
	}
	_, second, _ := solveRaw(t, ts.URL, req)
	if !second.CacheHit {
		t.Fatal("second spec solve must hit the CSR cache")
	}
	if second.Graph.ID != first.Graph.ID {
		t.Fatalf("spec resolved to different ids: %s vs %s", first.Graph.ID, second.Graph.ID)
	}
	// The spec default α rides the generator's certified bound.
	if first.Graph.Alpha != 2 {
		t.Fatalf("forest spec alpha = %d, want the generator bound 2", first.Graph.Alpha)
	}

	resp, body := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{Graph: first.Graph.ID, Seed: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve by id: %d %s", resp.StatusCode, body)
	}

	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats server.Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 1 || stats.CacheHits != 2 {
		t.Fatalf("counters: hits=%d misses=%d, want 2/1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.Solves != 3 || stats.Graphs != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestConcurrentClientsDeterministic(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 4})
	req := server.SolveRequest{
		Graph: "spec:ba:n=300,m=3,seed=9", Algorithm: "thm1.2", Alpha: 3, T: 2, Seed: 42,
	}
	// Warm the graph cache so every concurrent request takes the hit path.
	_, _, _ = solveRaw(t, ts.URL, req)

	const clients = 12
	receipts := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := range receipts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			var out rawSolveResponse
			if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
				t.Error(err)
				return
			}
			receipts[i] = out.Receipt
		}()
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(receipts[0], receipts[i]) {
			t.Fatalf("client %d receipt differs:\n%s\nvs\n%s", i, receipts[0], receipts[i])
		}
	}
}

func TestStreamingSolve(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1})
	body, err := json.Marshal(server.SolveRequest{
		Graph: "spec:grid:r=10,c=10", Algorithm: "thm1.1", Alpha: 2, Seed: 1, Stream: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var rounds int
	var final struct {
		Result *rawSolveResponse `json:"result"`
	}
	lastRound := -1
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case probe["round"] != nil:
			var pl struct {
				Round int `json:"round"`
			}
			if err := json.Unmarshal(line, &pl); err != nil {
				t.Fatal(err)
			}
			if pl.Round != lastRound+1 {
				t.Fatalf("rounds out of order: %d after %d", pl.Round, lastRound)
			}
			lastRound = pl.Round
			rounds++
		case probe["result"] != nil:
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected line %s", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final.Result == nil {
		t.Fatal("stream ended without a result line")
	}
	var rec arbods.Receipt
	if err := json.Unmarshal(final.Result.Receipt, &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.OK || rounds != rec.Rounds {
		t.Fatalf("streamed %d rounds, receipt says %d (ok=%v)", rounds, rec.Rounds, rec.OK)
	}

	// The streamed receipt must carry the same content as the plain one
	// (plain responses are indented, stream lines compact — compare
	// compacted).
	_, plain, _ := solveRaw(t, ts.URL, server.SolveRequest{
		Graph: "spec:grid:r=10,c=10", Algorithm: "thm1.1", Alpha: 2, Seed: 1,
	})
	var cPlain, cStream bytes.Buffer
	if err := json.Compact(&cPlain, plain.Receipt); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&cStream, final.Result.Receipt); err != nil {
		t.Fatal(err)
	}
	if cPlain.String() != cStream.String() {
		t.Fatalf("streamed and plain receipts differ:\n%s\nvs\n%s", cPlain.String(), cStream.String())
	}
}

func TestCorpusGraphs(t *testing.T) {
	dir := t.TempDir()
	g := arbods.Cycle(30).G
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ring.graph"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, server.Config{PoolSize: 1, CorpusDir: dir})

	req := server.SolveRequest{Graph: "corpus:ring.graph", Algorithm: "thm1.1", Alpha: 2, Seed: 5}
	_, first, _ := solveRaw(t, ts.URL, req)
	if first.CacheHit {
		t.Fatal("first corpus solve must build")
	}
	_, second, _ := solveRaw(t, ts.URL, req)
	if !second.CacheHit || second.Graph.ID != first.Graph.ID {
		t.Fatalf("corpus repeat not cached: %+v", second)
	}

	// Traversal and unknown names are rejected without touching the fs.
	for _, bad := range []string{"corpus:../secret", "corpus:a/b", "corpus:missing.graph"} {
		resp, _ := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{Graph: bad, Seed: 1})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", bad, resp.StatusCode)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1, MaxUploadBytes: 256})
	cases := []struct {
		name   string
		req    server.SolveRequest
		status int
		code   string
	}{
		{"missing graph", server.SolveRequest{}, http.StatusBadRequest, "bad_request"},
		{"bare ref", server.SolveRequest{Graph: "nope"}, http.StatusBadRequest, "bad_request"},
		{"unknown id", server.SolveRequest{Graph: "sha256:" + strings.Repeat("0", 64)}, http.StatusNotFound, "not_found"},
		{"bad spec", server.SolveRequest{Graph: "spec:warp:n=1"}, http.StatusBadRequest, "bad_request"},
		{"unknown algorithm", server.SolveRequest{Graph: "spec:path:n=10", Algorithm: "thm9.9"}, http.StatusBadRequest, "run_failed"},
		{"bad mode", server.SolveRequest{Graph: "spec:path:n=10", Mode: "quantum"}, http.StatusBadRequest, "bad_request"},
		{"invalid params", server.SolveRequest{Graph: "spec:path:n=10", Algorithm: "thm1.1", Eps: 7}, http.StatusBadRequest, "run_failed"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/solve", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: malformed error body %s", tc.name, body)
		}
		if eb.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, eb.Code, tc.code)
		}
	}

	// Unknown request fields are rejected, not silently ignored.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"graph":"spec:path:n=10","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}

	// Upload cap: a graph bigger than MaxUploadBytes is refused.
	big := encodeGraph(t, arbods.Grid(20, 20).G)
	resp, err = http.Post(ts.URL+"/v1/graphs", "text/plain", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", resp.StatusCode)
	}
}

func TestLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1, MaxCachedGraphs: 1})
	a := server.SolveRequest{Graph: "spec:path:n=40", Seed: 1}
	b := server.SolveRequest{Graph: "spec:cycle:n=40", Seed: 1}

	_, ra, _ := solveRaw(t, ts.URL, a)
	_, _, _ = solveRaw(t, ts.URL, b) // evicts a
	_, ra2, _ := solveRaw(t, ts.URL, a)
	if ra2.CacheHit {
		t.Fatal("evicted graph reported as cache hit")
	}
	if ra2.Graph.ID != ra.Graph.ID {
		t.Fatal("rebuilt spec changed id")
	}

	// An evicted graph's id dangles: by-id lookup 404s (specs rebuild by
	// name; uploads would have to be re-uploaded).
	_, _, _ = solveRaw(t, ts.URL, b) // evicts a again
	resp, _ := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{Graph: ra.Graph.ID, Seed: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted id: status %d, want 404", resp.StatusCode)
	}
}

func serverStats(t *testing.T, base string) server.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestSolveCacheHit pins the response-level cache: a repeated identical
// solve is answered from the cache — no engine run — with the
// byte-identical receipt and dominating set, and the hit/miss counters
// move accordingly.
func TestSolveCacheHit(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1})
	req := server.SolveRequest{
		Graph: "spec:cycle:n=60", Algorithm: "thm1.1", Seed: 7, IncludeDS: true,
	}

	_, first, _ := solveRaw(t, ts.URL, req)
	if first.SolveCached {
		t.Fatal("first solve claims a cached answer")
	}
	_, second, _ := solveRaw(t, ts.URL, req)
	if !second.SolveCached {
		t.Fatal("repeated identical solve did not hit the solve cache")
	}
	if !bytes.Equal(first.Receipt, second.Receipt) {
		t.Fatalf("cached receipt differs:\n%s\nvs\n%s", first.Receipt, second.Receipt)
	}
	if len(first.DS) == 0 || !slices.Equal(first.DS, second.DS) {
		t.Fatalf("cached DS differs: %v vs %v", first.DS, second.DS)
	}

	// An equivalent request spelled with explicit defaults shares the
	// entry: keys are built after normalization.
	_, spelled, _ := solveRaw(t, ts.URL, server.SolveRequest{
		Graph: "spec:cycle:n=60", Algorithm: "thm1.1", Alpha: first.Graph.Alpha,
		Eps: 0.2, T: 2, K: 2, Mode: "congest", Seed: 7, IncludeDS: true,
	})
	if !spelled.SolveCached || !bytes.Equal(first.Receipt, spelled.Receipt) {
		t.Fatal("normalized-equivalent request missed the solve cache")
	}
	// A different seed is a different answer, not a hit.
	_, other, _ := solveRaw(t, ts.URL, server.SolveRequest{
		Graph: "spec:cycle:n=60", Algorithm: "thm1.1", Seed: 8, IncludeDS: true,
	})
	if other.SolveCached {
		t.Fatal("different seed served from the solve cache")
	}

	stats := serverStats(t, ts.URL)
	if stats.SolveCacheHits != 2 || stats.SolveCacheMisses != 2 {
		t.Fatalf("solve cache counters hits=%d misses=%d, want 2/2", stats.SolveCacheHits, stats.SolveCacheMisses)
	}
	if stats.Solves != 4 {
		t.Fatalf("solves=%d, want 4 (cached answers count as served solves)", stats.Solves)
	}
}

// TestSingleflightBuilds: N clients racing on the same cold graph
// reference trigger exactly one build — the singleflight leader's — no
// matter how the requests interleave (late arrivals hit the graph cache,
// early ones wait on the flight).
func TestSingleflightBuilds(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 4})
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := json.Marshal(server.SolveRequest{
				Graph: "spec:ba:n=400,m=3,seed=5", Algorithm: "thm1.1", Alpha: 3, Seed: uint64(i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	stats := serverStats(t, ts.URL)
	if stats.Builds != 1 {
		t.Fatalf("builds=%d, want 1 (singleflight must coalesce concurrent builds)", stats.Builds)
	}
	if stats.Graphs != 1 || stats.Solves != clients {
		t.Fatalf("stats after race: %+v", stats)
	}
}

// TestSolveDeadline: a server deadline too short for any run answers 503
// with the deadline_exceeded code and a Retry-After hint, the engine
// aborts at its first round barrier, and — because the test's cleanup
// closes the server, which blocks until every Runner is home — the
// aborted runs demonstrably return their Runners to the pool.
func TestSolveDeadline(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1, SolveTimeout: time.Nanosecond})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/solve", server.SolveRequest{
			Graph: "spec:grid:r=12,c=12", Algorithm: "thm1.1", Seed: uint64(i),
		})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status %d, want 503 (%s)", i, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Fatalf("attempt %d: 503 without Retry-After", i)
		}
		var eb struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "deadline_exceeded" {
			t.Fatalf("attempt %d: code %q, want deadline_exceeded (%s)", i, eb.Code, body)
		}
	}
	stats := serverStats(t, ts.URL)
	if stats.Timeouts != 3 || stats.Solves != 0 {
		t.Fatalf("timeouts=%d solves=%d, want 3/0", stats.Timeouts, stats.Solves)
	}
}

// TestMetricsEndpoint pins the /v1/metrics histogram behavior: an
// engine-run solve moves every phase histogram, a cached repeat moves
// only the total, and buckets are cumulative.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1})
	req := server.SolveRequest{Graph: "spec:path:n=80", Algorithm: "thm1.1", Seed: 3}
	_, _, _ = solveRaw(t, ts.URL, req) // cold: build + queue + solve + total
	_, cached, _ := solveRaw(t, ts.URL, req)
	if !cached.SolveCached {
		t.Fatal("repeat was not served from the solve cache")
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.BuildMicros.Count != 1 || m.QueueMicros.Count != 1 || m.SolveMicros.Count != 1 {
		t.Fatalf("phase counts build=%d queue=%d solve=%d, want 1/1/1",
			m.BuildMicros.Count, m.QueueMicros.Count, m.SolveMicros.Count)
	}
	if m.TotalMicros.Count != 2 {
		t.Fatalf("total count %d, want 2 (cached answers are still answered requests)", m.TotalMicros.Count)
	}
	for _, h := range []server.HistogramSnapshot{m.BuildMicros, m.QueueMicros, m.SolveMicros, m.TotalMicros} {
		last := int64(0)
		for _, b := range h.Buckets {
			if b.Count < last {
				t.Fatalf("buckets not cumulative: %+v", h.Buckets)
			}
			last = b.Count
		}
		if n := len(h.Buckets); n > 0 && h.Buckets[n-1].Count != h.Count {
			t.Fatalf("trimmed tail bucket %d does not reach count %d", h.Buckets[n-1].Count, h.Count)
		}
	}
}

func TestHealthzAndAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, server.Config{PoolSize: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	al, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer al.Body.Close()
	var algos []server.AlgorithmInfo
	if err := json.NewDecoder(al.Body).Decode(&algos); err != nil {
		t.Fatal(err)
	}
	if len(algos) != 10 {
		t.Fatalf("%d algorithms listed, want 10", len(algos))
	}
	names := map[string]bool{}
	for _, a := range algos {
		names[a.Name] = true
	}
	for _, want := range []string{"thm3.1", "thm1.1", "thm1.2", "thm1.3", "tree", "kw05"} {
		if !names[want] {
			t.Fatalf("algorithm %q missing from catalog", want)
		}
	}
}
