package server

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"arbods"
	"arbods/internal/faultinject"
)

// persistStore is the crash-safe on-disk mirror of the graph cache. Every
// uploaded or name-built graph is snapshotted as a binary CSR blob under
// <dir>/graphs/<hex>.csr (self-checksummed; see graph.EncodeBinary) plus
// one row in <dir>/index.json, which carries the metadata the cache needs
// to restore an entry without recomputing it (name key, certified α bound,
// degeneracy) and its own CRC-32C over the entry rows.
//
// Every write is atomic: temp file in the same directory, fsync, rename.
// A crash — SIGKILL included — therefore leaves either the old file or the
// new one, never a torn write, and the worst case after a mid-save crash
// is a blob without an index row, which the dir-scan fallback recovers.
//
// Loads trust nothing: a blob must pass its checksum and structural
// validation, and its content hash must equal the id the index claims.
// Anything that fails is logged as an event=snapshot_corrupt record,
// removed, and simply rebuilt from source on its next request — corruption
// costs one cold build, never an inconsistent answer.
type persistStore struct {
	dir    string
	logf   func(format string, args ...any)
	faults *faultinject.Registry

	mu    sync.Mutex // serializes index writes
	index map[string]persistEntry

	loaded atomic.Int64 // graphs restored at startup
	saves  atomic.Int64 // snapshots written
	errs   atomic.Int64 // failed snapshot writes or corrupt loads
}

// persistEntry is one index.json row.
type persistEntry struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Bound int    `json:"bound,omitempty"`
	Degen int    `json:"degen,omitempty"`
}

// persistIndex is the index.json envelope; CRC is CRC-32C over the
// marshaled Entries array, so a torn or hand-edited index is detected and
// the loader falls back to scanning the blobs.
type persistIndex struct {
	Version int            `json:"version"`
	CRC     uint32         `json:"crc"`
	Entries []persistEntry `json:"entries"`
}

const persistVersion = 1

var persistCRCTable = crc32.MakeTable(crc32.Castagnoli)

func newPersistStore(dir string, logf func(string, ...any), faults *faultinject.Registry) (*persistStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, fmt.Errorf("snapshot dir: %w", err)
	}
	return &persistStore{dir: dir, logf: logf, faults: faults, index: make(map[string]persistEntry)}, nil
}

// blobPath maps a graph id ("sha256:<hex>") to its snapshot file.
func (p *persistStore) blobPath(id string) string {
	return filepath.Join(p.dir, "graphs", strings.TrimPrefix(id, "sha256:")+".csr")
}

// load restores every intact snapshot, in index order when the index is
// readable and by directory scan when it is not. Corrupt blobs are logged
// and removed so the next boot is clean.
func (p *persistStore) load() []*graphEntry {
	rows, indexOK := p.readIndex()
	if !indexOK {
		rows = p.scanBlobs()
	}
	entries := make([]*graphEntry, 0, len(rows))
	for _, row := range rows {
		e, err := p.loadBlob(row)
		if err != nil {
			p.errs.Add(1)
			p.logf("event=snapshot_corrupt id=%s err=%q", row.ID, err.Error())
			os.Remove(p.blobPath(row.ID))
			continue
		}
		p.index[row.ID] = row
		entries = append(entries, e)
		p.loaded.Add(1)
	}
	if !indexOK && len(entries) > 0 {
		// The rescued entries deserve a fresh index so the next boot does
		// not pay the scan (and the recomputed metadata) again.
		p.mu.Lock()
		if err := p.writeIndex(); err != nil {
			p.errs.Add(1)
			p.logf("event=snapshot_index_error err=%q", err.Error())
		}
		p.mu.Unlock()
	}
	return entries
}

// readIndex parses index.json; ok is false when the file is absent,
// unparsable, fails its CRC, or has the wrong version — every one of which
// sends the loader to the blob scan.
func (p *persistStore) readIndex() ([]persistEntry, bool) {
	path := filepath.Join(p.dir, "index.json")
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			p.errs.Add(1)
			p.logf("event=snapshot_corrupt file=index.json err=%q", err.Error())
		}
		return nil, false
	}
	var idx persistIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		p.errs.Add(1)
		p.logf("event=snapshot_corrupt file=index.json err=%q", err.Error())
		return nil, false
	}
	if idx.Version != persistVersion || idx.CRC != indexCRC(idx.Entries) {
		p.errs.Add(1)
		p.logf("event=snapshot_corrupt file=index.json err=%q", "version or checksum mismatch")
		return nil, false
	}
	return idx.Entries, true
}

// scanBlobs is the index-less fallback: every *.csr blob that decodes
// becomes a row with recomputed metadata (name keys are gone — they lived
// only in the index — so rescued graphs serve by content hash).
func (p *persistStore) scanBlobs() []persistEntry {
	matches, _ := filepath.Glob(filepath.Join(p.dir, "graphs", "*.csr"))
	sort.Strings(matches)
	rows := make([]persistEntry, 0, len(matches))
	for _, m := range matches {
		rows = append(rows, persistEntry{ID: "sha256:" + strings.TrimSuffix(filepath.Base(m), ".csr"), Degen: -1})
	}
	if len(rows) > 0 {
		p.logf("event=snapshot_rescan blobs=%d reason=index_unreadable", len(rows))
	}
	return rows
}

// loadBlob decodes and cross-checks one snapshot, rebuilding the cache
// entry. Degen < 0 marks a rescanned row whose metadata must be
// recomputed.
func (p *persistStore) loadBlob(row persistEntry) (*graphEntry, error) {
	f, err := os.Open(p.blobPath(row.ID))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := arbods.DecodeGraphBinary(f)
	if err != nil {
		return nil, err
	}
	id, err := hashGraph(g)
	if err != nil {
		return nil, err
	}
	if id != row.ID {
		return nil, fmt.Errorf("content hash %s does not match snapshot id", id)
	}
	if row.Degen < 0 {
		e, err := buildEntry(g, "", 0)
		if err != nil {
			return nil, err
		}
		return e, nil
	}
	return &graphEntry{id: row.ID, name: row.Name, g: g, bound: row.Bound, degen: row.Degen}, nil
}

// save snapshots one cache entry: blob first (skipped when already on
// disk — blobs are content-addressed and immutable), then the index row.
// Failures are counted and logged but never fail the request that
// triggered the save: persistence is a durability upgrade, not a
// serving dependency.
func (p *persistStore) save(e entryView) {
	if err := p.trySave(e); err != nil {
		p.errs.Add(1)
		p.logf("event=snapshot_error id=%s err=%q", e.id, err.Error())
		return
	}
	p.saves.Add(1)
}

func (p *persistStore) trySave(e entryView) error {
	if err := p.faults.Fire("persist.writeBlob"); err != nil {
		return err
	}
	blob := p.blobPath(e.id)
	if _, err := os.Stat(blob); err != nil {
		if err := atomicWrite(blob, func(f *os.File) error {
			return arbods.EncodeGraphBinary(f, e.g)
		}); err != nil {
			return fmt.Errorf("write blob: %w", err)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	row := persistEntry{ID: e.id, Name: e.name, Bound: e.bound, Degen: e.degen}
	if old, ok := p.index[e.id]; ok && old == row {
		return nil // re-upload of a resident graph: nothing changed
	}
	p.index[e.id] = row
	if err := p.faults.Fire("persist.writeIndex"); err != nil {
		return err
	}
	if err := p.writeIndex(); err != nil {
		return fmt.Errorf("write index: %w", err)
	}
	return nil
}

// writeIndex marshals the in-memory index (sorted by id, so the file is
// deterministic) and writes it atomically. Callers hold p.mu.
func (p *persistStore) writeIndex() error {
	rows := make([]persistEntry, 0, len(p.index))
	for _, row := range p.index {
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	idx := persistIndex{Version: persistVersion, CRC: indexCRC(rows), Entries: rows}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(p.dir, "index.json"), func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// indexCRC is the integrity checksum over the index rows: CRC-32C of
// their canonical JSON.
func indexCRC(rows []persistEntry) uint32 {
	data, err := json.Marshal(rows)
	if err != nil {
		return 0
	}
	return crc32.Checksum(data, persistCRCTable)
}

// atomicWrite writes via a temp file in the target's directory, fsyncs,
// and renames into place, so the target is replaced all-or-nothing even
// across a hard kill.
func atomicWrite(path string, fill func(*os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// counters reports (loaded, saves, errors) for /v1/stats; safe on nil.
func (p *persistStore) counters() (loaded, saves, errs int64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.loaded.Load(), p.saves.Load(), p.errs.Load()
}
