package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"arbods"
)

// Cluster integration: with Config.Cluster set, this daemon is one
// replica in a static peer set. Each graph reference rendezvous-hashes
// to R owner daemons; a solve that arrives at a non-owner is proxied to
// a healthy owner (so the owners' caches stay hot and replicas answer
// from warm state), and when every owner is down the receiving daemon
// falls back to solving locally — rebuilding the graph from the request
// itself (spec:/corpus: references) or from a peer's ARBCSR01 snapshot
// (sha256: references). Determinism makes the failover safe: whichever
// daemon executes, the receipt is byte-identical.

const (
	// forwardedHeader marks intra-cluster traffic: a forwarded solve is
	// executed locally no matter who owns it (one hop, never a loop),
	// and a replicated upload is not re-replicated.
	forwardedHeader = "X-Arbods-Forwarded"
	// binaryContentType is the ARBCSR01 wire type for graph upload and
	// download — the same checksummed codec the snapshot files use.
	binaryContentType = "application/x-arbods-csr"
)

// proxySolve forwards the solve to the first healthy owner and relays
// its answer, returning false when no owner could be reached (the
// caller then serves locally). Outcomes feed the cluster's passive
// health view, so a dead owner stops receiving forwards after
// FailAfter consecutive failures even between probe ticks.
func (s *Server) proxySolve(w http.ResponseWriter, r *http.Request, raw []byte, req *SolveRequest, owners []string) bool {
	for _, owner := range owners {
		if owner == s.cluster.Self() || !s.cluster.Healthy(owner) {
			continue
		}
		t0 := time.Now()
		// The owner enforces its own solve deadline; this request is
		// bounded only by the client's context, so long solves proxy as
		// well as short ones.
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/solve", bytes.NewReader(raw))
		if err != nil {
			continue
		}
		preq.Header.Set("Content-Type", "application/json")
		preq.Header.Set(forwardedHeader, s.cluster.Self())
		resp, err := s.cluster.Client().Do(preq)
		if err != nil {
			s.cluster.MarkForward(owner, false)
			if r.Context().Err() != nil {
				// The client is gone; stop burning owners on its behalf.
				s.canceled.Add(1)
				return true
			}
			s.logf("event=proxy_failover graph=%s owner=%s err=%q", req.Graph, owner, err.Error())
			continue
		}
		s.cluster.MarkForward(owner, true)
		s.proxied.Add(1)
		s.relayProxied(w, resp, req.Stream)
		s.lat.proxy.observe(time.Since(t0))
		s.logf("proxy %s -> %s status=%d", req.Graph, owner, resp.StatusCode)
		return true
	}
	return false
}

// proxiedResponse mirrors SolveResponse field for field, but keeps the
// nested documents raw so re-encoding the envelope cannot perturb a
// single receipt byte — the property every cross-replica identity check
// rests on.
type proxiedResponse struct {
	Graph       json.RawMessage `json:"graph"`
	CacheHit    bool            `json:"cacheHit"`
	SolveCached bool            `json:"solveCached,omitempty"`
	ServedBy    string          `json:"servedBy,omitempty"`
	Proxied     bool            `json:"proxied,omitempty"`
	Seed        uint64          `json:"seed"`
	DS          json.RawMessage `json:"ds,omitempty"`
	Receipt     json.RawMessage `json:"receipt,omitempty"`
}

// relayProxied copies the owner's answer to the client. Successful
// plain responses are re-tagged proxied=true (receipt bytes untouched);
// streams and error statuses — including the owner's 429/503 with its
// Retry-After hint — pass through verbatim.
func (s *Server) relayProxied(w http.ResponseWriter, resp *http.Response, stream bool) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if stream {
		w.WriteHeader(resp.StatusCode)
		flushingCopy(w, resp.Body)
		return
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		s.errorCode(w, http.StatusBadGateway, "proxy_failed", "read proxied response: %v", err)
		return
	}
	if resp.StatusCode == http.StatusOK {
		var pr proxiedResponse
		if json.Unmarshal(body, &pr) == nil && len(pr.Receipt) > 0 {
			pr.Proxied = true
			s.writeJSON(w, http.StatusOK, &pr)
			return
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// flushingCopy streams src to w line-granularly so proxied NDJSON round
// progress arrives as it happens, not when the run ends.
func flushingCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// replicate pushes a freshly uploaded graph's ARBCSR01 snapshot to its
// owner daemons, so solves proxied there answer from a warm cache and
// the upload survives this daemon's death. Best-effort by design:
// failures are counted and logged, never surfaced to the uploader —
// the owners can always recover the graph later through the peer
// snapshot-fetch path.
func (s *Server) replicate(e entryView) {
	var buf bytes.Buffer
	for _, owner := range s.cluster.Owners(e.id) {
		if owner == s.cluster.Self() {
			continue
		}
		if buf.Len() == 0 {
			if err := arbods.EncodeGraphBinary(&buf, e.g); err != nil {
				s.replFails.Add(1)
				s.logf("event=replicate_error id=%s err=%q", e.id, err.Error())
				return
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cluster.ProbeTimeout())
		err := s.pushSnapshot(ctx, owner, buf.Bytes())
		cancel()
		if err != nil {
			s.replFails.Add(1)
			s.logf("event=replicate_error id=%s owner=%s err=%q", e.id, owner, err.Error())
			continue
		}
		s.replPushes.Add(1)
	}
}

// pushSnapshot uploads one binary-encoded graph to a peer.
func (s *Server) pushSnapshot(ctx context.Context, peer string, blob []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/graphs", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", binaryContentType)
	req.Header.Set(forwardedHeader, s.cluster.Self())
	resp, err := s.cluster.Client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &httpStatusError{status: resp.StatusCode}
	}
	return nil
}

type httpStatusError struct{ status int }

func (e *httpStatusError) Error() string {
	return "unexpected status " + http.StatusText(e.status)
}

// fetchPeerSnapshot recovers a sha256: graph this daemon has never seen
// from any healthy peer's cache, over the same ARBCSR01 wire the
// snapshot files use. This is the failover rebuild path: an owner that
// restarted without -data-dir, or a non-owner serving while every owner
// is down, repopulates itself from whichever replica still holds the
// graph. The decoded graph is content-hash cross-checked before it is
// trusted, exactly like a disk snapshot.
func (s *Server) fetchPeerSnapshot(ctx context.Context, id string) (entryView, bool) {
	if s.cluster == nil {
		return entryView{}, false
	}
	// Owners first — they are where the graph should be — then the rest.
	tried := make(map[string]bool)
	order := append(s.cluster.Owners(id), s.cluster.Peers()...)
	for _, peer := range order {
		if peer == s.cluster.Self() || tried[peer] || !s.cluster.Healthy(peer) {
			continue
		}
		tried[peer] = true
		e, err := s.tryFetchSnapshot(ctx, peer, id)
		if err != nil {
			continue
		}
		s.snapFetches.Add(1)
		s.logf("event=snapshot_fetch id=%s peer=%s", id, peer)
		resident, _ := s.cache.insert(e, false)
		if s.persist != nil {
			s.persist.save(resident)
		}
		return resident, true
	}
	return entryView{}, false
}

func (s *Server) tryFetchSnapshot(ctx context.Context, peer, id string) (*graphEntry, error) {
	fctx, cancel := context.WithTimeout(ctx, s.cluster.ProbeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, peer+"/v1/graphs/"+id, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", binaryContentType)
	req.Header.Set(forwardedHeader, s.cluster.Self())
	resp, err := s.cluster.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), binaryContentType) {
		io.Copy(io.Discard, resp.Body)
		return nil, &httpStatusError{status: resp.StatusCode}
	}
	g, err := arbods.DecodeGraphBinary(resp.Body)
	if err != nil {
		return nil, err
	}
	e, err := buildEntry(g, "", 0)
	if err != nil {
		return nil, err
	}
	if e.id != id {
		return nil, &httpStatusError{status: http.StatusUnprocessableEntity}
	}
	return e, nil
}
