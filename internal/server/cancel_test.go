package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientDisconnectWhileQueued is the white-box cancellation test: it
// starves the pool by checking the only Runner out directly, so an HTTP
// solve deterministically parks in GetContext — then the client's context
// dies, and the handler must abandon the wait, record the cancellation,
// and leave the slot healthy. The follow-up streamed solve (streams
// bypass the solve cache, forcing a real engine run) must return the
// byte-identical receipt a pre-starvation run produced.
func TestClientDisconnectWhileQueued(t *testing.T) {
	s, err := New(Config{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	solve := func(ctx context.Context, req SolveRequest) (*http.Response, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		if _, err := out.ReadFrom(resp.Body); err != nil {
			return resp, nil, err
		}
		return resp, out.Bytes(), nil
	}

	// Reference answer before anything goes wrong.
	ref := SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 9}
	resp, body, err := solve(context.Background(), ref)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reference solve: %v status=%v %s", err, resp, body)
	}
	var refOut struct {
		Receipt json.RawMessage `json:"receipt"`
	}
	if err := json.Unmarshal(body, &refOut); err != nil {
		t.Fatal(err)
	}

	// Starve the pool and park a request on the checkout queue. Its client
	// context dies 30ms in; the handler must notice and bail out.
	held := s.pool.Get()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := solve(ctx, SolveRequest{Graph: "spec:cycle:n=64", Algorithm: "thm1.1", Seed: 10}); err == nil {
		t.Fatal("queued solve finished despite a starved pool and a dead client")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never recorded the canceled checkout")
		}
		time.Sleep(time.Millisecond)
	}
	s.pool.Put(held)

	// The slot must serve again, and an engine rerun of the reference
	// request (streamed, so the solve cache cannot answer) must be
	// byte-identical.
	req := ref
	req.Stream = true
	resp, body, err = solve(context.Background(), req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel solve: %v status=%v", err, resp)
	}
	var final struct {
		Result *struct {
			Receipt json.RawMessage `json:"receipt"`
		} `json:"result"`
	}
	for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		if bytes.Contains(line, []byte(`"result"`)) {
			if err := json.Unmarshal(line, &final); err != nil {
				t.Fatalf("bad result line %s: %v", line, err)
			}
		}
	}
	if final.Result == nil {
		t.Fatalf("stream ended without a result line:\n%s", body)
	}
	var want, got bytes.Buffer
	if err := json.Compact(&want, refOut.Receipt); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&got, final.Result.Receipt); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("post-cancel engine rerun deviates:\n%s\nvs\n%s", want.String(), got.String())
	}
}
