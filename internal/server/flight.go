package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent builds of the same graph reference
// (hand-rolled; the module deliberately has no singleflight dependency).
// When N requests race on a cold "corpus:…" or "spec:…" ref, exactly one
// — the leader — decodes, generates, and builds the CSR; the rest wait on
// the leader's result instead of burning N-1 redundant builds (the ~255ms
// that dominates a cold million-node request, multiplied by the fleet).
//
// The leader runs to completion even if its own request's context dies
// mid-build: the build is not interruptible anyway, and the finished
// entry lands in the graph cache where the waiters — and every later
// request — find it. Waiters, by contrast, stop waiting the moment their
// context dies and report ctx.Err().
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight build; done is closed once the fields below
// it are final.
type flightCall struct {
	done   chan struct{}
	view   entryView
	status int
	err    error
}

// do runs fn once per key across concurrent callers. The second return
// reports leadership — true when this caller executed fn — which is what
// the builds counter keys off.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (entryView, int, error)) (entryView, int, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		var ctxDone <-chan struct{}
		if ctx != nil {
			ctxDone = ctx.Done()
		}
		select {
		case <-c.done:
			return c.view, c.status, c.err, false
		case <-ctxDone:
			return entryView{}, 0, ctx.Err(), false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.view, c.status, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.view, c.status, c.err, true
}
