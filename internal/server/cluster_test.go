package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"arbods"
	"arbods/internal/cluster"
	"arbods/internal/faultinject"
	"arbods/internal/server"
)

// testCluster is an in-process N-daemon cluster: each daemon is a real
// *server.Server behind its own httptest listener, and every daemon's
// peer set points at the others' live URLs. Handlers are late-bound
// (daemon k's URL must exist before daemon k is constructed), answering
// 503 until their server is up — exactly what a still-booting daemon
// would do, so early health probes see a truthful picture.
type testCluster struct {
	servers []*server.Server
	sets    []*cluster.Set
	urls    []string
}

func newTestCluster(t *testing.T, n int, reg *faultinject.Registry, mutate func(i int, cfg *server.Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	slots := make([]atomic.Pointer[server.Server], n)
	for i := 0; i < n; i++ {
		slot := &slots[i]
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if s := slot.Load(); s != nil {
				s.ServeHTTP(w, r)
				return
			}
			http.Error(w, "starting", http.StatusServiceUnavailable)
		}))
		t.Cleanup(ts.Close)
		tc.urls = append(tc.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		var tr http.RoundTripper
		if reg != nil {
			tr = &faultinject.Transport{Reg: reg}
		}
		cset, err := cluster.New(cluster.Config{
			Self:          tc.urls[i],
			Peers:         tc.urls,
			ProbeInterval: 10 * time.Millisecond,
			ProbeTimeout:  300 * time.Millisecond,
			FailAfter:     2,
			ReviveAfter:   1,
			Transport:     tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := server.Config{PoolSize: 2, Cluster: cset}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		tc.servers = append(tc.servers, s)
		tc.sets = append(tc.sets, cset)
		slots[i].Store(s)
	}
	return tc
}

// ownership splits daemon indices into owners and non-owners of id.
func (tc *testCluster) ownership(id string) (owners, others []int) {
	urls := tc.sets[0].Owners(id)
	for i, u := range tc.urls {
		if slices.Contains(urls, u) {
			owners = append(owners, i)
		} else {
			others = append(others, i)
		}
	}
	return owners, others
}

// clusterSolveResponse adds the cluster tags to the raw-receipt view.
type clusterSolveResponse struct {
	rawSolveResponse
	ServedBy string `json:"servedBy"`
	Proxied  bool   `json:"proxied"`
}

func clusterSolve(t *testing.T, base string, req server.SolveRequest) clusterSolveResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve at %s: status %d: %s", base, resp.StatusCode, body)
	}
	var out clusterSolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("solve: %v\n%s", err, body)
	}
	return out
}

// waitUnhealthy blocks until every given set considers peer unhealthy.
func waitUnhealthy(t *testing.T, sets []*cluster.Set, peer string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, s := range sets {
			if s.Healthy(peer) {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("peer %s never went unhealthy", peer)
}

func TestClusterProxyTagsAndCounters(t *testing.T) {
	tc := newTestCluster(t, 3, nil, nil)
	info := uploadGraph(t, tc.urls[0], arbods.Grid(6, 6).G)
	owners, others := tc.ownership(info.ID)
	if len(owners) != 2 || len(others) != 1 {
		t.Fatalf("ownership split = %v/%v, want 2/1", owners, others)
	}
	req := server.SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 7, IncludeDS: true}

	// A solve at an owner executes locally and says so.
	direct := clusterSolve(t, tc.urls[owners[0]], req)
	if direct.Proxied || direct.ServedBy != tc.urls[owners[0]] {
		t.Fatalf("owner solve tagged servedBy=%q proxied=%v", direct.ServedBy, direct.Proxied)
	}

	// A solve at the non-owner proxies to an owner; the relayed answer is
	// tagged and the receipt bytes are untouched by the relay.
	proxied := clusterSolve(t, tc.urls[others[0]], req)
	if !proxied.Proxied {
		t.Fatal("non-owner solve not tagged proxied")
	}
	if !slices.Contains(tc.sets[0].Owners(info.ID), proxied.ServedBy) {
		t.Fatalf("proxied solve servedBy=%q, not an owner", proxied.ServedBy)
	}
	if !bytes.Equal(direct.Receipt, proxied.Receipt) {
		t.Fatalf("proxied receipt differs from owner receipt:\n%s\nvs\n%s", proxied.Receipt, direct.Receipt)
	}

	// Per-peer counters surface in the non-owner's /v1/stats.
	var st server.Stats
	if code := getJSON(t, tc.urls[others[0]]+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Cluster == nil {
		t.Fatal("clustered daemon reports no cluster stats")
	}
	if st.Cluster.Proxied < 1 {
		t.Fatalf("proxied counter = %d, want >= 1", st.Cluster.Proxied)
	}
	if st.Cluster.Self != tc.urls[others[0]] || st.Cluster.Replicas != 2 {
		t.Fatalf("cluster stats identity = %+v", st.Cluster)
	}
	var forwards int64
	for _, ps := range st.Cluster.Peers {
		forwards += ps.Forwards
	}
	if forwards < 1 {
		t.Fatalf("no per-peer forward counters moved: %+v", st.Cluster.Peers)
	}
}

func TestClusterUploadReplicationAndBinaryWire(t *testing.T) {
	tc := newTestCluster(t, 3, nil, nil)
	g := arbods.Grid(5, 7).G

	// Binary upload: the ARBCSR01 codec on the wire must land on the same
	// content hash as the text format (hashing happens after canonical
	// rebuild).
	var bin bytes.Buffer
	if err := arbods.EncodeGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.urls[0]+"/v1/graphs", "application/x-arbods-csr", bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var info server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !info.New {
		t.Fatalf("binary upload: status %d info %+v", resp.StatusCode, info)
	}
	if text := uploadGraph(t, tc.urls[0], g); text.ID != info.ID || text.New {
		t.Fatalf("text re-upload of same graph: %+v vs binary id %s", text, info.ID)
	}

	// The upload replicated synchronously to both owners: each owner
	// lists the graph without ever having received it directly.
	owners, _ := tc.ownership(info.ID)
	for _, i := range owners {
		if tc.urls[i] == tc.urls[0] {
			continue
		}
		var list []server.GraphInfo
		if code := getJSON(t, tc.urls[i]+"/v1/graphs", &list); code != http.StatusOK {
			t.Fatalf("list at owner %d: %d", i, code)
		}
		found := false
		for _, gi := range list {
			if gi.ID == info.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %s missing replicated graph %s", tc.urls[i], info.ID)
		}
	}
	var st server.Stats
	getJSON(t, tc.urls[0]+"/v1/stats", &st)
	if st.Cluster == nil || st.Cluster.ReplicaPushes < 1 {
		t.Fatalf("uploader replicaPushes = %+v, want >= 1", st.Cluster)
	}

	// Accept negotiation: GET /v1/graphs/{id} serves the graph itself as
	// ARBCSR01, byte-decodable back to the same content hash.
	hreq, _ := http.NewRequest(http.MethodGet, tc.urls[0]+"/v1/graphs/"+info.ID, nil)
	hreq.Header.Set("Accept", "application/x-arbods-csr")
	dresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if ct := dresp.Header.Get("Content-Type"); ct != "application/x-arbods-csr" {
		t.Fatalf("binary download content-type %q", ct)
	}
	got, err := arbods.DecodeGraphBinary(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("downloaded graph %dx%d, want %dx%d", got.N(), got.M(), g.N(), g.M())
	}
}

func TestClusterSnapshotFetch(t *testing.T) {
	tc := newTestCluster(t, 3, nil, nil)
	g := arbods.Grid(4, 9).G

	// Plant the graph on one daemon only: a forwarded upload is not
	// re-replicated, so the owners have never seen it.
	var bin bytes.Buffer
	if err := arbods.EncodeGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	hreq, _ := http.NewRequest(http.MethodPost, tc.urls[0]+"/v1/graphs", bytes.NewReader(bin.Bytes()))
	hreq.Header.Set("Content-Type", "application/x-arbods-csr")
	hreq.Header.Set("X-Arbods-Forwarded", "test")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var info server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A solve at an owner that lacks the graph must recover it from the
	// planting daemon over the binary wire instead of 404ing.
	owners, _ := tc.ownership(info.ID)
	target := owners[0]
	if tc.urls[target] == tc.urls[0] {
		target = owners[1]
	}
	out := clusterSolve(t, tc.urls[target], server.SolveRequest{Graph: info.ID, Algorithm: "thm3.1", Seed: 3})
	if out.ServedBy != tc.urls[target] {
		t.Fatalf("owner solve servedBy=%q, want local %q", out.ServedBy, tc.urls[target])
	}
	var st server.Stats
	getJSON(t, tc.urls[target]+"/v1/stats", &st)
	if st.Cluster == nil || st.Cluster.SnapshotFetches != 1 {
		t.Fatalf("snapshotFetches = %+v, want 1", st.Cluster)
	}
}

func TestClusterFallbackWhenOwnersDown(t *testing.T) {
	reg := faultinject.New(1)
	tc := newTestCluster(t, 3, reg, nil)
	g := arbods.Grid(6, 5).G
	var info server.GraphInfo
	for _, u := range tc.urls {
		info = uploadGraph(t, u, g)
	}
	owners, others := tc.ownership(info.ID)
	nonOwner := others[0]
	req := server.SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 11, IncludeDS: true}
	baseline := clusterSolve(t, tc.urls[owners[0]], req)

	// Kill both owners' links: every request to them — probes included —
	// fails fast, so the whole cluster's health view flips.
	for _, i := range owners {
		reg.Arm("peer."+hostOf(t, tc.urls[i]), faultinject.Fault{Round: -1, Times: 1 << 20, Err: faultinject.ErrInjected})
	}
	for _, i := range owners {
		waitUnhealthy(t, []*cluster.Set{tc.sets[nonOwner]}, tc.urls[i])
	}

	// With every owner down, the non-owner serves locally — and the
	// paper's determinism makes its receipt byte-identical to the
	// owner's pre-outage answer.
	out := clusterSolve(t, tc.urls[nonOwner], req)
	if out.Proxied || out.ServedBy != tc.urls[nonOwner] {
		t.Fatalf("fallback solve tagged servedBy=%q proxied=%v", out.ServedBy, out.Proxied)
	}
	if !bytes.Equal(out.Receipt, baseline.Receipt) {
		t.Fatalf("fallback receipt differs from owner receipt:\n%s\nvs\n%s", out.Receipt, baseline.Receipt)
	}
	var st server.Stats
	getJSON(t, tc.urls[nonOwner]+"/v1/stats", &st)
	if st.Cluster == nil || st.Cluster.LocalFallbacks < 1 {
		t.Fatalf("localFallbacks = %+v, want >= 1", st.Cluster)
	}
}

// TestClusterPartitionSweepIdentity is the in-process half of the chaos
// acceptance: blackhole one daemon mid-cluster (its link hangs rather
// than refusing — a partition, not a crash) and pin that a sweep served
// by the surviving daemons produces receipts byte-identical to a
// single-healthy-server run of the same sweep.
func TestClusterPartitionSweepIdentity(t *testing.T) {
	sweep := []server.SolveRequest{
		{Algorithm: "thm1.1", Seed: 1},
		{Algorithm: "thm1.1", Seed: 2},
		{Algorithm: "thm3.1", Seed: 1},
		{Algorithm: "thm1.2", Seed: 3},
		{Algorithm: "lw"},
		{Algorithm: "lrg", Seed: 5},
	}
	g := arbods.Grid(7, 6).G

	// Baseline: one standalone server answers the whole sweep.
	_, solo := newTestServer(t, server.Config{PoolSize: 2})
	soloInfo := uploadGraph(t, solo.URL, g)
	baseline := make([][]byte, len(sweep))
	for i, req := range sweep {
		req.Graph = soloInfo.ID
		_, out, _ := solveRaw(t, solo.URL, req)
		baseline[i] = out.Receipt
	}

	reg := faultinject.New(7)
	tc := newTestCluster(t, 3, reg, nil)
	var info server.GraphInfo
	for _, u := range tc.urls {
		info = uploadGraph(t, u, g)
	}
	if info.ID != soloInfo.ID {
		t.Fatalf("content hash disagrees: %s vs %s", info.ID, soloInfo.ID)
	}

	// Partition daemon 2: its link blackholes (hangs until the caller's
	// context dies) for every peer.
	reg.Arm("peer."+hostOf(t, tc.urls[2]), faultinject.Fault{Round: -1, Times: 1 << 20, Err: faultinject.ErrBlackhole})
	waitUnhealthy(t, []*cluster.Set{tc.sets[0], tc.sets[1]}, tc.urls[2])

	// The survivors answer the full sweep — proxying between themselves
	// or falling back locally when the partitioned daemon was the owner —
	// with every receipt byte-identical to the standalone run.
	for i, req := range sweep {
		req.Graph = info.ID
		out := clusterSolve(t, tc.urls[i%2], req)
		if !bytes.Equal(out.Receipt, baseline[i]) {
			t.Fatalf("sweep[%d] receipt differs from standalone baseline:\n%s\nvs\n%s", i, out.Receipt, baseline[i])
		}
	}
}

// hostOf extracts host:port from a test server URL for peer failpoints.
func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	const p = "http://"
	if len(rawURL) <= len(p) || rawURL[:len(p)] != p {
		t.Fatalf("unexpected test URL %q", rawURL)
	}
	return rawURL[len(p):]
}
