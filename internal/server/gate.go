package server

import "sync"

// graphGate bounds solves in flight per graph id, so one hot graph — a
// benchmark loop, a stuck client retrying, a viral dataset — cannot occupy
// every pool slot and starve the long tail. The global admission channel
// still bounds the total; this bounds any single key's share of it.
// Entries are dropped as soon as their count hits zero, so the map stays
// proportional to the number of graphs with solves actually in flight.
type graphGate struct {
	mu  sync.Mutex
	cap int
	n   map[string]int
}

func newGraphGate(capacity int) *graphGate {
	return &graphGate{cap: capacity, n: make(map[string]int)}
}

// acquire claims a slot for id, reporting false when the graph is already
// at its cap. Every true must be balanced by a release of the same id.
func (g *graphGate) acquire(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n[id] >= g.cap {
		return false
	}
	g.n[id]++
	return true
}

func (g *graphGate) release(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n[id]--; g.n[id] <= 0 {
		delete(g.n, id)
	}
}
