package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"arbods"
)

// SolveRequest asks the server to run one algorithm on one graph.
type SolveRequest struct {
	// Graph references the input: "sha256:<hex>" (a previously uploaded
	// or cached graph), "corpus:<name>" (a file from the corpus
	// directory), or "spec:<gen-spec>" (a generator spec like
	// "forest:n=1000,k=3").
	Graph string `json:"graph"`
	// Algorithm is one of the /v1/algorithms names (default "thm1.1").
	Algorithm string `json:"algorithm,omitempty"`

	// Alpha pins the arboricity bound (0 = the graph's certified
	// default: generator bound, else degeneracy).
	Alpha int     `json:"alpha,omitempty"`
	Eps   float64 `json:"eps,omitempty"`  // default 0.2
	T     int     `json:"t,omitempty"`    // thm1.2 (default 2)
	K     int     `json:"k,omitempty"`    // thm1.3 / kw05 (default 2)
	Seed  uint64  `json:"seed,omitempty"` // run seed (deterministic per seed)

	// Mode is "congest" (default, strict bandwidth), "audit", or "local".
	Mode      string `json:"mode,omitempty"`
	MaxRounds int    `json:"maxRounds,omitempty"`

	// IncludeDS adds the dominating set's node IDs to the response
	// (receipts always carry the set size and weight).
	IncludeDS bool `json:"includeDS,omitempty"`
	// Stream switches the response to NDJSON: one line per simulated
	// round ({"round":…,"messages":…,"bits":…,"activeNodes":…}), then a
	// final {"result":…} line. Streamed solves bypass the solve cache —
	// the round progress is the point, and a cached answer has none.
	Stream bool `json:"stream,omitempty"`
}

// normalize fills the request's defaulted fields in place, against the
// resolved graph for the α default. Solve-cache keys are built from the
// normalized form, so "eps omitted" and "eps: 0.2" are the same request.
func (req *SolveRequest) normalize(e entryView) {
	if req.Algorithm == "" {
		req.Algorithm = "thm1.1"
	}
	if req.Alpha == 0 {
		req.Alpha = e.alpha()
	}
	if req.Eps == 0 {
		req.Eps = 0.2
	}
	if req.T == 0 {
		req.T = 2
	}
	if req.K == 0 {
		req.K = 2
	}
	if req.Mode == "" {
		req.Mode = "congest"
	}
}

// key builds the solve-cache key; call after normalize.
func (req *SolveRequest) key(graphID string) solveKey {
	return solveKey{
		graphID:   graphID,
		algorithm: req.Algorithm,
		alpha:     req.Alpha,
		eps:       req.Eps,
		t:         req.T,
		k:         req.K,
		seed:      req.Seed,
		mode:      req.Mode,
		maxRounds: req.MaxRounds,
	}
}

// SolveResponse is the answer-with-proof envelope.
type SolveResponse struct {
	Graph GraphInfo `json:"graph"`
	// CacheHit reports whether the graph's built CSR was already
	// resident (the repeat-query fast path).
	CacheHit bool `json:"cacheHit"`
	// SolveCached reports whether the whole answer came from the solve
	// cache — no engine run happened for this response.
	SolveCached bool `json:"solveCached,omitempty"`
	// ServedBy is the advertised URL of the daemon that executed (or
	// cache-served) the solve; empty on a standalone server. Proxied
	// marks answers that were forwarded to an owner daemon — determinism
	// makes the distinction invisible in the receipt bytes, which is the
	// property the cluster's failover tests pin.
	ServedBy string `json:"servedBy,omitempty"`
	Proxied  bool   `json:"proxied,omitempty"`
	Seed     uint64 `json:"seed"`
	DS       []int  `json:"ds,omitempty"`
	// Receipt is the verification record recomputed from the graph and
	// the run; byte-identical across repeats of the same request,
	// whether the answer was computed or served from the solve cache.
	Receipt *arbods.Receipt `json:"receipt"`
}

// algorithmCatalog documents the servable algorithms; names match
// cmd/mdsrun's -algo values.
var algorithmCatalog = []AlgorithmInfo{
	{Name: "thm3.1", Params: []string{"alpha", "eps"}, Description: "deterministic (2α+1)(1+ε)-approx, unweighted, O(log(Δ/α)/ε) rounds"},
	{Name: "thm1.1", Params: []string{"alpha", "eps"}, Description: "deterministic (2α+1)(1+ε)-approx, weighted, O(log(Δ/α)/ε) rounds"},
	{Name: "thm1.2", Params: []string{"alpha", "t"}, Description: "randomized α+O(α/t)-approx in expectation, weighted, O(t·log Δ) rounds"},
	{Name: "thm1.3", Params: []string{"k"}, Description: "randomized O(kΔ^{2/k})-approx in expectation, general graphs, O(k²) rounds"},
	{Name: "remark4.4", Params: []string{"alpha", "eps"}, Description: "Theorem 1.1 without global knowledge of Δ"},
	{Name: "remark4.5", Params: []string{"eps"}, Description: "Theorem 1.1 without knowledge of α (distributed H-partition estimate)"},
	{Name: "tree", Description: "Observation A.1: one-round 3-approx on forests"},
	{Name: "lw", Description: "Lenzen–Wattenhofer bucket greedy baseline, unweighted"},
	{Name: "lrg", Description: "Jia–Rajaraman–Suel local randomized greedy baseline, unweighted"},
	{Name: "kw05", Params: []string{"k"}, Description: "Kuhn–Wattenhofer fractional+rounding baseline, unweighted"},
}

// resolveGraph turns a request's graph reference into a cached entry,
// building (and caching) it on a miss. The returned bool reports a cache
// hit — this request skipped the build, whether because the graph was
// resident or because a concurrent leader built it (singleflight: N
// requests racing on the same cold reference run one build). ctx bounds
// only the waiting; a build in progress always runs to completion so its
// result lands in the cache. A waiter abandoned by its context returns
// ctx.Err() with status 0.
func (s *Server) resolveGraph(ctx context.Context, ref string) (entryView, bool, int, error) {
	switch {
	case ref == "":
		return entryView{}, false, http.StatusBadRequest, fmt.Errorf("missing graph reference")
	case strings.HasPrefix(ref, "sha256:"):
		e, ok := s.cache.getID(ref)
		if !ok {
			// Failover rebuild: an uploaded graph this daemon never saw may
			// still live on a peer — recover it over the ARBCSR01 wire
			// (content-hash verified) before giving up.
			if e, ok = s.fetchPeerSnapshot(ctx, ref); ok {
				return e, false, 0, nil
			}
			return entryView{}, false, http.StatusNotFound,
				fmt.Errorf("graph %s not cached (upload it first; uploads cannot be rebuilt)", ref)
		}
		return e, true, 0, nil
	case strings.HasPrefix(ref, "corpus:"):
		return s.resolveNamed(ctx, ref, func() (*arbods.Graph, int, int, error) {
			g, err := loadCorpus(s.cfg.CorpusDir, strings.TrimPrefix(ref, "corpus:"))
			if err != nil {
				return nil, 0, http.StatusNotFound, fmt.Errorf("load %s: %v", ref, err)
			}
			return g, 0, 0, nil
		})
	case strings.HasPrefix(ref, "spec:"):
		return s.resolveNamed(ctx, ref, func() (*arbods.Graph, int, int, error) {
			g, bound, err := buildSpec(strings.TrimPrefix(ref, "spec:"))
			if err != nil {
				return nil, 0, http.StatusBadRequest, fmt.Errorf("bad spec %q: %v", ref, err)
			}
			return g, bound, 0, nil
		})
	default:
		return entryView{}, false, http.StatusBadRequest,
			fmt.Errorf("graph reference %q must start with sha256:, corpus:, or spec:", ref)
	}
}

// resolveNamed is the shared by-name path: cache lookup, then a
// singleflighted load+build on a miss. load produces the graph plus the
// generator-certified α bound (0 for corpus files, which certify
// nothing) and an HTTP status for its failures.
func (s *Server) resolveNamed(ctx context.Context, ref string, load func() (*arbods.Graph, int, int, error)) (entryView, bool, int, error) {
	if e, ok := s.cache.getName(ref); ok {
		return e, true, 0, nil
	}
	builtHere := false
	e, status, err, _ := s.flight.do(ctx, ref, func() (entryView, int, error) {
		// Double-check under flight leadership: a previous leader may have
		// finished between our miss and our takeover.
		if e, ok := s.cache.getName(ref); ok {
			return e, 0, nil
		}
		if err := s.cfg.Faults.Fire("server.build"); err != nil {
			return entryView{}, http.StatusInternalServerError, err
		}
		g, bound, status, err := load()
		if err != nil {
			return entryView{}, status, err
		}
		s.builds.Add(1)
		builtHere = true
		built, err := buildEntry(g, ref, bound)
		if err != nil {
			return entryView{}, http.StatusInternalServerError, err
		}
		e, _ := s.cache.insert(built, true)
		if s.persist != nil {
			// The leader snapshots for everyone: waiters and later requests
			// find the graph durable as well as resident.
			s.persist.save(e)
		}
		return e, 0, nil
	})
	if err != nil {
		return entryView{}, false, status, err
	}
	return e, !builtHere, 0, nil
}

// runAlgorithm dispatches one solve on the graph with the given options;
// the request must be normalized.
func runAlgorithm(req *SolveRequest, e entryView, opts []arbods.Option) (*arbods.Report, error) {
	g := e.g
	switch req.Algorithm {
	case "thm3.1":
		return arbods.UnweightedDeterministic(g, req.Alpha, req.Eps, opts...)
	case "thm1.1":
		return arbods.WeightedDeterministic(g, req.Alpha, req.Eps, opts...)
	case "thm1.2":
		return arbods.WeightedRandomized(g, req.Alpha, req.T, opts...)
	case "thm1.3":
		return arbods.GeneralGraphs(g, req.K, opts...)
	case "remark4.4":
		return arbods.UnknownDelta(g, req.Alpha, req.Eps, opts...)
	case "remark4.5":
		return arbods.UnknownAlpha(g, req.Eps, opts...)
	case "tree":
		return arbods.TreeThreeApprox(g, opts...)
	case "lw":
		return arbods.LWBucketDeterministic(g, opts...)
	case "lrg":
		return arbods.LRGRandomized(g, opts...)
	case "kw05":
		rep, _, err := arbods.KW05(g, req.K, opts...)
		return rep, err
	default:
		return nil, fmt.Errorf("unknown algorithm %q (see GET /v1/algorithms)", req.Algorithm)
	}
}

func modeOption(mode string) (arbods.Option, error) {
	switch mode {
	case "", "congest":
		return nil, nil
	case "audit":
		return arbods.WithMode(arbods.CongestAudit), nil
	case "local":
		return arbods.WithMode(arbods.Local), nil
	default:
		return nil, fmt.Errorf("unknown mode %q (congest, audit, local)", mode)
	}
}

// solveFail maps a failed solve to its response. Context deaths get
// distinct treatment: the server's deadline answers 503 with Retry-After
// (the work was sound, the budget was not — come back), the client's own
// disconnect answers 499 for the logs, a recovered proc panic answers 500
// (the one failure that is the server's fault, not the request's), and
// everything else is the usual 400 with the run error. Streamed responses
// have already committed a 200 header, so they carry the same code on an
// NDJSON error line instead.
func (s *Server) solveFail(w http.ResponseWriter, stream *streamWriter, rid uint64, graphID, algo string, err error) {
	var pe *arbods.ProcPanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		if stream != nil {
			stream.fail(err, "deadline_exceeded")
			return
		}
		w.Header().Set("Retry-After", s.retryAfterHint())
		s.errorCode(w, http.StatusServiceUnavailable, "deadline_exceeded", "solve %s: %v", algo, err)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
		if stream != nil {
			stream.fail(err, "canceled")
			return
		}
		s.errorCode(w, StatusClientClosedRequest, "canceled", "solve %s: %v", algo, err)
	case errors.As(err, &pe):
		// The panic was recovered on the engine's goroutines and the Runner
		// is already quarantined (RunnerPool.Put replaces it after the
		// deferred checkin) — this request is lost, every other in-flight
		// solve is untouched. One structured record carries everything an
		// operator needs to find the faulty callback.
		s.panics.Add(1)
		s.logf("event=proc_panic req=%d graph=%s round=%d node=%d value=%q stack=%q",
			rid, graphID, pe.Round, pe.Node, fmt.Sprint(pe.Value), truncStack(pe.Stack))
		if stream != nil {
			stream.fail(err, "proc_panic")
			return
		}
		s.errorCode(w, http.StatusInternalServerError, "proc_panic", "solve %s: %v", algo, err)
	default:
		if stream != nil {
			stream.fail(err, "run_failed")
			return
		}
		s.errorCode(w, http.StatusBadRequest, "run_failed", "run %s: %v", algo, err)
	}
}

// truncStack keeps the panic record one line and bounded: the top of the
// stack identifies the faulty frame; the rest is noise at log volume.
func truncStack(stack []byte) string {
	const max = 600
	if len(stack) > max {
		return string(stack[:max]) + "…"
	}
	return string(stack)
}

// handleSolve is the request lifecycle of one solve: decode → resolve
// graph (cache + singleflight) → solve-cache lookup → admission → Runner
// checkout → run under the request context (recycled, optionally
// streaming round progress) → detach → receipt → cache → respond. Every
// blocking stage observes ctx — the configured solve deadline plus the
// client's disconnect — so an abandoned request frees its pool slot
// within one simulated round.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	rid := s.reqSeq.Add(1)
	ctx := r.Context()
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}

	// Read fully before decoding: when the graph hashes to another
	// daemon, the raw bytes forward verbatim — re-encoding a decoded
	// request could normalize a field and change the solve.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.error(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req SolveRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.error(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	modeOpt, err := modeOption(req.Mode)
	if err != nil {
		s.error(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Cluster routing: a solve for a graph this daemon does not own goes
	// to a healthy owner, so the owners' caches stay hot and every
	// replica of a graph answers from warm state. A forwarded request is
	// always executed locally (one hop, never a loop); when every owner
	// is down the fall-through below serves locally — the verified
	// failover path.
	if s.cluster != nil && r.Header.Get(forwardedHeader) == "" && !s.cluster.Owns(req.Graph) {
		if s.proxySolve(w, r, raw, &req, s.cluster.Owners(req.Graph)) {
			return
		}
		s.fallbacks.Add(1)
		s.logf("event=local_fallback graph=%s", req.Graph)
	}
	tBuild := time.Now()
	e, hit, status, err := s.resolveGraph(ctx, req.Graph)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.solveFail(w, nil, rid, req.Graph, req.Algorithm, err)
			return
		}
		s.error(w, status, "%v", err)
		return
	}
	if !hit {
		s.lat.build.observe(time.Since(tBuild))
	}

	req.normalize(e)
	key := req.key(e.id)
	if !req.Stream {
		if a, ok := s.scache.get(key); ok {
			s.solves.Add(1)
			resp := &SolveResponse{
				Graph: entryInfo(e), CacheHit: hit, SolveCached: true,
				ServedBy: s.cluster.Self(),
				Seed:     req.Seed, Receipt: a.receipt,
			}
			if req.IncludeDS {
				resp.DS = a.ds
			}
			s.lat.total.observe(time.Since(t0))
			s.logf("solve %s on %s seed=%d: cached answer (size=%d)",
				req.Algorithm, e.id[:14], req.Seed, a.receipt.SetSize)
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	// Fairness: a graph already at its in-flight cap sheds this request
	// before it can queue, so a hot graph saturates its own share of the
	// pool and nothing more.
	if !s.gate.acquire(e.id) {
		s.shed.Add(1)
		s.lat.shed.observe(time.Since(t0))
		w.Header().Set("Retry-After", s.retryAfterHint())
		s.errorCode(w, http.StatusTooManyRequests, "hot_graph",
			"graph %s already has %d solves in flight (per-graph cap)", e.id[:14], s.cfg.MaxPerGraph)
		return
	}
	defer s.gate.release(e.id)

	// Admission: bound queued solves so overload answers fast instead of
	// stacking goroutines behind the RunnerPool. The "server.admit"
	// failpoint injects the overflow deterministically for chaos tests.
	tQueue := time.Now()
	admitted := s.cfg.Faults.Fire("server.admit") == nil
	if admitted {
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
		default:
			admitted = false
		}
	}
	if !admitted {
		s.rejected.Add(1)
		s.shed.Add(1)
		s.lat.shed.observe(time.Since(t0))
		w.Header().Set("Retry-After", s.retryAfterHint())
		s.error(w, http.StatusTooManyRequests, "server at capacity (%d solves in flight or queued)", cap(s.admit))
		return
	}

	runner, err := s.pool.GetContext(ctx)
	if err != nil {
		s.solveFail(w, nil, rid, e.id, req.Algorithm, err)
		return
	}
	defer s.pool.Put(runner)
	s.lat.queue.observe(time.Since(tQueue))

	var stream *streamWriter
	opts := []arbods.Option{
		arbods.WithContext(ctx),
		arbods.WithSeed(req.Seed),
		arbods.WithRunner(runner),
		arbods.WithWorkers(s.pool.Workers()),
		arbods.WithRecycledResult(),
	}
	if modeOpt != nil {
		opts = append(opts, modeOpt)
	}
	if s.cfg.Faults != nil {
		opts = append(opts, arbods.WithFaultInjection(s.cfg.Faults))
	}
	if req.MaxRounds > 0 {
		opts = append(opts, arbods.WithMaxRounds(req.MaxRounds))
	}
	if req.Stream {
		stream = newStreamWriter(w)
		opts = append(opts, arbods.WithRoundObserver(stream.round))
	}

	tSolve := time.Now()
	rep, err := runAlgorithm(&req, e, opts)
	if err != nil {
		s.solveFail(w, stream, rid, e.id, req.Algorithm, err)
		return
	}
	s.lat.solve.observe(time.Since(tSolve))
	// Detach before the deferred Put: the recycled Result lives on
	// Runner-owned memory that the next checkout overwrites.
	rep = rep.Detach()
	s.solves.Add(1)

	receipt := arbods.BuildReceipt(e.g, rep)
	if !req.Stream {
		// Errors never land here, and the detached receipt/DS are
		// immutable, so the cached answer is exactly the bytes a rerun
		// would produce.
		s.scache.put(key, solveAnswer{receipt: receipt, ds: rep.DS})
	}
	resp := &SolveResponse{
		Graph:    entryInfo(e),
		CacheHit: hit,
		ServedBy: s.cluster.Self(),
		Seed:     req.Seed,
		Receipt:  receipt,
	}
	if req.IncludeDS {
		resp.DS = rep.DS
	}
	s.lat.total.observe(time.Since(t0))
	s.logf("solve %s on %s n=%d seed=%d: size=%d rounds=%d ok=%v hit=%v",
		req.Algorithm, e.id[:14], e.g.N(), req.Seed, resp.Receipt.SetSize, resp.Receipt.Rounds, resp.Receipt.OK, hit)
	if stream != nil {
		stream.finish(resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// streamWriter emits NDJSON round progress followed by the final result.
// All writes happen on the handler goroutine (the engine invokes the
// round observer on the run's coordinating goroutine, which is the
// handler's), so no locking is needed.
type streamWriter struct {
	w       http.ResponseWriter
	enc     *json.Encoder
	flusher http.Flusher
	started bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{w: w, enc: json.NewEncoder(w)}
	sw.flusher, _ = w.(http.Flusher)
	return sw
}

func (sw *streamWriter) start() {
	if sw.started {
		return
	}
	sw.started = true
	sw.w.Header().Set("Content-Type", "application/x-ndjson")
	sw.w.WriteHeader(http.StatusOK)
}

// progressLine is one streamed round.
type progressLine struct {
	Round       int   `json:"round"`
	Messages    int64 `json:"messages"`
	Bits        int64 `json:"bits"`
	ActiveNodes int   `json:"activeNodes"`
}

func (sw *streamWriter) round(rs arbods.RoundStat) {
	sw.start()
	_ = sw.enc.Encode(progressLine{
		Round: rs.Round, Messages: rs.Messages, Bits: rs.Bits, ActiveNodes: rs.ActiveNodes,
	})
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// fail emits the terminal NDJSON error line, carrying the same code an
// unstreamed response would have in its error envelope.
func (sw *streamWriter) fail(err error, code string) {
	sw.start()
	_ = sw.enc.Encode(errorBody{Error: err.Error(), Code: code})
}

func (sw *streamWriter) finish(resp *SolveResponse) {
	sw.start()
	_ = sw.enc.Encode(struct {
		Result *SolveResponse `json:"result"`
	}{Result: resp})
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}
