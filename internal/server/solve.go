package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"arbods"
)

// SolveRequest asks the server to run one algorithm on one graph.
type SolveRequest struct {
	// Graph references the input: "sha256:<hex>" (a previously uploaded
	// or cached graph), "corpus:<name>" (a file from the corpus
	// directory), or "spec:<gen-spec>" (a generator spec like
	// "forest:n=1000,k=3").
	Graph string `json:"graph"`
	// Algorithm is one of the /v1/algorithms names (default "thm1.1").
	Algorithm string `json:"algorithm,omitempty"`

	// Alpha pins the arboricity bound (0 = the graph's certified
	// default: generator bound, else degeneracy).
	Alpha int     `json:"alpha,omitempty"`
	Eps   float64 `json:"eps,omitempty"`  // default 0.2
	T     int     `json:"t,omitempty"`    // thm1.2 (default 2)
	K     int     `json:"k,omitempty"`    // thm1.3 / kw05 (default 2)
	Seed  uint64  `json:"seed,omitempty"` // run seed (deterministic per seed)

	// Mode is "congest" (default, strict bandwidth), "audit", or "local".
	Mode      string `json:"mode,omitempty"`
	MaxRounds int    `json:"maxRounds,omitempty"`

	// IncludeDS adds the dominating set's node IDs to the response
	// (receipts always carry the set size and weight).
	IncludeDS bool `json:"includeDS,omitempty"`
	// Stream switches the response to NDJSON: one line per simulated
	// round ({"round":…,"messages":…,"bits":…,"activeNodes":…}), then a
	// final {"result":…} line.
	Stream bool `json:"stream,omitempty"`
}

// SolveResponse is the answer-with-proof envelope.
type SolveResponse struct {
	Graph GraphInfo `json:"graph"`
	// CacheHit reports whether the graph's built CSR was already
	// resident (the repeat-query fast path).
	CacheHit bool   `json:"cacheHit"`
	Seed     uint64 `json:"seed"`
	DS       []int  `json:"ds,omitempty"`
	// Receipt is the verification record recomputed from the graph and
	// the run; byte-identical across repeats of the same request.
	Receipt *arbods.Receipt `json:"receipt"`
}

// algorithmCatalog documents the servable algorithms; names match
// cmd/mdsrun's -algo values.
var algorithmCatalog = []AlgorithmInfo{
	{Name: "thm3.1", Params: []string{"alpha", "eps"}, Description: "deterministic (2α+1)(1+ε)-approx, unweighted, O(log(Δ/α)/ε) rounds"},
	{Name: "thm1.1", Params: []string{"alpha", "eps"}, Description: "deterministic (2α+1)(1+ε)-approx, weighted, O(log(Δ/α)/ε) rounds"},
	{Name: "thm1.2", Params: []string{"alpha", "t"}, Description: "randomized α+O(α/t)-approx in expectation, weighted, O(t·log Δ) rounds"},
	{Name: "thm1.3", Params: []string{"k"}, Description: "randomized O(kΔ^{2/k})-approx in expectation, general graphs, O(k²) rounds"},
	{Name: "remark4.4", Params: []string{"alpha", "eps"}, Description: "Theorem 1.1 without global knowledge of Δ"},
	{Name: "remark4.5", Params: []string{"eps"}, Description: "Theorem 1.1 without knowledge of α (distributed H-partition estimate)"},
	{Name: "tree", Description: "Observation A.1: one-round 3-approx on forests"},
	{Name: "lw", Description: "Lenzen–Wattenhofer bucket greedy baseline, unweighted"},
	{Name: "lrg", Description: "Jia–Rajaraman–Suel local randomized greedy baseline, unweighted"},
	{Name: "kw05", Params: []string{"k"}, Description: "Kuhn–Wattenhofer fractional+rounding baseline, unweighted"},
}

// resolveGraph turns a request's graph reference into a cached entry,
// building (and caching) it on a miss. The returned bool reports a cache
// hit — the build was skipped.
func (s *Server) resolveGraph(ref string) (entryView, bool, int, error) {
	switch {
	case ref == "":
		return entryView{}, false, http.StatusBadRequest, fmt.Errorf("missing graph reference")
	case strings.HasPrefix(ref, "sha256:"):
		e, ok := s.cache.getID(ref)
		if !ok {
			return entryView{}, false, http.StatusNotFound,
				fmt.Errorf("graph %s not cached (upload it first; uploads cannot be rebuilt)", ref)
		}
		return e, true, 0, nil
	case strings.HasPrefix(ref, "corpus:"):
		if e, ok := s.cache.getName(ref); ok {
			return e, true, 0, nil
		}
		g, err := loadCorpus(s.cfg.CorpusDir, strings.TrimPrefix(ref, "corpus:"))
		if err != nil {
			return entryView{}, false, http.StatusNotFound, fmt.Errorf("load %s: %v", ref, err)
		}
		built, err := buildEntry(g, ref, 0)
		if err != nil {
			return entryView{}, false, http.StatusInternalServerError, err
		}
		e, _ := s.cache.insert(built, true)
		return e, false, 0, nil
	case strings.HasPrefix(ref, "spec:"):
		if e, ok := s.cache.getName(ref); ok {
			return e, true, 0, nil
		}
		g, bound, err := buildSpec(strings.TrimPrefix(ref, "spec:"))
		if err != nil {
			return entryView{}, false, http.StatusBadRequest, fmt.Errorf("bad spec %q: %v", ref, err)
		}
		built, err := buildEntry(g, ref, bound)
		if err != nil {
			return entryView{}, false, http.StatusInternalServerError, err
		}
		e, _ := s.cache.insert(built, true)
		return e, false, 0, nil
	default:
		return entryView{}, false, http.StatusBadRequest,
			fmt.Errorf("graph reference %q must start with sha256:, corpus:, or spec:", ref)
	}
}

// runAlgorithm dispatches one solve on the graph with the given options.
func runAlgorithm(req *SolveRequest, e entryView, opts []arbods.Option) (*arbods.Report, error) {
	g := e.g
	alpha := req.Alpha
	if alpha == 0 {
		alpha = e.alpha()
	}
	eps := req.Eps
	if eps == 0 {
		eps = 0.2
	}
	t := req.T
	if t == 0 {
		t = 2
	}
	k := req.K
	if k == 0 {
		k = 2
	}
	switch req.Algorithm {
	case "thm3.1":
		return arbods.UnweightedDeterministic(g, alpha, eps, opts...)
	case "", "thm1.1":
		return arbods.WeightedDeterministic(g, alpha, eps, opts...)
	case "thm1.2":
		return arbods.WeightedRandomized(g, alpha, t, opts...)
	case "thm1.3":
		return arbods.GeneralGraphs(g, k, opts...)
	case "remark4.4":
		return arbods.UnknownDelta(g, alpha, eps, opts...)
	case "remark4.5":
		return arbods.UnknownAlpha(g, eps, opts...)
	case "tree":
		return arbods.TreeThreeApprox(g, opts...)
	case "lw":
		return arbods.LWBucketDeterministic(g, opts...)
	case "lrg":
		return arbods.LRGRandomized(g, opts...)
	case "kw05":
		rep, _, err := arbods.KW05(g, k, opts...)
		return rep, err
	default:
		return nil, fmt.Errorf("unknown algorithm %q (see GET /v1/algorithms)", req.Algorithm)
	}
}

func modeOption(mode string) (arbods.Option, error) {
	switch mode {
	case "", "congest":
		return nil, nil
	case "audit":
		return arbods.WithMode(arbods.CongestAudit), nil
	case "local":
		return arbods.WithMode(arbods.Local), nil
	default:
		return nil, fmt.Errorf("unknown mode %q (congest, audit, local)", mode)
	}
}

// handleSolve is the request lifecycle of one solve: decode → resolve
// graph (cache) → admission → Runner checkout → run (recycled, optionally
// streaming round progress) → detach → receipt → respond.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.error(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	modeOpt, err := modeOption(req.Mode)
	if err != nil {
		s.error(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, hit, status, err := s.resolveGraph(req.Graph)
	if err != nil {
		s.error(w, status, "%v", err)
		return
	}

	// Admission: bound queued solves so overload answers fast instead of
	// stacking goroutines behind the RunnerPool.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.rejected.Add(1)
		s.error(w, http.StatusTooManyRequests, "server at capacity (%d solves in flight or queued)", cap(s.admit))
		return
	}

	var stream *streamWriter
	runner := s.pool.Get()
	defer s.pool.Put(runner)
	opts := []arbods.Option{
		arbods.WithSeed(req.Seed),
		arbods.WithRunner(runner),
		arbods.WithWorkers(s.pool.Workers()),
		arbods.WithRecycledResult(),
	}
	if modeOpt != nil {
		opts = append(opts, modeOpt)
	}
	if req.MaxRounds > 0 {
		opts = append(opts, arbods.WithMaxRounds(req.MaxRounds))
	}
	if req.Stream {
		stream = newStreamWriter(w)
		opts = append(opts, arbods.WithRoundObserver(stream.round))
	}

	rep, err := runAlgorithm(&req, e, opts)
	if err != nil {
		if stream != nil {
			stream.fail(err)
			return
		}
		s.error(w, http.StatusBadRequest, "run %s: %v", req.Algorithm, err)
		return
	}
	// Detach before the deferred Put: the recycled Result lives on
	// Runner-owned memory that the next checkout overwrites.
	rep = rep.Detach()
	s.solves.Add(1)

	resp := &SolveResponse{
		Graph:    entryInfo(e),
		CacheHit: hit,
		Seed:     req.Seed,
		Receipt:  arbods.BuildReceipt(e.g, rep),
	}
	if req.IncludeDS {
		resp.DS = rep.DS
	}
	s.logf("solve %s on %s n=%d seed=%d: size=%d rounds=%d ok=%v hit=%v",
		req.Algorithm, e.id[:14], e.g.N(), req.Seed, resp.Receipt.SetSize, resp.Receipt.Rounds, resp.Receipt.OK, hit)
	if stream != nil {
		stream.finish(resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// streamWriter emits NDJSON round progress followed by the final result.
// All writes happen on the handler goroutine (the engine invokes the
// round observer on the run's coordinating goroutine, which is the
// handler's), so no locking is needed.
type streamWriter struct {
	w       http.ResponseWriter
	enc     *json.Encoder
	flusher http.Flusher
	started bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{w: w, enc: json.NewEncoder(w)}
	sw.flusher, _ = w.(http.Flusher)
	return sw
}

func (sw *streamWriter) start() {
	if sw.started {
		return
	}
	sw.started = true
	sw.w.Header().Set("Content-Type", "application/x-ndjson")
	sw.w.WriteHeader(http.StatusOK)
}

// progressLine is one streamed round.
type progressLine struct {
	Round       int   `json:"round"`
	Messages    int64 `json:"messages"`
	Bits        int64 `json:"bits"`
	ActiveNodes int   `json:"activeNodes"`
}

func (sw *streamWriter) round(rs arbods.RoundStat) {
	sw.start()
	_ = sw.enc.Encode(progressLine{
		Round: rs.Round, Messages: rs.Messages, Bits: rs.Bits, ActiveNodes: rs.ActiveNodes,
	})
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

func (sw *streamWriter) fail(err error) {
	sw.start()
	_ = sw.enc.Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

func (sw *streamWriter) finish(resp *SolveResponse) {
	sw.start()
	_ = sw.enc.Encode(struct {
		Result *SolveResponse `json:"result"`
	}{Result: resp})
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}
