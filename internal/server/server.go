// Package server implements arbods-server: a long-running HTTP/JSON
// service that turns the library from a batch tool into a serving system.
// The design mirrors the library's own serving pattern end to end:
//
//   - graphs arrive by upload, by name from a corpus directory, or by
//     generator spec, and are cached as built CSRs keyed by content hash
//     (sha256 of the canonical encoding), so repeat queries skip the
//     build that dominates a cold request;
//   - solve requests are scheduled onto a shared congest.RunnerPool with
//     admission control, so concurrent clients never oversubscribe the
//     machine and every run executes on warmed, recycled Runner state;
//   - results are detached (Result.Detach) before their Runner returns to
//     the pool, so the zero-allocation hot path never leaks Runner-owned
//     memory into a response;
//   - every answer ships with a verification receipt (arbods.Receipt):
//     the coverage proof, the packing feasibility, and the α-bound ratio
//     check, recomputed from the graph and the run — clients verify, they
//     don't trust. Receipts are deterministic per (graph, algorithm,
//     parameters, seed): the same request twice returns byte-identical
//     receipt JSON;
//   - long runs stream round-level progress as NDJSON when the request
//     asks for it, riding the engine's WithRoundObserver hook;
//   - that same determinism powers a response-level solve cache: answers
//     are keyed by (graph, algorithm, parameters, seed) after default
//     normalization, so a repeated request skips the engine and returns
//     the byte-identical receipt from an LRU of past answers;
//   - concurrent cold builds of the same graph reference coalesce through
//     a singleflight group — one build, many waiters;
//   - every solve runs under a context: the configured server deadline
//     and the client's disconnect both cancel the engine at its next
//     round barrier (503 + Retry-After for the deadline, 499 for the
//     departed client), so a stuck or abandoned run frees its Runner
//     within one round instead of holding a pool slot hostage;
//   - /v1/stats counts both cache layers plus rejections, timeouts and
//     cancellations, and /v1/metrics serves log-spaced latency histograms
//     for the build, queue, solve and total phases of the request.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"arbods"
)

// Config configures a Server.
type Config struct {
	// CorpusDir is the directory served by "corpus:<name>" graph
	// references ("" disables the corpus).
	CorpusDir string
	// PoolSize bounds concurrently executing solves (0 = GOMAXPROCS).
	PoolSize int
	// MaxInflight bounds admitted-but-waiting solves before the server
	// answers 429 (0 = 4×PoolSize).
	MaxInflight int
	// MaxUploadBytes bounds the graph upload body (0 = 64 MiB).
	MaxUploadBytes int64
	// MaxCachedGraphs bounds resident built graphs, LRU-evicted (0 = 64).
	MaxCachedGraphs int
	// MaxCachedSolves bounds cached solve answers, LRU-evicted (0 = 256).
	MaxCachedSolves int
	// SolveTimeout bounds one solve request end to end (0 = no server
	// deadline; the client's disconnect still cancels). A run that hits
	// the deadline aborts at the next round barrier and answers 503 with
	// a Retry-After header.
	SolveTimeout time.Duration
	// Logf receives one line per request outcome (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the arbods-server HTTP handler plus the shared state behind
// it: the content-addressed graph cache and the RunnerPool all solves
// execute on. Create with New, serve via ServeHTTP, and Close after the
// HTTP server has fully shut down (Close waits for every Runner).
type Server struct {
	cfg    Config
	pool   *arbods.RunnerPool
	cache  *graphCache
	scache *solveCache
	flight flightGroup
	mux    *http.ServeMux
	admit  chan struct{}

	solves   atomic.Int64 // answered solves, response-cache hits included
	rejected atomic.Int64 // admission overflows (429)
	timeouts atomic.Int64 // solves lost to the deadline (503)
	canceled atomic.Int64 // solves lost to client disconnect (499)
	builds   atomic.Int64 // graph builds executed (singleflight leaders)
	lat      latencySet
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	pool := arbods.NewRunnerPool(cfg.PoolSize)
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * pool.Size()
	}
	s := &Server{
		cfg:    cfg,
		pool:   pool,
		cache:  newGraphCache(cfg.MaxCachedGraphs),
		scache: newSolveCache(cfg.MaxCachedSolves),
		mux:    http.NewServeMux(),
		admit:  make(chan struct{}, cfg.MaxInflight),
	}
	s.mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphMeta)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close releases the RunnerPool. Call only after the HTTP server has
// drained (http.Server.Shutdown): Close blocks until every checked-out
// Runner is back.
func (s *Server) Close() { s.pool.Close() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// GraphInfo describes one cached graph.
type GraphInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	// Alpha is the certified arboricity bound solves default to: the
	// generator-guaranteed bound when the graph came from a spec, else
	// the degeneracy (α ≤ degeneracy ≤ 2α−1).
	Alpha int   `json:"alpha"`
	Hits  int64 `json:"hits,omitempty"`
	// New reports whether an upload inserted the graph (false = already
	// resident under the same content hash).
	New bool `json:"new,omitempty"`
}

func entryInfo(e entryView) GraphInfo {
	return GraphInfo{
		ID: e.id, Name: e.name, Nodes: e.g.N(), Edges: e.g.M(),
		Alpha: e.alpha(), Hits: e.hits,
	}
}

// alpha is the α a solve uses when the request does not pin one.
func (e entryView) alpha() int {
	if e.bound > 0 {
		return e.bound
	}
	if e.degen > 0 {
		return e.degen
	}
	return 1
}

// handleUpload ingests a graph in the arbods text format and caches its
// built CSR under its content hash. Re-uploading the same graph — byte
// variations included, since hashing happens after canonicalization — is
// idempotent and returns the resident entry.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	// Read fully before decoding: a cap hit must answer 413, not whatever
	// parse error the truncation happens to produce.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.error(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
			return
		}
		s.error(w, http.StatusBadRequest, "read upload: %v", err)
		return
	}
	g, err := arbods.DecodeGraph(bytes.NewReader(raw))
	if err != nil {
		s.error(w, http.StatusBadRequest, "decode graph: %v", err)
		return
	}
	e, err := buildEntry(g, "", 0)
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resident, existed := s.cache.insert(e, false)
	info := entryInfo(resident)
	info.New = !existed
	s.logf("upload %s n=%d m=%d new=%v", resident.id, g.N(), g.M(), !existed)
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	entries, _, _ := s.cache.snapshot()
	infos := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, entryInfo(e))
	}
	s.writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGraphMeta(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.cache.getID(id)
	if !ok {
		s.error(w, http.StatusNotFound, "graph %s not cached", id)
		return
	}
	s.writeJSON(w, http.StatusOK, entryInfo(e))
}

// AlgorithmInfo documents one servable algorithm.
type AlgorithmInfo struct {
	Name        string   `json:"name"`
	Params      []string `json:"params,omitempty"`
	Description string   `json:"description"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, algorithmCatalog)
}

// Stats is the /v1/stats payload. Two cache layers report separately:
// cacheHits/cacheMisses count graph-build lookups (was the CSR resident?),
// solveCacheHits/solveCacheMisses count answer lookups (was this exact
// solve already computed?). solves counts answered solves — response-cache
// hits included — so engine runs = solves − solveCacheHits − streamed
// cache bypasses; builds counts graph builds actually executed, which
// singleflight keeps at one per cold reference no matter how many
// requests race on it.
type Stats struct {
	Graphs           int   `json:"graphs"`
	CacheHits        int64 `json:"cacheHits"`
	CacheMisses      int64 `json:"cacheMisses"`
	SolveCacheHits   int64 `json:"solveCacheHits"`
	SolveCacheMisses int64 `json:"solveCacheMisses"`
	Builds           int64 `json:"builds"`
	Solves           int64 `json:"solves"`
	Rejected         int64 `json:"rejected"`
	Timeouts         int64 `json:"timeouts"`
	Canceled         int64 `json:"canceled"`
	PoolSize         int   `json:"poolSize"`
	PoolWorkers      int   `json:"poolWorkers"`
	MaxInflight      int   `json:"maxInflight"`
}

func (s *Server) statsNow() Stats {
	entries, hits, misses := s.cache.snapshot()
	shits, smisses := s.scache.counters()
	return Stats{
		Graphs:           len(entries),
		CacheHits:        hits,
		CacheMisses:      misses,
		SolveCacheHits:   shits,
		SolveCacheMisses: smisses,
		Builds:           s.builds.Load(),
		Solves:           s.solves.Load(),
		Rejected:         s.rejected.Load(),
		Timeouts:         s.timeouts.Load(),
		Canceled:         s.canceled.Load(),
		PoolSize:         s.pool.Size(),
		PoolWorkers:      s.pool.Workers(),
		MaxInflight:      cap(s.admit),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.statsNow())
}

// handleMetrics serves the solve-path latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.lat.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}{Status: "ok", Stats: s.statsNow()})
}

// errorBody is the uniform JSON error envelope: a human-readable message
// plus a stable machine-readable code, the same shape on every /v1/
// handler so clients switch on code, not on message text.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// StatusClientClosedRequest reports a solve abandoned because the client
// disconnected mid-request (nginx's 499; Go's net/http has no name for
// it). The status is moot to the departed client but keeps logs and
// tests honest about why the run stopped.
const StatusClientClosedRequest = 499

// defaultCode maps a status to its error code for the handlers that have
// exactly one failure meaning per status. Handlers with a more specific
// cause (deadline_exceeded, canceled) pass it to errorCode directly.
func defaultCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "at_capacity"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case StatusClientClosedRequest:
		return "canceled"
	default:
		return "internal"
	}
}

func (s *Server) error(w http.ResponseWriter, status int, format string, args ...any) {
	s.errorCode(w, status, defaultCode(status), format, args...)
}

func (s *Server) errorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("error %d %s: %s", status, code, msg)
	s.writeJSON(w, status, errorBody{Error: msg, Code: code})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("write response: %v", err)
	}
}
