// Package server implements arbods-server: a long-running HTTP/JSON
// service that turns the library from a batch tool into a serving system.
// The design mirrors the library's own serving pattern end to end:
//
//   - graphs arrive by upload, by name from a corpus directory, or by
//     generator spec, and are cached as built CSRs keyed by content hash
//     (sha256 of the canonical encoding), so repeat queries skip the
//     build that dominates a cold request;
//   - solve requests are scheduled onto a shared congest.RunnerPool with
//     admission control, so concurrent clients never oversubscribe the
//     machine and every run executes on warmed, recycled Runner state;
//   - results are detached (Result.Detach) before their Runner returns to
//     the pool, so the zero-allocation hot path never leaks Runner-owned
//     memory into a response;
//   - every answer ships with a verification receipt (arbods.Receipt):
//     the coverage proof, the packing feasibility, and the α-bound ratio
//     check, recomputed from the graph and the run — clients verify, they
//     don't trust. Receipts are deterministic per (graph, algorithm,
//     parameters, seed): the same request twice returns byte-identical
//     receipt JSON;
//   - long runs stream round-level progress as NDJSON when the request
//     asks for it, riding the engine's WithRoundObserver hook;
//   - that same determinism powers a response-level solve cache: answers
//     are keyed by (graph, algorithm, parameters, seed) after default
//     normalization, so a repeated request skips the engine and returns
//     the byte-identical receipt from an LRU of past answers;
//   - concurrent cold builds of the same graph reference coalesce through
//     a singleflight group — one build, many waiters;
//   - every solve runs under a context: the configured server deadline
//     and the client's disconnect both cancel the engine at its next
//     round barrier (503 + Retry-After for the deadline, 499 for the
//     departed client), so a stuck or abandoned run frees its Runner
//     within one round instead of holding a pool slot hostage;
//   - a panicking proc callback cannot take the process down: the engine
//     recovers it on its own goroutines, the request answers 500 with
//     code "proc_panic" and one structured log record (request id, graph,
//     round, node, truncated stack), and the poisoned Runner is swapped
//     for a fresh one at checkin — every other in-flight solve finishes
//     untouched;
//   - with Config.DataDir set, every uploaded or name-built graph is
//     mirrored to disk as a checksummed binary CSR snapshot (atomic
//     temp+rename writes, so a SIGKILL cannot tear them) and restored at
//     startup: a restarted server answers sha256: references from before
//     the crash without re-uploading, and corrupt snapshots are detected,
//     logged, dropped, and rebuilt from source on demand;
//   - overload is shed fairly and fast: the global admission cap and a
//     per-graph in-flight cap both answer 429 + Retry-After (the shed
//     counter and histogram track them), and /readyz — distinct from
//     /healthz's liveness — flips to 503 when a drain begins so the load
//     balancer steers traffic away while in-flight solves complete;
//   - /v1/stats counts both cache layers plus rejections, sheds,
//     timeouts, cancellations, panics, replaced Runners and snapshot
//     activity, and /v1/metrics serves log-spaced latency histograms for
//     the build, queue, solve, total and shed phases of the request.
//
// Failure injection for the chaos suite threads through Config.Faults
// (internal/faultinject): deterministic, seeded faults at the
// server.build, server.admit, persist.writeBlob, persist.writeIndex and
// congest.step seams.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"arbods"
	"arbods/internal/cluster"
	"arbods/internal/faultinject"
)

// Config configures a Server.
type Config struct {
	// CorpusDir is the directory served by "corpus:<name>" graph
	// references ("" disables the corpus).
	CorpusDir string
	// PoolSize bounds concurrently executing solves (0 = GOMAXPROCS).
	PoolSize int
	// MaxInflight bounds admitted-but-waiting solves before the server
	// answers 429 (0 = 4×PoolSize).
	MaxInflight int
	// MaxUploadBytes bounds the graph upload body (0 = 64 MiB).
	MaxUploadBytes int64
	// MaxCachedGraphs bounds resident built graphs, LRU-evicted (0 = 64).
	MaxCachedGraphs int
	// MaxCachedSolves bounds cached solve answers, LRU-evicted (0 = 256).
	MaxCachedSolves int
	// SolveTimeout bounds one solve request end to end (0 = no server
	// deadline; the client's disconnect still cancels). A run that hits
	// the deadline aborts at the next round barrier and answers 503 with
	// a Retry-After header.
	SolveTimeout time.Duration
	// MaxPerGraph bounds solves in flight for any single graph, so one hot
	// graph cannot starve every other client out of the pool: the excess
	// answers 429 with Retry-After and counts in the shed counter (0 =
	// MaxInflight, i.e. no per-graph restriction beyond the global cap).
	MaxPerGraph int
	// DataDir enables crash-safe snapshot persistence: every uploaded or
	// name-built graph is mirrored to <DataDir>/graphs as a checksummed
	// binary CSR blob plus an index row, and restored on the next New —
	// a restarted server answers sha256: references from before the
	// restart without re-uploading or re-parsing ("" disables).
	DataDir string
	// Cluster joins this daemon to a replicated peer set (nil = standalone).
	// Graph references rendezvous-hash to Cluster.Replicas() owner
	// daemons: solves for graphs this daemon does not own are proxied to
	// a healthy owner (tagged servedBy/proxied in the response) and fall
	// back to a local solve when every owner is down; uploads are
	// replicated to their owners as ARBCSR01 snapshots; sha256: graphs
	// missing locally are recovered from any healthy peer. The Server
	// takes ownership: New starts the health prober, Close stops it.
	Cluster *cluster.Set
	// Faults injects deterministic failures for chaos testing: the server
	// fires "server.build" before a graph build, "server.admit" before
	// admission, "persist.writeBlob"/"persist.writeIndex" around snapshot
	// writes, and threads the registry into every engine run for
	// "congest.step" (nil = no injection, at the cost of one comparison
	// per seam).
	Faults *faultinject.Registry
	// Logf receives one line per request outcome (nil = silent).
	Logf func(format string, args ...any)
}

// Server is the arbods-server HTTP handler plus the shared state behind
// it: the content-addressed graph cache and the RunnerPool all solves
// execute on. Create with New, serve via ServeHTTP, and Close after the
// HTTP server has fully shut down (Close waits for every Runner).
type Server struct {
	cfg     Config
	pool    *arbods.RunnerPool
	cache   *graphCache
	scache  *solveCache
	persist *persistStore // nil when DataDir is unset
	cluster *cluster.Set  // nil when standalone
	gate    *graphGate
	flight  flightGroup
	mux     *http.ServeMux
	admit   chan struct{}

	draining atomic.Bool   // flipped by BeginDrain; /readyz answers 503
	reqSeq   atomic.Uint64 // request ids for the structured failure records

	solves   atomic.Int64 // answered solves, response-cache hits included
	rejected atomic.Int64 // admission overflows (429)
	shed     atomic.Int64 // all load-shedding 429s: admission overflows + per-graph caps
	timeouts atomic.Int64 // solves lost to the deadline (503)
	canceled atomic.Int64 // solves lost to client disconnect (499)
	panics   atomic.Int64 // solves lost to a recovered proc panic (500)
	builds   atomic.Int64 // graph builds executed (singleflight leaders)

	proxied     atomic.Int64 // solves forwarded to an owner daemon
	fallbacks   atomic.Int64 // non-owned solves served locally (all owners down)
	snapFetches atomic.Int64 // graphs recovered from a peer's snapshot
	replPushes  atomic.Int64 // upload snapshots replicated to owners
	replFails   atomic.Int64 // failed replication pushes

	lat latencySet
}

// New builds a Server from cfg. The only error source is snapshot
// persistence: an unusable DataDir fails construction rather than
// silently serving without durability.
func New(cfg Config) (*Server, error) {
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 64 << 20
	}
	pool := arbods.NewRunnerPool(cfg.PoolSize)
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * pool.Size()
	}
	if cfg.MaxPerGraph <= 0 || cfg.MaxPerGraph > cfg.MaxInflight {
		cfg.MaxPerGraph = cfg.MaxInflight
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		cache:   newGraphCache(cfg.MaxCachedGraphs),
		scache:  newSolveCache(cfg.MaxCachedSolves),
		cluster: cfg.Cluster,
		gate:    newGraphGate(cfg.MaxPerGraph),
		mux:     http.NewServeMux(),
		admit:   make(chan struct{}, cfg.MaxInflight),
	}
	s.cluster.Start()
	if cfg.DataDir != "" {
		ps, err := newPersistStore(cfg.DataDir, s.logf, cfg.Faults)
		if err != nil {
			pool.Close()
			return nil, err
		}
		s.persist = ps
		// Restore snapshots without counting builds or cache misses: the
		// graphs are served exactly as if their uploads had survived the
		// restart.
		for _, e := range ps.load() {
			s.cache.insert(e, false)
		}
		if loaded, _, _ := ps.counters(); loaded > 0 {
			s.logf("event=snapshot_restore graphs=%d dir=%s", loaded, cfg.DataDir)
		}
	}
	s.mux.HandleFunc("POST /v1/graphs", s.handleUpload)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphMeta)
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the cluster prober and releases the RunnerPool. Call only
// after the HTTP server has drained (http.Server.Shutdown): Close blocks
// until every checked-out Runner is back.
func (s *Server) Close() {
	s.cluster.Close()
	s.pool.Close()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// GraphInfo describes one cached graph.
type GraphInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	// Alpha is the certified arboricity bound solves default to: the
	// generator-guaranteed bound when the graph came from a spec, else
	// the degeneracy (α ≤ degeneracy ≤ 2α−1).
	Alpha int   `json:"alpha"`
	Hits  int64 `json:"hits,omitempty"`
	// New reports whether an upload inserted the graph (false = already
	// resident under the same content hash).
	New bool `json:"new,omitempty"`
}

func entryInfo(e entryView) GraphInfo {
	return GraphInfo{
		ID: e.id, Name: e.name, Nodes: e.g.N(), Edges: e.g.M(),
		Alpha: e.alpha(), Hits: e.hits,
	}
}

// alpha is the α a solve uses when the request does not pin one.
func (e entryView) alpha() int {
	if e.bound > 0 {
		return e.bound
	}
	if e.degen > 0 {
		return e.degen
	}
	return 1
}

// handleUpload ingests a graph in the arbods text format and caches its
// built CSR under its content hash. Re-uploading the same graph — byte
// variations included, since hashing happens after canonicalization — is
// idempotent and returns the resident entry.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	// Read fully before decoding: a cap hit must answer 413, not whatever
	// parse error the truncation happens to produce.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.error(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.cfg.MaxUploadBytes)
			return
		}
		s.error(w, http.StatusBadRequest, "read upload: %v", err)
		return
	}
	// Content negotiation: the default is the arbods text format; the
	// ARBCSR01 binary codec — the same checksummed encoding the disk
	// snapshots use — skips the text parse entirely, and is how peers
	// replicate uploads to each other.
	var g *arbods.Graph
	if strings.Contains(r.Header.Get("Content-Type"), binaryContentType) {
		g, err = arbods.DecodeGraphBinary(bytes.NewReader(raw))
	} else {
		g, err = arbods.DecodeGraph(bytes.NewReader(raw))
	}
	if err != nil {
		s.error(w, http.StatusBadRequest, "decode graph: %v", err)
		return
	}
	e, err := buildEntry(g, "", 0)
	if err != nil {
		s.error(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resident, existed := s.cache.insert(e, false)
	if s.persist != nil && !existed {
		// Synchronous by design: once the 200 is on the wire the graph is
		// durable — a crash right after the response cannot lose it.
		s.persist.save(resident)
	}
	// Replicate fresh direct uploads to the graph's owner daemons, so a
	// proxied solve lands on a warm cache and the graph outlives this
	// process. Forwarded pushes stop here — one hop, no echo.
	if s.cluster != nil && !existed && r.Header.Get(forwardedHeader) == "" {
		s.replicate(resident)
	}
	info := entryInfo(resident)
	info.New = !existed
	s.logf("upload %s n=%d m=%d new=%v", resident.id, g.N(), g.M(), !existed)
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	entries, _, _ := s.cache.snapshot()
	infos := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, entryInfo(e))
	}
	s.writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGraphMeta(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.cache.getID(id)
	if !ok {
		s.error(w, http.StatusNotFound, "graph %s not cached", id)
		return
	}
	// Accept negotiation: ARBCSR01 serves the graph itself rather than
	// its metadata — the snapshot-fetch path peers use for failover
	// rebuilds, and the cheapest way for any client to download a cached
	// graph byte-exactly. Local cache only, never fetched recursively.
	if strings.Contains(r.Header.Get("Accept"), binaryContentType) {
		var buf bytes.Buffer
		if err := arbods.EncodeGraphBinary(&buf, e.g); err != nil {
			s.error(w, http.StatusInternalServerError, "encode graph: %v", err)
			return
		}
		w.Header().Set("Content-Type", binaryContentType)
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		w.Write(buf.Bytes())
		return
	}
	s.writeJSON(w, http.StatusOK, entryInfo(e))
}

// AlgorithmInfo documents one servable algorithm.
type AlgorithmInfo struct {
	Name        string   `json:"name"`
	Params      []string `json:"params,omitempty"`
	Description string   `json:"description"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, algorithmCatalog)
}

// Stats is the /v1/stats payload. Two cache layers report separately:
// cacheHits/cacheMisses count graph-build lookups (was the CSR resident?),
// solveCacheHits/solveCacheMisses count answer lookups (was this exact
// solve already computed?). solves counts answered solves — response-cache
// hits included — so engine runs = solves − solveCacheHits − streamed
// cache bypasses; builds counts graph builds actually executed, which
// singleflight keeps at one per cold reference no matter how many
// requests race on it.
type Stats struct {
	Graphs           int   `json:"graphs"`
	CacheHits        int64 `json:"cacheHits"`
	CacheMisses      int64 `json:"cacheMisses"`
	SolveCacheHits   int64 `json:"solveCacheHits"`
	SolveCacheMisses int64 `json:"solveCacheMisses"`
	Builds           int64 `json:"builds"`
	Solves           int64 `json:"solves"`
	Rejected         int64 `json:"rejected"`
	// Shed counts every load-shedding 429 — admission-queue overflows
	// (also in Rejected) plus per-graph fairness sheds.
	Shed     int64 `json:"shed"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	// Panics counts solves that died to a recovered proc panic (500); each
	// one also retired its Runner, so RunnersReplaced tracks it.
	Panics          int64 `json:"panics"`
	RunnersReplaced int64 `json:"runnersReplaced"`
	SnapshotsLoaded int64 `json:"snapshotsLoaded,omitempty"`
	SnapshotSaves   int64 `json:"snapshotSaves,omitempty"`
	SnapshotErrors  int64 `json:"snapshotErrors,omitempty"`
	PoolSize        int   `json:"poolSize"`
	PoolWorkers     int   `json:"poolWorkers"`
	MaxInflight     int   `json:"maxInflight"`
	MaxPerGraph     int   `json:"maxPerGraph"`
	Draining        bool  `json:"draining,omitempty"`
	// Cluster reports the replication layer's view — per-peer health and
	// traffic plus this daemon's proxy/replication counters — and is
	// absent on a standalone server.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the /v1/stats cluster section.
type ClusterStats struct {
	Self     string `json:"self"`
	Replicas int    `json:"replicas"`
	// Proxied counts solves this daemon forwarded to an owner;
	// LocalFallbacks counts non-owned solves served locally because every
	// owner was down — the failover the receipts then verify.
	Proxied        int64 `json:"proxied"`
	LocalFallbacks int64 `json:"localFallbacks"`
	// SnapshotFetches counts graphs recovered from a peer over the
	// ARBCSR01 wire; ReplicaPushes/ReplicaPushFailures count upload
	// replication to owner daemons.
	SnapshotFetches     int64                `json:"snapshotFetches"`
	ReplicaPushes       int64                `json:"replicaPushes"`
	ReplicaPushFailures int64                `json:"replicaPushFailures"`
	Peers               []cluster.PeerStatus `json:"peers"`
}

func (s *Server) statsNow() Stats {
	entries, hits, misses := s.cache.snapshot()
	shits, smisses := s.scache.counters()
	loaded, saves, serrs := s.persist.counters()
	var cs *ClusterStats
	if s.cluster != nil {
		cs = &ClusterStats{
			Self:                s.cluster.Self(),
			Replicas:            s.cluster.Replicas(),
			Proxied:             s.proxied.Load(),
			LocalFallbacks:      s.fallbacks.Load(),
			SnapshotFetches:     s.snapFetches.Load(),
			ReplicaPushes:       s.replPushes.Load(),
			ReplicaPushFailures: s.replFails.Load(),
			Peers:               s.cluster.Status(),
		}
	}
	return Stats{
		Cluster:          cs,
		Graphs:           len(entries),
		CacheHits:        hits,
		CacheMisses:      misses,
		SolveCacheHits:   shits,
		SolveCacheMisses: smisses,
		Builds:           s.builds.Load(),
		Solves:           s.solves.Load(),
		Rejected:         s.rejected.Load(),
		Shed:             s.shed.Load(),
		Timeouts:         s.timeouts.Load(),
		Canceled:         s.canceled.Load(),
		Panics:           s.panics.Load(),
		RunnersReplaced:  s.pool.Replaced(),
		SnapshotsLoaded:  loaded,
		SnapshotSaves:    saves,
		SnapshotErrors:   serrs,
		PoolSize:         s.pool.Size(),
		PoolWorkers:      s.pool.Workers(),
		MaxInflight:      cap(s.admit),
		MaxPerGraph:      s.cfg.MaxPerGraph,
		Draining:         s.draining.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.statsNow())
}

// handleMetrics serves the solve-path latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.lat.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}{Status: "ok", Stats: s.statsNow()})
}

// handleReadyz is the load-balancer readiness probe, distinct from
// /healthz on purpose: /healthz answers "is the process alive" (200 for as
// long as it can serve at all — restarting it would not help), /readyz
// answers "should new traffic come here" and flips to 503 the moment a
// drain begins, so the balancer steers new requests away while in-flight
// solves finish under the drain timeout.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// BeginDrain flips the server to not-ready: /readyz starts answering 503
// while every other endpoint keeps serving, giving the load balancer time
// to move traffic before http.Server.Shutdown stops accepting. Idempotent;
// there is no way back — a draining server is on its way out.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.logf("event=drain_begin")
	}
}

// retryAfterHint estimates how many seconds a shed or timed-out client
// should wait before retrying, from live load instead of a constant:
// (queued solves + 1) × mean solve latency ÷ pool workers, rounded up and
// clamped to [1, 30]. A cold server with no latency history answers the
// floor — the old hard-coded "1" — and a deeply backed-up server saturates
// at 30 rather than telling clients to go away for minutes.
func (s *Server) retryAfterHint() string {
	mean := s.lat.solve.mean()
	if mean <= 0 {
		return "1"
	}
	wait := time.Duration(len(s.admit)+1) * mean / time.Duration(s.pool.Size())
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// errorBody is the uniform JSON error envelope: a human-readable message
// plus a stable machine-readable code, the same shape on every /v1/
// handler so clients switch on code, not on message text.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// StatusClientClosedRequest reports a solve abandoned because the client
// disconnected mid-request (nginx's 499; Go's net/http has no name for
// it). The status is moot to the departed client but keeps logs and
// tests honest about why the run stopped.
const StatusClientClosedRequest = 499

// defaultCode maps a status to its error code for the handlers that have
// exactly one failure meaning per status. Handlers with a more specific
// cause (deadline_exceeded, canceled) pass it to errorCode directly.
func defaultCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusTooManyRequests:
		return "at_capacity"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case StatusClientClosedRequest:
		return "canceled"
	default:
		return "internal"
	}
}

func (s *Server) error(w http.ResponseWriter, status int, format string, args ...any) {
	s.errorCode(w, status, defaultCode(status), format, args...)
}

func (s *Server) errorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.logf("error %d %s: %s", status, code, msg)
	s.writeJSON(w, status, errorBody{Error: msg, Code: code})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("write response: %v", err)
	}
}
