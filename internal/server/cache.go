package server

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"arbods"
	"arbods/internal/gen"
)

// graphEntry is one built graph resident in the cache: the CSR itself plus
// the metadata a solve needs (the arboricity bound the construction
// certifies, or the degeneracy fallback computed once at build time).
type graphEntry struct {
	id    string // "sha256:<hex>" over the canonical encoding
	name  string // corpus or spec reference that produced it ("" for uploads)
	g     *arbods.Graph
	bound int // generator-certified α (0 = none)
	degen int // degeneracy, the certified α fallback (computed at insert)
	hits  int64

	elem *list.Element // position in the LRU list
}

// entryView is an immutable snapshot of a cache entry, safe to read after
// the cache mutex is released (hits and name on the live entry keep
// moving under concurrent requests).
type entryView struct {
	id    string
	name  string
	g     *arbods.Graph
	bound int
	degen int
	hits  int64
}

// view snapshots the entry; callers must hold the cache mutex.
func (e *graphEntry) view() entryView {
	return entryView{id: e.id, name: e.name, g: e.g, bound: e.bound, degen: e.degen, hits: e.hits}
}

// graphCache is the content-addressed store of built graph.Graph CSRs.
// Keys are sha256 hashes of the canonical text encoding, so the same
// graph uploaded twice — or reached once by upload and once by generator
// spec — builds exactly once; repeat solve requests skip the build
// entirely (the ~255ms that dominates a cold million-node request).
// Secondary keys map corpus names and generator specs to their hash, so
// by-name requests hit without re-reading or re-generating. Eviction is
// LRU at a fixed entry capacity.
type graphCache struct {
	mu     sync.Mutex
	cap    int
	byID   map[string]*graphEntry
	byName map[string]string // "corpus:x" / "spec:y" → id
	lru    *list.List        // front = most recently used; values are *graphEntry
	hits   int64
	misses int64
}

func newGraphCache(capacity int) *graphCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &graphCache{
		cap:    capacity,
		byID:   make(map[string]*graphEntry),
		byName: make(map[string]string),
		lru:    list.New(),
	}
}

// hashGraph returns the content address of g: sha256 over the canonical
// text encoding (sorted neighbor lists, edges emitted once with u < v),
// so isomorphic *labelled* graphs — however they arrived — share an id.
func hashGraph(g *arbods.Graph) (string, error) {
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, g); err != nil {
		return "", fmt.Errorf("canonicalize: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// getID returns the entry under id, counting a solve-path hit or miss.
func (c *graphCache) getID(id string) (entryView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byID[id]
	if !ok {
		c.misses++
		return entryView{}, false
	}
	c.touch(e)
	c.hits++
	return e.view(), true
}

// getName returns the entry under a secondary name key ("corpus:…",
// "spec:…"), counting a hit; a miss is not counted here because the
// caller proceeds to build and insert (insert counts it).
func (c *graphCache) getName(name string) (entryView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.byName[name]
	if !ok {
		return entryView{}, false
	}
	e, ok := c.byID[id]
	if !ok { // name outlived an evicted entry
		delete(c.byName, name)
		return entryView{}, false
	}
	c.touch(e)
	c.hits++
	return e.view(), true
}

// insert stores a freshly built graph, counting the build as a cache miss
// when countMiss is set (solve path; uploads pre-populate without skewing
// the solve-path counters). If the id is already resident the existing
// entry wins — the build raced with another request — and the name key is
// attached to it. Returns the resident entry and whether it already
// existed.
func (c *graphCache) insert(e *graphEntry, countMiss bool) (entryView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if countMiss {
		c.misses++
	}
	if old, ok := c.byID[e.id]; ok {
		if e.name != "" {
			c.byName[e.name] = old.id
			if old.name == "" {
				old.name = e.name
			}
		}
		c.touch(old)
		return old.view(), true
	}
	e.elem = c.lru.PushFront(e)
	c.byID[e.id] = e
	if e.name != "" {
		c.byName[e.name] = e.id
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		ev := back.Value.(*graphEntry)
		c.lru.Remove(back)
		delete(c.byID, ev.id)
		if ev.name != "" && c.byName[ev.name] == ev.id {
			delete(c.byName, ev.name)
		}
	}
	return e.view(), false
}

func (c *graphCache) touch(e *graphEntry) {
	e.hits++
	c.lru.MoveToFront(e.elem)
}

// snapshot returns views of the resident entries, most recently used
// first, and the cumulative solve-path hit/miss counters.
func (c *graphCache) snapshot() (entries []entryView, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*graphEntry).view())
	}
	return entries, c.hits, c.misses
}

// corpusName restricts by-name corpus references to plain file names —
// no separators, no traversal, nothing hidden.
var corpusName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// buildEntry constructs a cache entry for a built graph under the given
// name key, computing the degeneracy fallback once so solves never pay
// for it.
func buildEntry(g *arbods.Graph, name string, bound int) (*graphEntry, error) {
	id, err := hashGraph(g)
	if err != nil {
		return nil, err
	}
	_, degen := arbods.Degeneracy(g)
	return &graphEntry{id: id, name: name, g: g, bound: bound, degen: degen}, nil
}

// loadCorpus reads and builds a graph from the corpus directory.
func loadCorpus(dir, name string) (*arbods.Graph, error) {
	if dir == "" {
		return nil, fmt.Errorf("no corpus directory configured")
	}
	if !corpusName.MatchString(name) || strings.Contains(name, "..") {
		return nil, fmt.Errorf("invalid corpus name %q", name)
	}
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return arbods.DecodeGraph(f)
}

// buildSpec generates a graph from an internal/gen spec string.
func buildSpec(spec string) (*arbods.Graph, int, error) {
	w, err := gen.Parse(spec)
	if err != nil {
		return nil, 0, err
	}
	return w.G, w.ArboricityBound, nil
}
