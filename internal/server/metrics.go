package server

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-spaced latency buckets: bucket i counts
// observations ≤ 2^i microseconds, so 24 buckets span 1µs to ~8.4s —
// everything from a solve-cache hit to a million-node cold solve. Slower
// observations land only in the totals (count/sum), which is the implicit
// +Inf bucket of a cumulative histogram.
const histBuckets = 24

// histogram is a fixed-bucket, log-spaced latency histogram with atomic
// counters: observe is wait-free and allocation-free, so the solve hot
// path can record build/queue/solve/total times without a lock. Buckets
// are cumulative Prometheus-style ("count of observations ≤ bound").
type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	buckets [histBuckets]atomic.Int64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sum.Add(us)
	// Cumulative buckets: increment every bucket whose bound covers us.
	// bits.Len-style search would touch one slot, but then snapshots would
	// have to sum; with ≤24 adds per observation the simple loop keeps the
	// read side a plain copy.
	for i := 0; i < histBuckets; i++ {
		if us <= 1<<uint(i) {
			h.buckets[i].Add(1)
		}
	}
}

// mean reports the average observed duration, zero when empty. The
// adaptive Retry-After hint uses it to turn "queue depth × mean solve
// time ÷ workers" into seconds.
func (h *histogram) mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Bucket is one cumulative histogram bucket: Count observations took at
// most LeMicros microseconds.
type Bucket struct {
	LeMicros int64 `json:"leMicros"`
	Count    int64 `json:"count"`
}

// HistogramSnapshot is the JSON view of a histogram: total count, the sum
// in microseconds (count and sum give the mean; the implicit +Inf bucket
// is Count itself), and the cumulative buckets. Empty buckets beyond the
// largest observation are trimmed.
type HistogramSnapshot struct {
	Count     int64    `json:"count"`
	SumMicros int64    `json:"sumMicros"`
	Buckets   []Bucket `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumMicros: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	buckets := make([]Bucket, 0, histBuckets)
	for i := 0; i < histBuckets; i++ {
		buckets = append(buckets, Bucket{LeMicros: 1 << uint(i), Count: h.buckets[i].Load()})
	}
	// Trim the saturated tail: once a bucket holds every observation, the
	// rest repeat it.
	for len(buckets) > 1 && buckets[len(buckets)-2].Count == s.Count {
		buckets = buckets[:len(buckets)-1]
	}
	s.Buckets = buckets
	return s
}

// latencySet is the server's solve-path latency breakdown.
type latencySet struct {
	build histogram // graph resolve on a cache miss (decode/generate + CSR build + degeneracy)
	queue histogram // admission to Runner checkout
	solve histogram // engine run (runAlgorithm)
	total histogram // handler entry to response ready, all outcomes that produced an answer
	shed  histogram // handler entry to a load-shedding 429 (queue overflow or per-graph cap)
	proxy histogram // solves forwarded to an owner daemon, request to relayed response
}

// Metrics is the /v1/metrics payload: one histogram per solve phase.
// build counts only graph-cache misses (hits skip the build entirely);
// queue and solve count executed runs; total counts every answered solve,
// response-cache hits included; shed counts the load-shedding 429s — its
// latencies say how fast overload is being turned away, which is the
// property that keeps an overloaded server responsive.
type Metrics struct {
	BuildMicros HistogramSnapshot `json:"buildMicros"`
	QueueMicros HistogramSnapshot `json:"queueMicros"`
	SolveMicros HistogramSnapshot `json:"solveMicros"`
	TotalMicros HistogramSnapshot `json:"totalMicros"`
	ShedMicros  HistogramSnapshot `json:"shedMicros"`
	// ProxyMicros counts solves this daemon forwarded to an owner peer —
	// end to end, including the owner's own queue and solve time.
	ProxyMicros HistogramSnapshot `json:"proxyMicros"`
}

func (l *latencySet) snapshot() Metrics {
	return Metrics{
		BuildMicros: l.build.snapshot(),
		QueueMicros: l.queue.snapshot(),
		SolveMicros: l.solve.snapshot(),
		TotalMicros: l.total.snapshot(),
		ShedMicros:  l.shed.snapshot(),
		ProxyMicros: l.proxy.snapshot(),
	}
}
