package bench_test

import (
	"encoding/json"
	"testing"

	"arbods/internal/bench"
)

// TestRunJSONReport checks the machine-readable report: selection,
// per-experiment cost fields, and a loss-free JSON round trip of the
// tables (the trajectory files diffed across PRs depend on this shape).
func TestRunJSONReport(t *testing.T) {
	rep, err := bench.RunJSON(bench.Config{Seed: 1, Scale: bench.Small},
		map[string]bool{"E2": true, "E7": true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != bench.ReportSchema || rep.Scale != "small" || rep.Seed != 1 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("want E2+E7, got %+v", rep.Experiments)
	}
	for _, e := range rep.Experiments {
		if e.WallMS <= 0 || e.Allocs == 0 || len(e.Tables) == 0 {
			t.Fatalf("experiment %s missing cost or tables: %+v", e.ID, e)
		}
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back bench.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments) != 2 || len(back.Experiments[0].Tables[0].Rows) !=
		len(rep.Experiments[0].Tables[0].Rows) {
		t.Fatal("JSON round trip lost table rows")
	}
}

// TestRunJSONUnknownID: selecting only unknown IDs is an error, matching
// the markdown path's behavior.
func TestRunJSONUnknownID(t *testing.T) {
	if _, err := bench.RunJSON(bench.Config{Seed: 1, Scale: bench.Small},
		map[string]bool{"E99": true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
