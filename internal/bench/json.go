package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"
)

// ReportSchema identifies the JSON benchmark record layout. Bump it when
// the structure changes so trajectory tooling can keep reading old files.
const ReportSchema = "arbods-bench/v1"

// Report is the machine-readable record emitted by `mdsbench -format
// json`. One BENCH_*.json per milestone is committed at the repository
// root so the performance trajectory (wall time, allocations, and every
// experiment table with its rounds/messages/bits columns) is recorded
// PR over PR.
type Report struct {
	Schema      string             `json:"schema"`
	Scale       string             `json:"scale"`
	Seed        uint64             `json:"seed"`
	Reps        int                `json:"reps"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	WallMS      float64            `json:"wall_ms"`
	Experiments []ExperimentRecord `json:"experiments"`
}

// ExperimentRecord is one experiment's tables plus its cost.
type ExperimentRecord struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	WallMS     float64  `json:"wall_ms"`
	Allocs     uint64   `json:"allocs"`
	AllocBytes uint64   `json:"alloc_bytes"`
	Tables     []*Table `json:"tables"`
}

// String names the scale the way the mdsbench -scale flag spells it.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "small"
}

// RunJSON executes the selected experiments (all when only is empty) and
// collects a Report. Allocation figures come from runtime.MemStats deltas
// around each experiment, so they include the simulator's per-run cost —
// exactly the hot path the engine optimizations target.
func RunJSON(cfg Config, only map[string]bool) (*Report, error) {
	rep := &Report{
		Schema:     ReportSchema,
		Scale:      cfg.Scale.String(),
		Seed:       cfg.Seed,
		Reps:       cfg.reps(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	start := time.Now()
	for _, e := range All() {
		if len(only) > 0 && !only[e.ID] {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", e.ID, err)
		}
		runtime.ReadMemStats(&after)
		rep.Experiments = append(rep.Experiments, ExperimentRecord{
			ID:         e.ID,
			Name:       e.Name,
			WallMS:     float64(time.Since(t0)) / float64(time.Millisecond),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
			Tables:     tables,
		})
	}
	if len(rep.Experiments) == 0 {
		return nil, fmt.Errorf("no experiments selected")
	}
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep, nil
}

// JSON renders the report with stable indentation for committing.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
