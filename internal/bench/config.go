package bench

import (
	"fmt"
	"math"

	"arbods/internal/congest"
)

// Scale selects the experiment sizes.
type Scale int

const (
	// Small keeps every experiment fast enough for CI and `go test`.
	Small Scale = iota + 1
	// Full runs paper-scale instances (seconds to a few minutes in total).
	Full
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed is the base seed; repetitions derive seeds from it.
	Seed uint64
	// Scale selects Small or Full sizes.
	Scale Scale
	// Reps overrides the number of repetitions for randomized algorithms
	// (0 = scale default: 3 for Small, 5 for Full).
	Reps int
	// Runner, when set, is the reusable simulator state every CONGEST run
	// of the experiments executes on (congest.WithRunner): the worker
	// pool, arenas, and flat inbox arrays are then amortized across the
	// whole experiment sweep instead of being rebuilt per run. The caller
	// owns it (and its Close); nil keeps each run on transient state.
	Runner *congest.Runner
}

// opts returns the simulator options every experiment run starts from: the
// given seed plus the shared Runner when one is configured. Experiments
// append run-specific options after it.
func (c Config) opts(seed uint64, extra ...congest.Option) []congest.Option {
	o := make([]congest.Option, 0, 2+len(extra))
	o = append(o, congest.WithSeed(seed))
	if c.Runner != nil {
		o = append(o, congest.WithRunner(c.Runner))
	}
	return append(o, extra...)
}

func (c Config) pick(small, full int) int {
	if c.Scale == Full {
		return full
	}
	return small
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	if c.Scale == Full {
		return 5
	}
	return 3
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) ([]*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "prior-work comparison (§1.1)", E1Comparison},
		{"E2", "rounds vs Δ (Theorem 1.1)", E2RoundsVsDelta},
		{"E3", "approximation vs ε and α (Theorem 1.1)", E3ApproxVsEpsilon},
		{"E4", "time/approximation trade-off (Theorem 1.2)", E4TradeoffT},
		{"E5", "general graphs, k sweep (Theorem 1.3)", E5GeneralK},
		{"E6", "lower-bound construction and reduction (Figure 1, Theorem 1.4)", E6LowerBound},
		{"E7", "trees (Observation A.1)", E7Trees},
		{"E8", "unknown parameters (Remarks 4.4, 4.5)", E8UnknownParams},
		{"E9", "design ablations (DESIGN.md)", E9Ablations},
		{"E10", "weighted instances (Theorem 1.1)", E10Weighted},
	}
}

// RunAll executes every experiment and returns the tables in order.
func RunAll(cfg Config) ([]*Table, error) {
	var tables []*Table
	for _, e := range All() {
		ts, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", e.ID, err)
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}

// fmtF formats a float compactly for table cells.
func fmtF(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "∞"
	case math.IsNaN(x):
		return "NaN"
	case x == math.Trunc(x) && math.Abs(x) < 1e6:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// fmtI formats an int.
func fmtI(x int) string { return fmt.Sprintf("%d", x) }

// fmtI64 formats an int64.
func fmtI64(x int64) string { return fmt.Sprintf("%d", x) }

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
