package bench

import (
	"context"
	"fmt"
	"math"

	"arbods/internal/congest"
)

// Scale selects the experiment sizes.
type Scale int

const (
	// Small keeps every experiment fast enough for CI and `go test`.
	Small Scale = iota + 1
	// Full runs paper-scale instances (seconds to a few minutes in total).
	Full
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed is the base seed; repetitions derive seeds from it.
	Seed uint64
	// Scale selects Small or Full sizes.
	Scale Scale
	// Reps overrides the number of repetitions for randomized algorithms
	// (0 = scale default: 3 for Small, 5 for Full).
	Reps int
	// Runner, when set, is the reusable simulator state every *sequential*
	// CONGEST run of the experiments executes on (congest.WithRunner): the
	// worker pool, arenas, and flat inbox arrays are then amortized across
	// the whole experiment sweep instead of being rebuilt per run. The
	// caller owns it (and its Close); nil keeps each run on transient
	// state. Batched runs never touch it — they execute on Runners checked
	// out of the pool (see Parallel).
	Runner *congest.Runner
	// Parallel is the number of independent simulator runs an experiment
	// may execute concurrently (0 or 1 = strictly sequential, the
	// default). Tables are bit-identical for every value: batch jobs write
	// into submission-indexed slots and derive their seeds from the slot
	// index, never from scheduling order, and simulator transcripts are
	// deterministic per (graph, seed, options). GOMAXPROCS is split
	// between run-level and intra-run parallelism by the RunnerPool;
	// values up to the core count use the machine without oversubscribing
	// it (beyond that the per-run worker floor of 1 starts stacking runs
	// on cores — cmd/mdsbench clamps its flag for that reason).
	Parallel int
	// Pool, when set with Parallel > 1, is the RunnerPool batch
	// submissions execute on; the caller owns it (and its Close), and its
	// warmed Runners then carry across every experiment of the sweep. Nil
	// makes each batch build a transient pool.
	Pool *congest.RunnerPool
	// Ctx, when set, cancels the sweep: sequential batches stop between
	// jobs, parallel batches stop starting jobs, and every simulator run
	// threads it through congest.WithContext so in-flight rounds abort at
	// their next barrier. Nil never cancels. Attaching a live context
	// changes no transcript — tables stay bit-identical.
	Ctx context.Context
}

// opts returns the simulator options every sequential experiment run
// starts from: the given seed plus the shared Runner when one is
// configured. Experiments append run-specific options after it. Runs
// submitted through batch must use optsOn with their slot instead.
func (c Config) opts(seed uint64, extra ...congest.Option) []congest.Option {
	return c.optsOn(nil, seed, extra...)
}

// optsOn is opts for a batch job: slot carries the job's pooled Runner
// and intra-run worker budget (handed to the job by batch) and replaces
// the config-level Runner, which concurrent jobs must never share. A nil
// slot — sequential execution — falls back to opts' behavior exactly.
func (c Config) optsOn(slot []congest.Option, seed uint64, extra ...congest.Option) []congest.Option {
	o := make([]congest.Option, 0, 3+len(slot)+len(extra))
	o = append(o, congest.WithSeed(seed))
	if c.Ctx != nil {
		o = append(o, congest.WithContext(c.Ctx))
	}
	if slot != nil {
		o = append(o, slot...)
	} else if c.Runner != nil {
		o = append(o, congest.WithRunner(c.Runner))
	}
	return append(o, extra...)
}

// batch executes n independent jobs, sequentially or across a RunnerPool
// according to cfg.Parallel. Job i must derive everything it does from i
// alone and write its outcome into slot i of caller-owned storage; with
// results (and the first-error choice below) pinned to submission slots,
// the tables assembled afterwards are bit-identical to the sequential
// sweep for every parallelism. The slot options passed to each job carry
// the Runner and worker budget its simulator runs must use — jobs thread
// them through cfg.optsOn. Errors: the first one in slot order wins,
// whatever order the scheduler finished the jobs in.
func (c Config) batch(n int, job func(i int, slot []congest.Option) error) error {
	if c.Parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if c.Ctx != nil {
				if err := c.Ctx.Err(); err != nil {
					return err
				}
			}
			if err := job(i, nil); err != nil {
				return err
			}
		}
		return nil
	}
	pool := c.Pool
	if pool == nil {
		size := c.Parallel
		if size > n {
			size = n
		}
		pool = congest.NewRunnerPool(size)
		defer pool.Close()
	}
	var b *congest.Batch
	if c.Ctx != nil {
		b = pool.BatchContext(c.Ctx)
	} else {
		b = pool.Batch()
	}
	for i := 0; i < n; i++ {
		b.Submit(func(r *congest.Runner, workers int) error {
			return job(i, []congest.Option{congest.WithRunner(r), congest.WithWorkers(workers)})
		})
	}
	return b.Wait()
}

func (c Config) pick(small, full int) int {
	if c.Scale == Full {
		return full
	}
	return small
}

func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	if c.Scale == Full {
		return 5
	}
	return 3
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(Config) ([]*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"E1", "prior-work comparison (§1.1)", E1Comparison},
		{"E2", "rounds vs Δ (Theorem 1.1)", E2RoundsVsDelta},
		{"E3", "approximation vs ε and α (Theorem 1.1)", E3ApproxVsEpsilon},
		{"E4", "time/approximation trade-off (Theorem 1.2)", E4TradeoffT},
		{"E5", "general graphs, k sweep (Theorem 1.3)", E5GeneralK},
		{"E6", "lower-bound construction and reduction (Figure 1, Theorem 1.4)", E6LowerBound},
		{"E7", "trees (Observation A.1)", E7Trees},
		{"E8", "unknown parameters (Remarks 4.4, 4.5)", E8UnknownParams},
		{"E9", "design ablations (DESIGN.md)", E9Ablations},
		{"E10", "weighted instances (Theorem 1.1)", E10Weighted},
	}
}

// RunAll executes every experiment and returns the tables in order.
func RunAll(cfg Config) ([]*Table, error) {
	var tables []*Table
	for _, e := range All() {
		ts, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", e.ID, err)
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}

// fmtF formats a float compactly for table cells.
func fmtF(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "∞"
	case math.IsNaN(x):
		return "NaN"
	case x == math.Trunc(x) && math.Abs(x) < 1e6:
		return fmt.Sprintf("%.0f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// fmtI formats an int.
func fmtI(x int) string { return fmt.Sprintf("%d", x) }

// fmtI64 formats an int64.
func fmtI64(x int64) string { return fmt.Sprintf("%d", x) }

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
