package bench_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"arbods/internal/bench"
	"arbods/internal/congest"
)

// renderAll flattens every table to its committed markdown form — the
// representation EXPERIMENTS.md and the BENCH_*.json trajectory are built
// from, so byte equality here is exactly the "tables are bit-identical"
// contract of Config.Parallel.
func renderAll(tables []*bench.Table) string {
	var sb strings.Builder
	for _, t := range tables {
		sb.WriteString(t.Markdown())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestParallelMatchesSequential runs the complete experiment suite
// sequentially and under several parallel configurations (shared
// RunnerPool, transient per-batch pools) and requires byte-identical
// rendered tables: batch scheduling must be invisible in every emitted
// number. Under -race this doubles as the concurrency test for the whole
// bench-on-RunnerPool stack.
func TestParallelMatchesSequential(t *testing.T) {
	seqRunner := congest.NewRunner()
	defer seqRunner.Close()
	seq, err := bench.RunAll(bench.Config{Seed: 1, Scale: bench.Small, Runner: seqRunner})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(seq)

	t.Run("shared-pool", func(t *testing.T) {
		pool := congest.NewRunnerPool(4)
		defer pool.Close()
		par, err := bench.RunAll(bench.Config{Seed: 1, Scale: bench.Small, Parallel: 4, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(par); got != want {
			t.Fatalf("Parallel=4 tables differ from the sequential sweep:\n%s", firstDiff(want, got))
		}
	})

	t.Run("transient-pools", func(t *testing.T) {
		par, err := bench.RunAll(bench.Config{Seed: 1, Scale: bench.Small, Parallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(par); got != want {
			t.Fatalf("Parallel=2 (transient pools) tables differ from the sequential sweep:\n%s", firstDiff(want, got))
		}
	})

	// A live context is invisible: every emitted number stays identical.
	t.Run("live-context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		par, err := bench.RunAll(bench.Config{Seed: 1, Scale: bench.Small, Parallel: 2, Ctx: ctx})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(par); got != want {
			t.Fatalf("Ctx-attached tables differ from the sequential sweep:\n%s", firstDiff(want, got))
		}
	})
}

// TestSweepCancellation: a dead context stops a sweep — sequential and
// parallel — with ctx.Err() instead of running the experiments.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []int{1, 2} {
		_, err := bench.RunAll(bench.Config{Seed: 1, Scale: bench.Small, Parallel: parallel, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Parallel=%d: err = %v, want context.Canceled", parallel, err)
		}
	}
}

// firstDiff localizes the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\nwant: %s\n got: %s", i+1, wl[i], gl[i])
		}
	}
	return "tables differ in length"
}
