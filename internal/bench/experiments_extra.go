package bench

import (
	"fmt"
	"sort"

	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/mds"
	"arbods/internal/verify"
)

// E8UnknownParams regenerates the Remark 4.4/4.5 comparison: what dropping
// global knowledge of Δ (and of α) costs in rounds and approximation,
// against the known-parameter Theorem 1.1 run on the same instance.
func E8UnknownParams(cfg Config) ([]*Table, error) {
	const alpha = 3
	n := cfg.pick(250, 1500)
	w := gen.ForestUnion(n, alpha, cfg.Seed)
	g := gen.UniformWeights(w.G, 100, cfg.Seed+1)
	eps := 0.2
	t := &Table{
		ID:       "E8",
		Title:    fmt.Sprintf("knowledge assumptions on %s (α=%d, Δ=%d)", w.Name, alpha, g.MaxDegree()),
		PaperRef: "Remarks 4.4 (unknown Δ) and 4.5 (unknown α)",
		Columns:  []string{"variant", "knows", "rounds", "messages", "certified ratio", "certificate factor"},
		Notes: []string{
			"Remark 4.5's orientation prefix uses doubling estimates on a fixed schedule: O(log α·log n/ε) rounds versus the remark's O(log n/ε) sketch (DESIGN.md §5.2); its certificate factor is per-node and therefore not a single number.",
		},
	}
	known, err := mds.WeightedDeterministic(g, alpha, eps, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	t.AddRow("Theorem 1.1", "n, Δ, α", fmtI(known.Rounds()), fmtI64(known.Messages()),
		fmtF(known.CertifiedRatio()), fmtF(known.Factor))
	ud, err := mds.UnknownDelta(g, alpha, eps, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	t.AddRow("Remark 4.4", "n, α", fmtI(ud.Rounds()), fmtI64(ud.Messages()),
		fmtF(ud.CertifiedRatio()), fmtF(ud.Factor))
	ua, err := mds.UnknownAlpha(g, eps, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	t.AddRow("Remark 4.5", "n", fmtI(ua.Rounds()), fmtI64(ua.Messages()),
		fmtF(ua.CertifiedRatio()), "per-node")
	for _, rep := range []*mds.Report{known, ud, ua} {
		if !rep.AllDominated {
			return nil, fmt.Errorf("E8: %s left nodes undominated", rep.Algorithm)
		}
	}
	return []*Table{t}, nil
}

// E9Ablations regenerates the design-choice ablations DESIGN.md calls out:
//
//   - E9a: the λ knob inside Lemma 4.1 — smaller λ stops the packing phase
//     earlier, shrinking the partial set S and leaving more nodes for the
//     completion/extension (the split Theorem 1.2 exploits);
//   - E9b: the freeze-on-domination rule — without it the packing loses
//     feasibility and the Lemma 2.1 certificate collapses;
//   - E9c: CONGEST compliance — per algorithm, the peak per-edge-per-round
//     bit volume against the O(log n) budget the simulator enforces.
func E9Ablations(cfg Config) ([]*Table, error) {
	const alpha = 3
	n := cfg.pick(250, 1500)
	w := gen.ForestUnion(n, alpha, cfg.Seed)
	g := gen.UniformWeights(w.G, 100, cfg.Seed+1)
	eps := 0.25

	// --- E9a: λ sweep ---
	ta := &Table{
		ID:       "E9a",
		Title:    "Lemma 4.1 λ sweep: partial set vs leftover",
		PaperRef: "Lemma 4.1 properties (a)/(b); the S vs S′ split of Theorems 1.1/1.2",
		Columns:  []string{"λ / λmax", "iterations≈rounds/2", "w(S)/Σx", "undominated nodes", "property-(a) factor"},
	}
	lambdaMax := 1 / (float64(alpha+1) * (1 + eps))
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		lambda := frac * lambdaMax
		rep, err := mds.PartialWeighted(g, alpha, eps, lambda, cfg.opts(cfg.Seed)...)
		if err != nil {
			return nil, err
		}
		und := 0
		for _, out := range rep.Result.Outputs {
			if !out.Dominated {
				und++
			}
		}
		ta.AddRow(fmtF(frac), fmtI(rep.Rounds()/2),
			fmtF(float64(rep.PartialWeight)/rep.PackingSum), fmtI(und),
			fmtF(mds.PartialFactor(alpha, eps, lambda)))
	}

	// --- E9b: freeze ablation ---
	tb := &Table{
		ID:       "E9b",
		Title:    "freeze-on-domination ablation",
		PaperRef: "Section 3/4 step 3 (only undominated nodes raise x) and Observation 4.2",
		Columns:  []string{"variant", "packing feasible", "Σx", "w(DS)", "w(DS)/Σx", "Σx ≤ OPT valid"},
		Notes: []string{
			"without the freeze, Σx can exceed OPT, so w/Σx is no longer an upper bound on the true approximation ratio.",
		},
	}
	normal, err := mds.WeightedDeterministic(g, alpha, eps, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	frozen := packingOf(normal)
	tb.AddRow("paper (freeze)", boolCell(verify.PackingFeasible(g, frozen, verify.DefaultTol) == nil),
		fmtF(normal.PackingSum), fmtI64(normal.DSWeight), fmtF(normal.CertifiedRatio()), "yes (Lemma 2.1)")
	noFreeze, err := mds.AblationNoFreeze(g, alpha, eps, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	nfPacking := packingOf(noFreeze)
	nfFeasible := verify.PackingFeasible(g, nfPacking, verify.DefaultTol) == nil
	tb.AddRow("no freeze (ablation)", boolCell(nfFeasible),
		fmtF(noFreeze.PackingSum), fmtI64(noFreeze.DSWeight), fmtF(noFreeze.CertifiedRatio()),
		boolCell(nfFeasible))

	// --- E9c: CONGEST compliance ---
	tc := &Table{
		ID:       "E9c",
		Title:    fmt.Sprintf("CONGEST bandwidth accounting (budget %d bits)", congest.DefaultBandwidth(g.N())),
		PaperRef: "Section 2 model: O(log n)-bit messages",
		Columns:  []string{"algorithm", "rounds", "messages", "total bits", "peak bits/edge/round", "violations"},
	}
	addCompliance := func(name string, rep *mds.Report) {
		tc.AddRow(name, fmtI(rep.Rounds()), fmtI64(rep.Messages()),
			fmtI64(rep.Result.TotalBits), fmtI(rep.Result.MaxEdgeBits),
			fmtI64(rep.Result.BandwidthViolations))
	}
	addCompliance("Theorem 1.1", normal)
	rand12, err := mds.WeightedRandomized(g, alpha, 2, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	addCompliance("Theorem 1.2 (t=2)", rand12)
	gg, err := mds.GeneralGraphs(g, 2, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	addCompliance("Theorem 1.3 (k=2)", gg)
	ud, err := mds.UnknownDelta(g, alpha, eps, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	addCompliance("Remark 4.4", ud)

	// --- E9d: message breakdown of one Theorem 1.2 run ---
	td := &Table{
		ID:       "E9d",
		Title:    "message breakdown (Theorem 1.2, t=2)",
		PaperRef: "Section 2 model; which messages carry the algorithm",
		Columns:  []string{"message type", "count", "total bits", "avg bits"},
		Notes: []string{
			"packing values travel as (τ, exponent) integer pairs, not reals — the reason every message fits the O(log n) budget.",
		},
	}
	traced, err := mds.WeightedRandomized(g, alpha, 2,
		cfg.opts(cfg.Seed, congest.WithMessageStats())...)
	if err != nil {
		return nil, err
	}
	types := make([]string, 0, len(traced.Result.MessageStats))
	for k := range traced.Result.MessageStats {
		types = append(types, k)
	}
	sort.Strings(types)
	for _, k := range types {
		st := traced.Result.MessageStats[k]
		td.AddRow(k, fmtI64(st.Count), fmtI64(st.Bits),
			fmtF(float64(st.Bits)/float64(st.Count)))
	}

	// --- E9e: Lemma 4.7 diagnostic — mean c_v vs the γ+1 bound ---
	te := &Table{
		ID:       "E9e",
		Title:    "Lemma 4.7 diagnostic: sampled dominators per covered node",
		PaperRef: "Lemma 4.7: E[c_v] ≤ γ+1 (the expectation bound behind Lemma 4.8)",
		Columns:  []string{"algorithm", "γ", "bound γ+1", "mean c_v", "max c_v", "nodes covered by extension"},
	}
	e9algos := []struct {
		name string
		run  func(seed uint64, slot []congest.Option) (*mds.Report, error)
	}{
		{"Theorem 1.2 (t=2)", func(seed uint64, slot []congest.Option) (*mds.Report, error) {
			return mds.WeightedRandomized(g, alpha, 2, cfg.optsOn(slot, seed)...)
		}},
		{"Theorem 1.3 (k=2)", func(seed uint64, slot []congest.Option) (*mds.Report, error) {
			return mds.GeneralGraphs(g, 2, cfg.optsOn(slot, seed)...)
		}},
	}
	// Every repetition of both algorithms is independent: one batch, slot
	// = (algorithm, repetition), aggregated in slot order below.
	nreps := cfg.reps() * 2
	e9runs := make([]*mds.Report, len(e9algos)*nreps)
	if err := cfg.batch(len(e9runs), func(i int, slot []congest.Option) error {
		rep := i % nreps
		r, err := e9algos[i/nreps].run(cfg.Seed+uint64(313*rep), slot)
		e9runs[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	for ai, tt := range e9algos {
		var total, count float64
		maxCV := 0
		var gamma float64
		for _, r := range e9runs[ai*nreps : (ai+1)*nreps] {
			gamma = r.Gamma
			for _, out := range r.Result.Outputs {
				if out.SampledDominators > 0 {
					total += float64(out.SampledDominators)
					count++
					if out.SampledDominators > maxCV {
						maxCV = out.SampledDominators
					}
				}
			}
		}
		meanCV := 0.0
		if count > 0 {
			meanCV = total / count
		}
		te.AddRow(tt.name, fmtF(gamma), fmtF(gamma+1), fmtF(meanCV), fmtI(maxCV),
			fmtF(count))
	}

	return []*Table{ta, tb, tc, td, te}, nil
}

func packingOf(rep *mds.Report) []float64 {
	x := make([]float64, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		x[v] = out.Packing
	}
	return x
}

// E10Weighted regenerates the weighted-problem claim of Theorem 1.1 (the
// first distributed algorithm for weighted MDS on bounded arboricity
// graphs): across weight regimes the certified ratio stays under
// (2α+1)(1+ε), with the centralized greedy for quality reference.
func E10Weighted(cfg Config) ([]*Table, error) {
	const alpha = 3
	n := cfg.pick(300, 2500)
	base := gen.ForestUnion(n, alpha, cfg.Seed)
	eps := 0.2
	t := &Table{
		ID:       "E10",
		Title:    fmt.Sprintf("weight regimes on %s (α=%d)", base.Name, alpha),
		PaperRef: "Theorem 1.1 (weighted MDS); §1.2 “first distributed algorithm for the weighted version”",
		Columns:  []string{"weights", "bound", "certified ratio", "w(DS)", "w(greedy)", "rounds"},
	}
	regimes := []struct {
		name string
		g    *graph.Graph
	}{
		{"unit", base.G},
		{"uniform[1,1000]", gen.UniformWeights(base.G, 1000, cfg.Seed+2)},
		{"exponential(100)", gen.ExponentialWeights(base.G, 100, cfg.Seed+3)},
		{"degree-proportional", gen.DegreeWeights(base.G, 10, cfg.Seed+4)},
	}
	for _, rg := range regimes {
		rep, err := mds.WeightedDeterministic(rg.g, alpha, eps, cfg.opts(cfg.Seed)...)
		if err != nil {
			return nil, err
		}
		if rep.CertifiedRatio() > rep.Factor*(1+1e-9) {
			return nil, fmt.Errorf("E10: bound violated on %s", rg.name)
		}
		gr := baseline.Greedy(rg.g)
		t.AddRow(rg.name, fmtF(rep.Factor), fmtF(rep.CertifiedRatio()),
			fmtI64(rep.DSWeight), fmtI64(gr.Weight), fmtI(rep.Rounds()))
	}
	return []*Table{t}, nil
}
