package bench

import (
	"fmt"

	"arbods/internal/arbor"
	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/lower"
	"arbods/internal/mds"
	"arbods/internal/verify"
)

// E6LowerBound regenerates Figure 1 and the Theorem 1.4 pipeline:
//
//   - E6a: the construction H from a KMW-flavoured bipartite gadget, with
//     every structural property the proof uses checked against the paper's
//     formulas (node/edge counts, Δ², the arboricity-2 orientation);
//   - E6b: the reduction — solve MDS on H with the paper's own algorithm
//     (H has arboricity 2!), extract a fractional vertex cover of the base
//     graph, verify feasibility, and compare its value to the proof bound
//     c(1+1/Δ)·OPT_MFVC;
//   - E6c: the locality phenomenon — truncating the algorithm's rounds on H
//     degrades the approximation, the finite-instance face of the
//     Ω(log Δ/log log Δ) lower bound.
func E6LowerBound(cfg Config) ([]*Table, error) {
	var base *lowerBase
	var err error
	if cfg.Scale == Full {
		base, err = newLowerBase(12, 4, 6, cfg.Seed)
	} else {
		base, err = newLowerBase(8, 3, 4, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}
	c := base.c
	bg := base.g

	// --- E6a: construction properties ---
	n, m, delta := bg.N(), bg.M(), bg.MaxDegree()
	ta := &Table{
		ID:       "E6a",
		Title:    fmt.Sprintf("construction H from bipartite gadget (n=%d, m=%d, Δ=%d)", n, m, delta),
		PaperRef: "Figure 1 / Section 5 construction",
		Columns:  []string{"property", "paper formula", "value", "measured", "ok"},
	}
	check := func(name, formula string, want, got int) {
		ok := "yes"
		if want != got {
			ok = "NO"
		}
		ta.AddRow(name, formula, fmtI(want), fmtI(got), ok)
	}
	check("nodes of H", "Δ²(n+m)+n", delta*delta*(n+m)+n, c.H.N())
	check("edges of H", "Δ²(2m+n)", delta*delta*(2*m+n), c.H.M())
	check("max degree of H", "Δ²", delta*delta, c.H.MaxDegree())
	witness := c.ArboricityWitness()
	wOK := "yes"
	if err := verify.OutDegreeAtMost(witness, 2); err != nil {
		wOK = "NO"
	}
	ta.AddRow("arboricity(H) ≤ 2", "orientation witness", "out-deg ≤ 2", wOK, wOK)
	lo, hi := arbor.Bounds(c.H)
	ta.AddRow("Nash–Williams bracket", "α ∈ [lo,hi]", "lo ≤ 2 ≤ hi?", fmt.Sprintf("[%d,%d]", lo, hi), boolCell(lo <= 2 && hi >= 1))

	// --- E6b: the reduction ---
	rep, err := mds.UnweightedDeterministic(c.H, 2, 0.2, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	y := c.ExtractFractionalVC(inSetOf(rep))
	feas := verify.FractionalVertexCover(bg, y, 1e-9) == nil
	optVC, err := lower.MaxMatching(bg)
	if err != nil {
		return nil, err
	}
	val := verify.FractionalValue(y)
	ratio := rep.CertifiedRatio()
	bound := ratio * (1 + 1/float64(delta)) * float64(optVC)
	tb := &Table{
		ID:       "E6b",
		Title:    "MDS(H) → fractional vertex cover(G) reduction",
		PaperRef: "Theorem 1.4 proof (simulation + extraction)",
		Columns:  []string{"quantity", "value"},
		Notes: []string{
			"the proof requires Σy ≤ c(1+1/Δ)·OPT_MFVC when the MDS algorithm is a c-approximation; c is instantiated with the run's certified ratio.",
		},
	}
	tb.AddRow("|S| on H", fmtI(len(rep.DS)))
	tb.AddRow("certified MDS ratio c", fmtF(ratio))
	tb.AddRow("extracted cover feasible", boolCell(feas))
	tb.AddRow("Σy (fractional VC value)", fmtF(val))
	tb.AddRow("OPT_MFVC (= max matching, König)", fmtI(optVC))
	tb.AddRow("proof bound c(1+1/Δ)·OPT", fmtF(bound))
	tb.AddRow("Σy ≤ bound", boolCell(val <= bound*(1+1e-9)))
	if !feas {
		return nil, fmt.Errorf("E6b: extracted fractional cover infeasible")
	}

	// --- E6c: locality sweep ---
	tc := &Table{
		ID:       "E6c",
		Title:    "approximation vs rounds on H (truncated runs)",
		PaperRef: "Theorem 1.4: poly-log approximation needs Ω(log Δ/log log Δ) rounds on arboricity-2 graphs",
		Columns:  []string{"packing iterations", "rounds", "|DS|", "certified ratio"},
		Notes: []string{
			"shrinking the iteration budget collapses the packing phase and the self-completion step balloons — locality costs approximation, exactly the trade-off the lower bound forbids escaping.",
		},
	}
	// The truncation sweep is embarrassingly parallel — every budget is an
	// independent run on H. Slot 0 is the untruncated reference.
	iterVals := []int{1, 2, 4, 8, 16}
	var full *mds.Report
	truncated := make([]*mds.Report, len(iterVals))
	if err := cfg.batch(1+len(iterVals), func(i int, slot []congest.Option) error {
		if i == 0 {
			var err error
			full, err = mds.UnweightedDeterministic(c.H, 2, 0.2, cfg.optsOn(slot, cfg.Seed)...)
			return err
		}
		r, err := mds.TruncatedUnweighted(c.H, 2, 0.2, iterVals[i-1], cfg.optsOn(slot, cfg.Seed)...)
		truncated[i-1] = r
		return err
	}); err != nil {
		return nil, err
	}
	for i, r := range truncated {
		tc.AddRow(fmtI(iterVals[i]), fmtI(r.Rounds()), fmtI(len(r.DS)), fmtF(r.CertifiedRatio()))
	}
	tc.AddRow("full schedule", fmtI(full.Rounds()), fmtI(len(full.DS)), fmtF(full.CertifiedRatio()))

	// --- E6d: the same reduction over a layered (cluster-tree-style)
	// base, whose geometric degree disparity between layers mirrors the
	// KMW CT_k structure the paper consumes as a black box. ---
	// Small scale: δ=2 keeps H near 1400 nodes; full scale: δ=3 → ~28k.
	var layered *graph.Graph
	if cfg.Scale == Full {
		layered, err = lower.LayeredGadget(36, 3, 2, cfg.Seed+5)
	} else {
		layered, err = lower.LayeredGadget(8, 2, 2, cfg.Seed+5)
	}
	if err != nil {
		return nil, err
	}
	lc, err := lower.Build(layered)
	if err != nil {
		return nil, err
	}
	lrep, err := mds.UnweightedDeterministic(lc.H, 2, 0.2, cfg.opts(cfg.Seed)...)
	if err != nil {
		return nil, err
	}
	ly := lc.ExtractFractionalVC(inSetOf(lrep))
	lfeas := verify.FractionalVertexCover(layered, ly, 1e-9) == nil
	lopt, err := lower.MaxMatching(layered)
	if err != nil {
		return nil, err
	}
	lval := verify.FractionalValue(ly)
	lbound := lrep.CertifiedRatio() * (1 + 1/float64(layered.MaxDegree())) * float64(lopt)
	td := &Table{
		ID:       "E6d",
		Title:    fmt.Sprintf("reduction over a layered KMW-style base (n=%d, Δ=%d, H: n=%d)", layered.N(), layered.MaxDegree(), lc.H.N()),
		PaperRef: "Theorem 1.4 with a cluster-tree-flavoured base graph",
		Columns:  []string{"quantity", "value"},
		Notes: []string{
			"the layered base chains biregular levels with degrees δ (down) and δ² (up) — the degree-disparity pattern of the KMW cluster trees.",
		},
	}
	td.AddRow("|S| on H", fmtI(len(lrep.DS)))
	td.AddRow("certified MDS ratio c", fmtF(lrep.CertifiedRatio()))
	td.AddRow("extracted cover feasible", boolCell(lfeas))
	td.AddRow("Σy", fmtF(lval))
	td.AddRow("OPT_MFVC", fmtI(lopt))
	td.AddRow("proof bound c(1+1/Δ)·OPT", fmtF(lbound))
	td.AddRow("Σy ≤ bound", boolCell(lval <= lbound*(1+1e-9)))
	if !lfeas {
		return nil, fmt.Errorf("E6d: extracted fractional cover infeasible")
	}
	return []*Table{ta, tb, tc, td}, nil
}

type lowerBase struct {
	g *graph.Graph
	c *lower.Construction
}

func newLowerBase(nl, dl, dr int, seed uint64) (*lowerBase, error) {
	g, err := lower.Gadget(nl, dl, dr, seed)
	if err != nil {
		return nil, err
	}
	c, err := lower.Build(g)
	if err != nil {
		return nil, err
	}
	return &lowerBase{g: g, c: c}, nil
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// E7Trees regenerates Observation A.1: on forests, all-non-leaf nodes is a
// 3-approximation computed in one communication round; the table compares
// it against the paper's main algorithm (α = 1), the LW bucket baseline,
// and the exact optimum.
func E7Trees(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:       "E7",
		Title:    "dominating set on trees",
		PaperRef: "Observation A.1 (Appendix A): 3-approximation in one round on forests",
		Columns:  []string{"tree", "algorithm", "rounds", "|DS|", "ratio vs OPT"},
	}
	shapes := []gen.Result{
		gen.Path(60),
		gen.Star(60),
		gen.Caterpillar(15, 3),
		gen.RandomTree(60, cfg.Seed),
		gen.BalancedTree(3, 3),
	}
	// A large tree: the linear-time forest DP still gives exact OPT.
	big := gen.RandomTree(cfg.pick(5000, 50000), cfg.Seed+7)

	// The distributed runs — three per small shape, two on the big tree —
	// are all independent, so they form one batch; the centralized exact
	// baselines stay on the coordinating goroutine (they never enter the
	// simulator and need no Runner).
	type e7runs struct{ tri, det, lw *mds.Report }
	runs := make([]e7runs, len(shapes)+1)
	err := cfg.batch(3*len(shapes)+2, func(i int, slot []congest.Option) error {
		si, which := i/3, i%3
		g := big.G
		if si < len(shapes) {
			g = shapes[si].G
		}
		var err error
		switch which {
		case 0:
			runs[si].tri, err = mds.TreeThreeApprox(g, cfg.optsOn(slot, cfg.Seed)...)
		case 1:
			runs[si].det, err = mds.UnweightedDeterministic(g, 1, 0.2, cfg.optsOn(slot, cfg.Seed)...)
		case 2:
			runs[si].lw, err = baseline.LWDeterministic(g, cfg.optsOn(slot, cfg.Seed)...)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	for si, w := range shapes {
		opt, err := baseline.Exact(w.G)
		if err != nil {
			return nil, err
		}
		tri, det, lw := runs[si].tri, runs[si].det, runs[si].lw
		if float64(tri.DSWeight) > 3*float64(opt.Weight) {
			return nil, fmt.Errorf("E7: 3-approximation violated on %s: %d vs OPT %d", w.Name, tri.DSWeight, opt.Weight)
		}
		t.AddRow(w.Name, "tree 3-approx (Obs A.1)", fmtI(tri.Rounds()), fmtI(len(tri.DS)),
			fmtF(float64(tri.DSWeight)/float64(opt.Weight)))
		t.AddRow("", "this paper (Thm 1.1, α=1)", fmtI(det.Rounds()), fmtI(len(det.DS)),
			fmtF(float64(det.DSWeight)/float64(opt.Weight)))
		t.AddRow("", "LW bucket", fmtI(lw.Rounds()), fmtI(len(lw.DS)),
			fmtF(float64(lw.DSWeight)/float64(opt.Weight)))
		t.AddRow("", "exact", "—", fmtI(len(opt.DS)), "1")
	}
	bigOpt, err := baseline.ExactForest(big.G)
	if err != nil {
		return nil, err
	}
	tri, det := runs[len(shapes)].tri, runs[len(shapes)].det
	if float64(tri.DSWeight) > 3*float64(bigOpt.Weight) {
		return nil, fmt.Errorf("E7: 3-approximation violated on %s", big.Name)
	}
	t.AddRow(big.Name, "tree 3-approx (Obs A.1)", fmtI(tri.Rounds()), fmtI(len(tri.DS)),
		fmtF(float64(tri.DSWeight)/float64(bigOpt.Weight)))
	t.AddRow("", "this paper (Thm 1.1, α=1)", fmtI(det.Rounds()), fmtI(len(det.DS)),
		fmtF(float64(det.DSWeight)/float64(bigOpt.Weight)))
	t.AddRow("", "exact (forest DP)", "—", fmtI(len(bigOpt.DS)), "1")
	return []*Table{t}, nil
}
