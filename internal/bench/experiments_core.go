package bench

import (
	"fmt"
	"math"

	"arbods"
	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/mds"
)

// inSetOf extracts the membership vector of a report.
func inSetOf(rep *mds.Report) []bool {
	set := make([]bool, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		set[v] = out.InDS
	}
	return set
}

// exactRatio computes w(DS)/OPT when the instance is small enough, else NaN.
func exactRatio(g *graph.Graph, dsWeight int64) float64 {
	if g.N() > baseline.ExactLimit {
		return math.NaN()
	}
	opt, err := baseline.Exact(g)
	if err != nil || opt.Weight == 0 {
		return math.NaN()
	}
	return float64(dsWeight) / float64(opt.Weight)
}

// E1Comparison regenerates the §1.1 comparison of distributed MDS
// algorithms on bounded arboricity graphs: one row per algorithm with its
// paper guarantee and, for the algorithms implemented here, measured rounds
// and quality on a common workload (unweighted union of 3 forests). MSW21
// and BU17+KMW06 appear with analytic guarantees only (DESIGN.md §5.4).
func E1Comparison(cfg Config) ([]*Table, error) {
	const alpha = 3
	n := cfg.pick(400, 4000)
	big := gen.ForestUnion(n, alpha, cfg.Seed)
	small := gen.ForestUnion(40, alpha, cfg.Seed+1)

	t := &Table{
		ID:       "E1",
		Title:    fmt.Sprintf("distributed MDS on %s (α=%d, Δ=%d)", big.Name, alpha, big.G.MaxDegree()),
		PaperRef: "§1/§1.1 comparison of prior work",
		Columns: []string{
			"algorithm", "paper approx", "paper rounds",
			"rounds", "|DS|", "certified ratio", "ratio vs OPT (n=40)",
		},
		Notes: []string{
			"certified ratio = w(DS)/Σx using the run's own dual packing (Lemma 2.1): an exact upper bound on the true ratio.",
			"LRG (Jia–Rajaraman–Suel) stands in for the randomized O(α²) algorithm of LW10; MSW21 and BU17+KMW06 are analytic-only rows (see DESIGN.md §5.4).",
		},
	}

	type algo struct {
		name        string
		approx      string
		rounds      string
		run         func(g *graph.Graph, seed uint64, slot []congest.Option) (*mds.Report, error)
		alphaUnused bool
	}
	eps := 0.2
	algos := []algo{
		{
			name: "this paper, det (Thm 1.1)", approx: "(2α+1)(1+ε)", rounds: "O(log(Δ/α)/ε)",
			run: func(g *graph.Graph, seed uint64, slot []congest.Option) (*mds.Report, error) {
				return mds.UnweightedDeterministic(g, alpha, eps, cfg.optsOn(slot, seed)...)
			},
		},
		{
			name: "this paper, rand (Thm 1.2, t=2)", approx: "α+O(α/t)", rounds: "O(t·log Δ)",
			run: func(g *graph.Graph, seed uint64, slot []congest.Option) (*mds.Report, error) {
				return mds.WeightedRandomized(g, alpha, 2, cfg.optsOn(slot, seed)...)
			},
		},
		{
			name: "LW10-style det bucket", approx: "O(α·log Δ)", rounds: "O(log Δ)",
			run: func(g *graph.Graph, seed uint64, slot []congest.Option) (*mds.Report, error) {
				return baseline.LWDeterministic(g, cfg.optsOn(slot, seed)...)
			},
		},
		{
			name: "LRG rand (JRS02)", approx: "O(log Δ) exp.", rounds: "O(log n·log Δ)",
			run: func(g *graph.Graph, seed uint64, slot []congest.Option) (*mds.Report, error) {
				return baseline.LRGRandomized(g, cfg.optsOn(slot, seed)...)
			},
		},
	}

	// One batch job per (algorithm, instance): jobs land in slots, so the
	// table below is identical whatever cfg.Parallel is.
	type e1runs struct{ big, small *mds.Report }
	runs := make([]e1runs, len(algos))
	err := cfg.batch(2*len(algos), func(i int, slot []congest.Option) error {
		a := algos[i/2]
		if i%2 == 0 {
			rep, err := a.run(big.G, cfg.Seed, slot)
			if err != nil {
				return fmt.Errorf("%s: %w", a.name, err)
			}
			runs[i/2].big = rep
			return nil
		}
		rep, err := a.run(small.G, cfg.Seed, slot)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		runs[i/2].small = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range algos {
		rep, repS := runs[i].big, runs[i].small
		// Full receipt verification — the same path the CLI and server use:
		// domination, packing feasibility, and the α-bound ratio check.
		if rec := arbods.BuildReceipt(big.G, rep); rec.Err() != nil {
			return nil, fmt.Errorf("%s failed verification: %w", a.name, rec.Err())
		}
		t.AddRow(a.name, a.approx, a.rounds,
			fmtI(rep.Rounds()), fmtI(len(rep.DS)),
			fmtF(rep.CertifiedRatio()), fmtF(exactRatio(small.G, repS.DSWeight)))
	}

	// Centralized references.
	gr := baseline.Greedy(big.G)
	grS := baseline.Greedy(small.G)
	t.AddRow("greedy (centralized, Joh74)", "ln(Δ+1)", "—", "—",
		fmtI(len(gr.DS)), "—", fmtF(exactRatio(small.G, grS.Weight)))
	sun := baseline.Sun(big.G)
	sunS := baseline.Sun(small.G)
	var sunLB float64
	for _, xv := range sun.Packing {
		sunLB += float64(xv)
	}
	sunRatio := math.Inf(1)
	if sunLB > 0 {
		sunRatio = float64(sun.Weight) / sunLB
	}
	t.AddRow("Sun21-style (centralized)", "α+1 (Sun's order)", "—", "—",
		fmtI(len(sun.DS)), fmtF(sunRatio), fmtF(exactRatio(small.G, sunS.Weight)))

	// Analytic-only prior work.
	t.AddRow("LW10 rand", "O(α²) exp.", "O(log n)", "—", "—", "—", "—")
	t.AddRow("BU17+KMW06", "(2α+1)(1+ε)", "O(log²Δ/ε⁴)", "—", "—", "—", "—")
	t.AddRow("MSW21 rand", "O(α) exp.", "O(α·log n)", "—", "—", "—", "—")

	return []*Table{t}, nil
}

// E2RoundsVsDelta regenerates the Theorem 1.1 round bound O(log(Δ/α)/ε):
// on broom trees (α = 1) the measured round count must grow logarithmically
// with Δ and match the schedule formula exactly.
func E2RoundsVsDelta(cfg Config) ([]*Table, error) {
	eps := 0.25
	t := &Table{
		ID:       "E2",
		Title:    fmt.Sprintf("rounds vs Δ at α=1, ε=%.2f (broom trees)", eps),
		PaperRef: "Theorem 1.1 round complexity O(log(Δ/α)/ε)",
		Columns:  []string{"Δ", "n", "rounds", "Δrounds (Δ ×4)", "certified ratio", "bound (2α+1)(1+ε)"},
		Notes: []string{
			"each row multiplies Δ by 4 (the last by 16 at full scale); the round increments must stay near-constant per ×4 — the logarithmic shape of the theorem, 2·log_{1+ε}4 ≈ 12.4 at ε=0.25.",
		},
	}
	leaves := []int{8, 32, 128, 512, cfg.pick(2048, 8192)}
	pathLen := cfg.pick(60, 300)
	brooms := make([]gen.Result, len(leaves))
	for i, l := range leaves {
		brooms[i] = gen.Broom(pathLen, l)
	}
	reps := make([]*mds.Report, len(leaves))
	if err := cfg.batch(len(leaves), func(i int, slot []congest.Option) error {
		rep, err := mds.UnweightedDeterministic(brooms[i].G, 1, eps, cfg.optsOn(slot, cfg.Seed)...)
		reps[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	prevRounds := 0
	for i, rep := range reps {
		delta := brooms[i].G.MaxDegree()
		inc := "—"
		if i > 0 {
			inc = fmtI(rep.Rounds() - prevRounds)
		}
		prevRounds = rep.Rounds()
		t.AddRow(fmtI(delta), fmtI(brooms[i].G.N()), fmtI(rep.Rounds()), inc,
			fmtF(rep.CertifiedRatio()), fmtF(rep.Factor))
	}

	// E2b: rounds vs n at fixed Δ and α — the round complexity must be
	// independent of n, the decisive advantage over MSW21's O(α·log n)
	// and LW10-rand's O(log n).
	tb := &Table{
		ID:       "E2b",
		Title:    "rounds vs n at fixed Δ=129, α=1 (broom trees)",
		PaperRef: "Theorem 1.1: round complexity depends on Δ/α and ε only — not on n",
		Columns:  []string{"n", "Δ", "rounds (Thm 1.1)", "α·log₂ n (MSW21 shape)", "certified ratio"},
		Notes: []string{
			"MSW21 needs O(α·log n) rounds and LW10-rand O(log n); the measured column stays flat while theirs would grow with n.",
		},
	}
	pathLens := []int{128, 1024, 8192, cfg.pick(16384, 131072)}
	broomsB := make([]gen.Result, len(pathLens))
	for i, pl := range pathLens {
		broomsB[i] = gen.Broom(pl, 128)
	}
	repsB := make([]*mds.Report, len(pathLens))
	if err := cfg.batch(len(pathLens), func(i int, slot []congest.Option) error {
		rep, err := mds.UnweightedDeterministic(broomsB[i].G, 1, eps, cfg.optsOn(slot, cfg.Seed)...)
		repsB[i] = rep
		return err
	}); err != nil {
		return nil, err
	}
	for i, rep := range repsB {
		tb.AddRow(fmtI(broomsB[i].G.N()), fmtI(broomsB[i].G.MaxDegree()), fmtI(rep.Rounds()),
			fmtF(math.Log2(float64(broomsB[i].G.N()))), fmtF(rep.CertifiedRatio()))
	}
	return []*Table{t, tb}, nil
}

// E3ApproxVsEpsilon regenerates the Theorem 1.1 approximation bound
// (2α+1)(1+ε): across α and ε the certified ratio must stay below the
// bound, and rounds must scale like 1/ε.
func E3ApproxVsEpsilon(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:       "E3",
		Title:    "certified approximation vs ε and α (forest unions)",
		PaperRef: "Theorem 1.1 approximation factor (2α+1)(1+ε)",
		Columns:  []string{"α", "ε", "bound", "certified ratio", "ratio vs OPT (n=40)", "rounds"},
	}
	n := cfg.pick(300, 2500)
	alphas := []int{1, 2, 4}
	epss := []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	bigs := make([]gen.Result, len(alphas))
	smalls := make([]gen.Result, len(alphas))
	for ai, alpha := range alphas {
		bigs[ai] = gen.ForestUnion(n, alpha, cfg.Seed+uint64(alpha))
		smalls[ai] = gen.ForestUnion(40, alpha, cfg.Seed+100+uint64(alpha))
	}
	// One job per (α, ε, instance) grid point — the whole grid pipelines
	// across the pool, and the slot layout reproduces the nested loop's
	// row order exactly.
	type e3runs struct{ big, small *mds.Report }
	grid := make([]e3runs, len(alphas)*len(epss))
	err := cfg.batch(2*len(grid), func(i int, slot []congest.Option) error {
		gi := i / 2
		ai, ei := gi/len(epss), gi%len(epss)
		w := bigs[ai]
		if i%2 == 1 {
			w = smalls[ai]
		}
		rep, err := mds.UnweightedDeterministic(w.G, alphas[ai], epss[ei], cfg.optsOn(slot, cfg.Seed)...)
		if err != nil {
			return err
		}
		if i%2 == 0 {
			grid[gi].big = rep
		} else {
			grid[gi].small = rep
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for gi, runs := range grid {
		ai, ei := gi/len(epss), gi%len(epss)
		rep, repS := runs.big, runs.small
		if rep.CertifiedRatio() > rep.Factor*(1+1e-9) {
			return nil, fmt.Errorf("E3: certified ratio %g exceeds bound %g", rep.CertifiedRatio(), rep.Factor)
		}
		t.AddRow(fmtI(alphas[ai]), fmtF(epss[ei]), fmtF(rep.Factor),
			fmtF(rep.CertifiedRatio()), fmtF(exactRatio(smalls[ai].G, repS.DSWeight)), fmtI(rep.Rounds()))
	}
	return []*Table{t}, nil
}

// E4TradeoffT regenerates the Theorem 1.2 trade-off: larger t buys a better
// approximation (α + O(α/t)) at the cost of O(t·log Δ) rounds. Measured on
// a preferential-attachment graph with uniform weights, averaged over
// seeds. The workload needs Δ ≫ α so that the Lemma 4.1 phase engages:
// with λ = ε/(α+1) the lemma sets S = ∅ whenever λ(Δ+1) < 1.
func E4TradeoffT(cfg Config) ([]*Table, error) {
	n := cfg.pick(1000, 8000)
	w := gen.BarabasiAlbert(n, 16, cfg.Seed)
	alpha := w.ArboricityBound // = 16, so the valid regime is t ≤ α/log α = 4
	g := gen.UniformWeights(w.G, 100, cfg.Seed+1)
	t := &Table{
		ID:       "E4",
		Title:    fmt.Sprintf("Theorem 1.2 trade-off on %s (α=%d, Δ=%d)", w.Name, alpha, g.MaxDegree()),
		PaperRef: "Theorem 1.2: (α+O(α/t))-approximation in O(t·log Δ) rounds",
		Columns: []string{
			"t", "γ", "analytic E-bound", "mean w(DS)", "mean ratio vs LB", "mean w(S′) share", "rounds",
		},
		Notes: []string{
			"LB is the strongest dual packing bound produced across all runs of the table (every feasible packing lower-bounds OPT), so the ratio column is comparable across rows — a run's own Σx weakens as ε = 1/4t shrinks.",
			"w(S′) share is the fraction of the set's weight contributed by the Lemma 4.6 sampling extension.",
			"the theorem's regime is 1 ≤ t ≤ α/log α (= 4 here); the Theorem 1.1 row uses the deterministic completion instead of the sampling extension.",
		},
	}
	// The deterministic run's packing (largest ε) is the strongest
	// Lemma 2.1 lower bound available; use it as the common denominator.
	// All 1+4·reps runs are independent, so the whole t-sweep is one
	// batch: slot 0 is the deterministic reference, slot 1+ti·reps+rep a
	// randomized repetition. Seeds depend on the slot only — the same
	// Seed+1000·rep schedule per t as the sequential sweep always used.
	ttVals := []int{1, 2, 3, 4}
	nreps := cfg.reps()
	var det *mds.Report
	randRuns := make([]*mds.Report, len(ttVals)*nreps)
	err := cfg.batch(1+len(randRuns), func(i int, slot []congest.Option) error {
		if i == 0 {
			var err error
			det, err = mds.WeightedDeterministic(g, alpha, 0.25, cfg.optsOn(slot, cfg.Seed)...)
			return err
		}
		tt, rep := ttVals[(i-1)/nreps], (i-1)%nreps
		rr, err := mds.WeightedRandomized(g, alpha, tt, cfg.optsOn(slot, cfg.Seed+uint64(1000*rep))...)
		randRuns[i-1] = rr
		return err
	})
	if err != nil {
		return nil, err
	}
	lb := det.PackingSum
	type row struct {
		label           string
		gamma, analytic string
		weights         []float64
		extShare        []float64
		rounds          int
	}
	var rows []row
	for ti, tt := range ttVals {
		r := row{label: fmtI(tt)}
		for _, rr := range randRuns[ti*nreps : (ti+1)*nreps] {
			if rr.PackingSum > lb {
				lb = rr.PackingSum
			}
			r.weights = append(r.weights, float64(rr.DSWeight))
			r.extShare = append(r.extShare, float64(rr.ExtensionWeight)/float64(rr.DSWeight))
			r.rounds = rr.Rounds()
			r.gamma = fmtF(rr.Gamma)
			r.analytic = fmtF(rr.ExpectedFactor)
		}
		rows = append(rows, r)
	}
	rows = append(rows, row{
		label: "Thm 1.1 (ε=0.25)", gamma: "—", analytic: fmtF(det.Factor),
		weights:  []float64{float64(det.DSWeight)},
		extShare: []float64{float64(det.ExtensionWeight) / float64(det.DSWeight)},
		rounds:   det.Rounds(),
	})
	for _, r := range rows {
		t.AddRow(r.label, r.gamma, r.analytic, fmtF(mean(r.weights)),
			fmtF(mean(r.weights)/lb), fmtF(mean(r.extShare)), fmtI(r.rounds))
	}
	return []*Table{t}, nil
}

// E5GeneralK regenerates Theorem 1.3 on general graphs: for each k, the
// expected approximation is Δ^{1/k}(Δ^{1/k}+1)(k+1) in O(k²) rounds; the
// paper's improvement over KMW06 is dropping their extra log Δ factor —
// shown both analytically and by running a KW05-style implementation on the
// same instances.
func E5GeneralK(cfg Config) ([]*Table, error) {
	n := cfg.pick(400, 2000)
	w := gen.ErdosRenyi(n, 12/float64(n), cfg.Seed)
	g := w.G // unweighted so the KW05 baseline can run on the same input
	delta := float64(g.MaxDegree() + 1)
	t := &Table{
		ID:       "E5",
		Title:    fmt.Sprintf("Theorem 1.3 vs KW05-style on %s (Δ=%d)", w.Name, g.MaxDegree()),
		PaperRef: "Theorem 1.3: O(kΔ^{2/k})-approximation in O(k²) rounds (improves KMW06 by log Δ)",
		Columns: []string{
			"k", "algorithm", "analytic bound", "mean |DS|", "mean ratio vs LB", "rounds",
		},
		Notes: []string{
			"LB is the strongest Theorem 1.3 dual packing across all runs (Σx ≤ OPT); KW05's fractional phase has no dual, so both algorithms are normalized by the same bound.",
			"the KW05 analytic bound carries the extra ln Δ from its randomized rounding — the factor Theorem 1.3 removes.",
		},
	}
	// Both algorithms × all k × all repetitions are independent runs: one
	// batch of 2·4·reps jobs, the Theorem 1.3 runs in the first half of
	// the slot space and the KW05 runs in the second, with the exact
	// per-repetition seed schedules of the sequential sweep.
	kVals := []int{1, 2, 3, 4}
	nreps := cfg.reps()
	thmRuns := make([]*mds.Report, len(kVals)*nreps)
	kwRuns := make([]*mds.Report, len(kVals)*nreps)
	err := cfg.batch(2*len(thmRuns), func(i int, slot []congest.Option) error {
		if i < len(thmRuns) {
			k, rep := kVals[i/nreps], i%nreps
			r, err := mds.GeneralGraphs(g, k, cfg.optsOn(slot, cfg.Seed+uint64(999*rep))...)
			thmRuns[i] = r
			return err
		}
		j := i - len(thmRuns)
		k, rep := kVals[j/nreps], j%nreps
		r, _, err := baseline.KW05(g, k, cfg.optsOn(slot, cfg.Seed+uint64(777*rep))...)
		kwRuns[j] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	var lb float64
	type row struct {
		k              int
		algo, analytic string
		sizes          []float64
		rounds         int
	}
	var rows []row
	for ki, k := range kVals {
		tRow := row{k: k, algo: "Thm 1.3"}
		var gamma float64
		for _, r := range thmRuns[ki*nreps : (ki+1)*nreps] {
			if !r.AllDominated {
				return nil, fmt.Errorf("E5: k=%d run left nodes undominated", k)
			}
			if r.PackingSum > lb {
				lb = r.PackingSum
			}
			tRow.sizes = append(tRow.sizes, float64(r.DSWeight))
			tRow.rounds = r.Rounds()
			gamma = r.Gamma
		}
		tRow.analytic = fmtF(gamma * (gamma + 1) * float64(k+1))
		rows = append(rows, tRow)

		kRow := row{k: k, algo: "KW05-style"}
		for _, r := range kwRuns[ki*nreps : (ki+1)*nreps] {
			if !r.AllDominated {
				return nil, fmt.Errorf("E5: KW05 k=%d left nodes undominated", k)
			}
			kRow.sizes = append(kRow.sizes, float64(r.DSWeight))
			kRow.rounds = r.Rounds()
		}
		kRow.analytic = fmtF(gamma * (gamma + 1) * float64(k+1) * math.Log(delta))
		rows = append(rows, kRow)
	}
	for _, r := range rows {
		t.AddRow(fmtI(r.k), r.algo, r.analytic, fmtF(mean(r.sizes)),
			fmtF(mean(r.sizes)/lb), fmtI(r.rounds))
	}
	return []*Table{t}, nil
}
