package bench_test

import (
	"strings"
	"testing"

	"arbods/internal/bench"
)

// TestAllExperimentsSmall runs the complete experiment suite at Small scale
// and sanity-checks table structure. This is the integration test that every
// table in EXPERIMENTS.md flows through.
func TestAllExperimentsSmall(t *testing.T) {
	tables, err := bench.RunAll(bench.Config{Seed: 1, Scale: bench.Small})
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.PaperRef == "" {
			t.Fatalf("table missing metadata: %+v", tb)
		}
		if ids[tb.ID] {
			t.Fatalf("duplicate table ID %s", tb.ID)
		}
		ids[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("table %s has no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("table %s: row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
			}
		}
		// The harness marks failed checks with "NO" cells; none may appear —
		// except in E9b, whose entire point is that the no-freeze ablation
		// breaks packing feasibility.
		if tb.ID != "E9b" {
			for _, row := range tb.Rows {
				for _, cell := range row {
					if cell == "NO" {
						t.Fatalf("table %s reports a failed check:\n%s", tb.ID, tb.Markdown())
					}
				}
			}
		}
	}
	for _, want := range []string{"E1", "E2", "E2b", "E3", "E4", "E5", "E6a", "E6b", "E6c", "E6d", "E7", "E8", "E9a", "E9b", "E9c", "E9d", "E9e", "E10"} {
		if !ids[want] {
			t.Fatalf("missing experiment table %s", want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &bench.Table{
		ID:       "T",
		Title:    "demo",
		PaperRef: "nowhere",
		Columns:  []string{"a", "b"},
		Notes:    []string{"a note"},
	}
	tb.AddRow("1", "x,y") // comma forces CSV quoting
	tb.AddRow("2")        // short row gets padded
	md := tb.Markdown()
	if !strings.Contains(md, "| a") || !strings.Contains(md, "a note") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("csv quoting broken:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3", len(lines))
	}
}

// TestE9bDemonstratesCollapse pins the ablation's point: the no-freeze
// variant must actually break packing feasibility on a non-trivial
// instance (otherwise the ablation shows nothing).
func TestE9bDemonstratesCollapse(t *testing.T) {
	tables, err := bench.E9Ablations(bench.Config{Seed: 3, Scale: bench.Small})
	if err != nil {
		t.Fatal(err)
	}
	var e9b *bench.Table
	for _, tb := range tables {
		if tb.ID == "E9b" {
			e9b = tb
		}
	}
	if e9b == nil {
		t.Fatal("E9b missing")
	}
	// Row 0 is the paper variant (feasible), row 1 the ablation. The
	// ablation's feasibility column should read "NO" on this workload.
	if e9b.Rows[0][1] != "yes" {
		t.Fatalf("paper variant infeasible?\n%s", e9b.Markdown())
	}
	if e9b.Rows[1][1] != "NO" {
		t.Logf("note: no-freeze stayed feasible on this instance:\n%s", e9b.Markdown())
	}
}
