// Package bench regenerates the paper's quantitative content as tables.
// Each experiment (E1…E10, indexed in DESIGN.md §4) corresponds to a table
// or figure of the paper: the §1.1 comparison of prior work, the
// round/approximation trade-offs of Theorems 1.1–1.3, the Figure 1
// lower-bound construction with its Theorem 1.4 reduction, the Appendix A
// tree algorithm, the Remark 4.4/4.5 unknown-parameter variants, and the
// design ablations DESIGN.md calls out.
//
// cmd/mdsbench renders all tables (this is how EXPERIMENTS.md is produced);
// bench_test.go at the repository root exposes one testing.B target per
// experiment.
package bench

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result. The JSON tags define its
// shape inside the `mdsbench -format json` report (see json.go).
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string `json:"id"`
	// Title is a one-line description.
	Title string `json:"title"`
	// PaperRef names the table/figure/theorem being reproduced.
	PaperRef string `json:"paper_ref"`
	// Columns holds the header cells.
	Columns []string `json:"columns"`
	// Rows holds the data cells (each row len == len(Columns)).
	Rows [][]string `json:"rows"`
	// Notes are free-form footnotes (substitutions, caveats).
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "*Reproduces: %s*\n\n", t.PaperRef)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&sb, " %-*s |", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sb.WriteString("|")
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2))
		sb.WriteString("|")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quotes on demand).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(esc(c))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
