package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

// buildRandom builds a deterministic random graph with the Builder, with
// explicit weights when weighted is set.
func buildRandom(t *testing.T, n int, p float64, weighted bool, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	if weighted {
		for v := 0; v < n; v++ {
			b.SetWeight(v, 1+rng.Int63n(1000))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func encodeBinary(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fixCRC rewrites the trailer so a deliberately mutated blob passes the
// checksum and exercises the structural validation instead.
func fixCRC(data []byte) {
	sum := crc32.Checksum(data[:len(data)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
}

func TestBinaryRoundTrip(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":      NewBuilder(0).MustBuild(),
		"singleton":  NewBuilder(1).MustBuild(),
		"edgeless":   NewBuilder(5).MustBuild(),
		"path":       NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustBuild(),
		"unweighted": buildRandom(t, 200, 0.05, false, 1),
		"weighted":   buildRandom(t, 200, 0.05, true, 2),
	}
	for name, g := range graphs {
		data := encodeBinary(t, g)
		got, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(g, got) {
			t.Fatalf("%s: round trip diverges\nwant %+v\n got %+v", name, g, got)
		}
		// The encoding must be deterministic: snapshots are content-compared
		// across daemon restarts.
		if again := encodeBinary(t, g); !bytes.Equal(data, again) {
			t.Fatalf("%s: encoding is not deterministic", name)
		}
	}
}

// TestBinaryMatchesTextCodec: the binary round trip must reconstruct the
// same graph the text codec does — same transcript substrate either way.
func TestBinaryMatchesTextCodec(t *testing.T) {
	g := buildRandom(t, 150, 0.04, true, 3)
	var text, bin bytes.Buffer
	if err := Encode(&text, g); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	fromText, err := Decode(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText, fromBin) {
		t.Fatal("text and binary codecs reconstruct different graphs")
	}
}

func TestBinaryTruncation(t *testing.T) {
	data := encodeBinary(t, buildRandom(t, 60, 0.1, true, 4))
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(data))
		}
	}
}

func TestBinaryCorruption(t *testing.T) {
	orig := encodeBinary(t, buildRandom(t, 60, 0.1, true, 5))
	for pos := 0; pos < len(orig)-4; pos += 11 {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0x40
		if _, err := DecodeBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", pos)
		}
	}
}

// TestBinaryForgery: blobs with a valid checksum but broken structure must
// be rejected by the structural validation.
func TestBinaryForgery(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(0, 3).MustBuild()
	base := encodeBinary(t, g)
	adjStart := binaryHeader + 4*g.N() // first adj entry (node 0's list: 1, 3)

	mutate := func(name string, f func(data []byte)) {
		data := append([]byte(nil), base...)
		f(data)
		fixCRC(data)
		if _, err := DecodeBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("%s: forged blob decoded successfully", name)
		}
	}
	mutate("asymmetric edge", func(data []byte) {
		// Node 0's first neighbor 1 → 2, but node 2's list has no 0.
		binary.LittleEndian.PutUint32(data[adjStart:], 2)
	})
	mutate("self-loop", func(data []byte) {
		binary.LittleEndian.PutUint32(data[adjStart:], 0)
	})
	mutate("unsorted list", func(data []byte) {
		// Node 0's list (1, 3) → (3, 1).
		binary.LittleEndian.PutUint32(data[adjStart:], 3)
		binary.LittleEndian.PutUint32(data[adjStart+4:], 1)
	})
	mutate("out-of-range neighbor", func(data []byte) {
		binary.LittleEndian.PutUint32(data[adjStart:], 99)
	})
	mutate("non-monotone offsets", func(data []byte) {
		binary.LittleEndian.PutUint32(data[binaryHeader:], 7) // offsets[1] > e
	})
	mutate("bad magic", func(data []byte) {
		data[0] = 'X'
	})

	// Zero weight with a valid checksum (weighted encoding required).
	wg := NewBuilder(2).AddEdge(0, 1).SetWeight(0, 5).MustBuild()
	wdata := encodeBinary(t, wg)
	wpos := len(wdata) - 4 - 16 // two int64 weights before the trailer
	binary.LittleEndian.PutUint64(wdata[wpos:], 0)
	fixCRC(wdata)
	if _, err := DecodeBinary(bytes.NewReader(wdata)); err == nil {
		t.Fatal("zero weight decoded successfully")
	}
}
