package graph_test

import (
	"strings"
	"testing"
	"testing/quick"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2).MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := graph.NewBuilder(4).
		AddEdge(0, 1).
		AddEdge(1, 2).
		AddEdge(2, 3).
		SetWeight(3, 42).
		MustBuild()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree = %d, want 2", g.MaxDegree())
	}
	if g.Weight(3) != 42 || g.Weight(0) != 1 {
		t.Fatalf("weights wrong: %d, %d", g.Weight(3), g.Weight(0))
	}
	if g.TotalWeight() != 45 {
		t.Fatalf("total weight = %d, want 45", g.TotalWeight())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) || g.HasEdge(0, 3) || g.HasEdge(1, 1) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"negative-n", func() (*graph.Graph, error) { return graph.NewBuilder(-1).Build() }},
		{"self-loop", func() (*graph.Graph, error) { return graph.NewBuilder(2).AddEdge(1, 1).Build() }},
		{"edge-oob", func() (*graph.Graph, error) { return graph.NewBuilder(2).AddEdge(0, 2).Build() }},
		{"edge-neg", func() (*graph.Graph, error) { return graph.NewBuilder(2).AddEdge(-1, 0).Build() }},
		{"weight-oob-node", func() (*graph.Graph, error) { return graph.NewBuilder(2).SetWeight(5, 1).Build() }},
		{"weight-zero", func() (*graph.Graph, error) { return graph.NewBuilder(2).SetWeight(0, 0).Build() }},
		{"weight-huge", func() (*graph.Graph, error) {
			return graph.NewBuilder(2).SetWeight(0, graph.MaxWeight+1).Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDuplicateEdgesDeduplicated(t *testing.T) {
	g := graph.NewBuilder(3).
		AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1).
		MustBuild()
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong after dedup")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := graph.NewBuilder(5).
		AddEdge(4, 2).AddEdge(2, 0).AddEdge(2, 3).AddEdge(1, 2).
		MustBuild()
	nb := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("neighbors = %v", nb)
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nb, want)
		}
	}
}

func TestClosedNeighborhoodMinWeight(t *testing.T) {
	g := graph.NewBuilder(3).
		AddEdge(0, 1).AddEdge(1, 2).
		SetWeight(0, 5).SetWeight(1, 3).SetWeight(2, 3).
		MustBuild()
	tau, arg := g.ClosedNeighborhoodMinWeight(0)
	if tau != 3 || arg != 1 {
		t.Fatalf("τ(0)=%d argmin=%d, want 3, 1", tau, arg)
	}
	// Tie at weight 3 between nodes 1 and 2: lower ID wins.
	tau, arg = g.ClosedNeighborhoodMinWeight(1)
	if tau != 3 || arg != 1 {
		t.Fatalf("τ(1)=%d argmin=%d, want 3, 1", tau, arg)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := graph.NewBuilder(6).
		AddEdge(0, 1).AddEdge(1, 2).
		AddEdge(4, 5).
		MustBuild()
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestIsForest(t *testing.T) {
	if triangle(t).IsForest() {
		t.Fatal("triangle is not a forest")
	}
	path := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustBuild()
	if !path.IsForest() {
		t.Fatal("path is a forest")
	}
	if !graph.NewBuilder(3).MustBuild().IsForest() {
		t.Fatal("edgeless graph is a forest")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangle(t)
	sub, orig, err := g.InducedSubgraph([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 || sub.M() != 1 {
		t.Fatalf("subgraph n=%d m=%d", sub.N(), sub.M())
	}
	if orig[0] != 0 || orig[1] != 2 {
		t.Fatalf("mapping %v", orig)
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate nodes accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{7}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestSetWeights(t *testing.T) {
	g := triangle(t)
	g2, err := g.SetWeights([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(1) != 1 || g2.Weight(1) != 2 {
		t.Fatal("SetWeights must not mutate the original")
	}
	if _, err := g.SetWeights([]int64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := g.SetWeights([]int64{0, 1, 1}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// randomGraph builds a pseudo-random graph from a seed, for property tests.
func randomGraph(seed uint64, n int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(0.15) {
				b.AddEdge(u, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		b.SetWeight(v, 1+r.Int63n(1000))
	}
	return b.MustBuild()
}

// TestCodecRoundTrip is a property test: Encode∘Decode is the identity on
// random graphs.
func TestCodecRoundTrip(t *testing.T) {
	prop := func(seed uint64, sz uint8) bool {
		n := int(sz%40) + 1
		g := randomGraph(seed, n)
		var sb strings.Builder
		if err := graph.Encode(&sb, g); err != nil {
			return false
		}
		g2, err := graph.Decode(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if g2.Weight(v) != g.Weight(v) || g2.Degree(v) != g.Degree(v) {
				return false
			}
			nb, nb2 := g.Neighbors(v), g2.Neighbors(v)
			for i := range nb {
				if nb[i] != nb2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad-header":   "nonsense v9\nn 1 m 0\n",
		"bad-size":     "arbods-graph v1\nnope\n",
		"bad-edge":     "arbods-graph v1\nn 2 m 1\ne 0 x\n",
		"m-mismatch":   "arbods-graph v1\nn 2 m 2\ne 0 1\n",
		"unrecognized": "arbods-graph v1\nn 2 m 0\nz 1 2\n",
		"edge-oob":     "arbods-graph v1\nn 2 m 1\ne 0 5\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := graph.Decode(strings.NewReader(input)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDecodeIgnoresComments(t *testing.T) {
	input := "# a comment\narbods-graph v1\n\nn 2 m 1\n# another\ne 0 1\n"
	g, err := graph.Decode(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatal("decode with comments failed")
	}
}

func TestReverseIndex(t *testing.T) {
	r := rng.New(11)
	b := graph.NewBuilder(200)
	for i := 0; i < 900; i++ {
		u, v := r.Intn(200), r.Intn(200)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	for v := 0; v < g.N(); v++ {
		nbrs := g.Neighbors(v)
		rev := g.ReverseIndex(v)
		if len(rev) != len(nbrs) {
			t.Fatalf("node %d: rev len %d != deg %d", v, len(rev), len(nbrs))
		}
		for i, u := range nbrs {
			back := g.Neighbors(int(u))
			if int(rev[i]) >= len(back) || back[rev[i]] != int32(v) {
				t.Fatalf("node %d nbr %d: rev index %d does not point back", v, u, rev[i])
			}
		}
	}
}
