package graph_test

import (
	"fmt"
	"testing"

	"arbods/internal/graph"
	"arbods/internal/rng"
)

// randomEdges returns ~avgDeg·n/2 random edges on n nodes (with repeats,
// exercising the dedup path the same way the generators do).
func randomEdges(n int, avgDeg float64, seed uint64) [][2]int {
	r := rng.New(seed)
	m := int(avgDeg * float64(n) / 2)
	edges := make([][2]int, 0, m)
	for len(edges) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// BenchmarkBuild measures CSR construction (counting-sort placement,
// dedup, reverse-edge index) from a prebuilt edge list, at the two scales
// the routing benchmarks use. The edge-list fill is timed too — it is the
// same O(m) append work every caller pays — but generation randomness is
// hoisted out.
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		edges := randomEdges(n, 4, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bld := graph.NewBuilder(n)
				for _, e := range edges {
					bld.AddEdge(e[0], e[1])
				}
				if _, err := bld.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
