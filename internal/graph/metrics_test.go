package graph_test

import (
	"testing"

	"arbods/internal/graph"
)

func pathN(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

func TestBFS(t *testing.T) {
	g := pathN(5)
	dist := g.BFS(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	// Disconnected node.
	g2 := graph.NewBuilder(3).AddEdge(0, 1).MustBuild()
	dist = g2.BFS(0)
	if dist[2] != -1 {
		t.Fatalf("unreachable node has distance %d", dist[2])
	}
	// Out-of-range source.
	for _, d := range g2.BFS(-1) {
		if d != -1 {
			t.Fatal("BFS from invalid source should reach nothing")
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathN(7)
	if ecc := g.Eccentricity(3); ecc != 3 {
		t.Fatalf("center eccentricity %d, want 3", ecc)
	}
	if ecc := g.Eccentricity(0); ecc != 6 {
		t.Fatalf("end eccentricity %d, want 6", ecc)
	}
	// Double sweep is exact on trees regardless of start.
	for src := 0; src < 7; src++ {
		if d := g.DiameterLowerBound(src); d != 6 {
			t.Fatalf("diameter from %d = %d, want 6", src, d)
		}
	}
	if d := graph.NewBuilder(0).MustBuild().DiameterLowerBound(0); d != 0 {
		t.Fatalf("empty graph diameter %d", d)
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star on 5 nodes: one degree-4 node, four degree-1 nodes.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, v)
	}
	h := b.MustBuild().DegreeHistogram()
	if h[4] != 1 || h[1] != 4 || h[0] != 0 {
		t.Fatalf("histogram %v", h)
	}
}
