package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text codec serializes graphs in a line-oriented format that is easy to
// diff and to feed to external tools:
//
//	arbods-graph v1
//	n <nodes> m <edges>
//	w <id> <weight>        (one line per node with weight != 1)
//	e <u> <v>              (one line per undirected edge, u < v)
//
// Lines beginning with '#' and blank lines are ignored when decoding.

const codecHeader = "arbods-graph v1"

// Encode writes g to w in the arbods text format.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\nn %d m %d\n", codecHeader, g.N(), g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if g.Weight(v) != 1 {
			if _, err := fmt.Fprintf(bw, "w %d %d\n", v, g.Weight(v)); err != nil {
				return err
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the arbods text format.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: empty input")
	}
	if header != codecHeader {
		return nil, fmt.Errorf("graph: line %d: unexpected header %q", line, header)
	}
	sizes, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: missing size line")
	}
	var n, m int
	if _, err := fmt.Sscanf(sizes, "n %d m %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: line %d: bad size line %q: %w", line, sizes, err)
	}
	b := NewBuilder(n)
	edges := 0
	for {
		s, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		switch {
		case fields[0] == "w" && len(fields) == 3:
			v, err1 := strconv.Atoi(fields[1])
			w, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight line %q", line, s)
			}
			b.SetWeight(v, w)
		case fields[0] == "e" && len(fields) == 3:
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", line, s)
			}
			b.AddEdge(u, v)
			edges++
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized line %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", m, edges)
	}
	return b.Build()
}
