package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The binary codec serializes a graph's CSR structure directly, so a
// decoded graph costs array fills instead of text parsing and a Builder
// pass — the difference between milliseconds and seconds on million-node
// corpora. The format is little-endian throughout:
//
//	offset  size  field
//	0       8     magic "ARBCSR01"
//	8       4     n  (uint32, node count)
//	12      8     e  (uint64, directed slot count = len(adj) = 2m)
//	20      1     weight form: 0 = all weights 1, 1 = explicit weights
//	21      4n    offsets[1..n] (int32; offsets[0] = 0 is implicit)
//	·       4e    adj (int32, concatenated sorted neighbor lists)
//	·       8n    weights (int64; present only when form = 1)
//	end-4   4     CRC-32C (Castagnoli) of every preceding byte
//
// Decode re-validates everything a Builder would have enforced — sorted
// strictly-ascending neighbor lists, in-range IDs, no self-loops,
// symmetric adjacency, weights in [1, MaxWeight] — and recomputes the
// reverse-edge index and the maximum degree rather than trusting the
// blob, so a corrupted or hand-forged snapshot can fail the checksum or
// the structural checks but can never produce an inconsistent Graph.

const (
	binaryMagic  = "ARBCSR01"
	binaryHeader = 8 + 4 + 8 + 1 // magic + n + e + weight form
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeBinary writes g to w in the arbods binary CSR format.
func EncodeBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	h := crc32.New(castagnoli)
	mw := io.MultiWriter(bw, h)

	n := g.N()
	var hdr [binaryHeader]byte
	copy(hdr[:8], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(n))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(g.adj)))
	if !g.Unweighted() {
		hdr[20] = 1
	}
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}

	var buf [8]byte
	for v := 1; v <= n; v++ {
		binary.LittleEndian.PutUint32(buf[:4], uint32(g.offsets[v]))
		if _, err := mw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, u := range g.adj {
		binary.LittleEndian.PutUint32(buf[:4], uint32(u))
		if _, err := mw.Write(buf[:4]); err != nil {
			return err
		}
	}
	if hdr[20] == 1 {
		for _, wt := range g.weights {
			binary.LittleEndian.PutUint64(buf[:], uint64(wt))
			if _, err := mw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], h.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeBinary reads a graph in the arbods binary CSR format, verifying
// the checksum and every structural invariant before constructing the
// Graph. Any truncation, corruption, or forged structure yields an error,
// never a malformed graph.
func DecodeBinary(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: binary read: %w", err)
	}
	if len(data) < binaryHeader+4 {
		return nil, fmt.Errorf("graph: binary blob truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %q", data[:8])
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	e64 := binary.LittleEndian.Uint64(data[12:20])
	form := data[20]
	if form > 1 {
		return nil, fmt.Errorf("graph: unknown weight form %d", form)
	}
	if e64 > uint64(1)<<31-1 {
		return nil, fmt.Errorf("graph: slot count %d overflows int32 offsets", e64)
	}
	e := int(e64)
	want := binaryHeader + 4*n + 4*e + 4
	if form == 1 {
		want += 8 * n
	}
	if len(data) != want {
		return nil, fmt.Errorf("graph: binary blob is %d bytes, header implies %d", len(data), want)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[:len(data)-4], castagnoli); got != sum {
		return nil, fmt.Errorf("graph: binary checksum mismatch (stored %08x, computed %08x)", sum, got)
	}

	pos := binaryHeader
	offsets := make([]int32, n+1)
	prev := int32(0)
	for v := 1; v <= n; v++ {
		o := int32(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if o < prev || int(o) > e {
			return nil, fmt.Errorf("graph: offsets not monotone at node %d (%d after %d)", v, o, prev)
		}
		offsets[v] = o
		prev = o
	}
	if int(offsets[n]) != e {
		return nil, fmt.Errorf("graph: final offset %d != slot count %d", offsets[n], e)
	}

	adj := make([]int32, e)
	maxDeg := 0
	for v := 0; v < n; v++ {
		last := int32(-1)
		lo, hi := offsets[v], offsets[v+1]
		if d := int(hi - lo); d > maxDeg {
			maxDeg = d
		}
		for i := lo; i < hi; i++ {
			u := int32(binary.LittleEndian.Uint32(data[pos : pos+4]))
			pos += 4
			switch {
			case u < 0 || int(u) >= n:
				return nil, fmt.Errorf("graph: node %d: neighbor %d out of range [0,%d)", v, u, n)
			case int(u) == v:
				return nil, fmt.Errorf("graph: self-loop at node %d", v)
			case u <= last:
				return nil, fmt.Errorf("graph: node %d: neighbor list not strictly ascending (%d after %d)", v, u, last)
			}
			adj[i] = u
			last = u
		}
	}

	// Symmetry: every directed slot (v → u) must have a mirror slot
	// (u → v). Lists are sorted, so each check is a binary search.
	for v := 0; v < n; v++ {
		for _, u := range adj[offsets[v]:offsets[v+1]] {
			nb := adj[offsets[u]:offsets[u+1]]
			lo, hi := 0, len(nb)
			for lo < hi {
				mid := (lo + hi) / 2
				if nb[mid] < int32(v) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == len(nb) || nb[lo] != int32(v) {
				return nil, fmt.Errorf("graph: edge (%d,%d) has no mirror — adjacency not symmetric", v, u)
			}
		}
	}

	weights := make([]int64, n)
	if form == 1 {
		for v := 0; v < n; v++ {
			wt := int64(binary.LittleEndian.Uint64(data[pos : pos+8]))
			pos += 8
			if wt < 1 || wt > MaxWeight {
				return nil, fmt.Errorf("graph: weight %d for node %d outside [1,%d]", wt, v, MaxWeight)
			}
			weights[v] = wt
		}
	} else {
		for v := range weights {
			weights[v] = 1
		}
	}

	// Reverse-edge index, recomputed exactly as Build does: a stable
	// counting pass by target enumerates the slots sorted by
	// (target, source), and the k-th slot in that order is the mirror of
	// the slot it was read from. Symmetry was verified above, so the
	// cursors cannot escape their node's range.
	rev := make([]int32, e)
	cursor := make([]int32, n+1)
	copy(cursor, offsets)
	for i := range adj {
		k := cursor[adj[i]]
		cursor[adj[i]] = k + 1
		rev[i] = k - offsets[adj[i]]
	}

	return &Graph{offsets: offsets, adj: adj, rev: rev, weights: weights, maxDeg: maxDeg}, nil
}
