package graph

// Structural metrics used by the benchmark harness to characterize
// workloads (and by tests to sanity-check generators).

// BFS returns the hop distances from src (-1 for unreachable nodes).
func (g *Graph) BFS(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.neighborSlice(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src, i.e. the
// eccentricity of src within its connected component.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFS(src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// DiameterLowerBound estimates the diameter with the classic double-sweep:
// BFS from src, then BFS again from the farthest node found. The result is
// a lower bound on the true diameter (exact on trees) of src's component.
func (g *Graph) DiameterLowerBound(src int) int {
	if g.N() == 0 {
		return 0
	}
	dist := g.BFS(src)
	far, fd := src, 0
	for v, d := range dist {
		if d > fd {
			far, fd = v, d
		}
	}
	return g.Eccentricity(far)
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}
