// Package graph provides the immutable node-weighted graph substrate used by
// every other package in arbods.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected, with
// positive integer node weights as in the paper (Section 2 assumes integer
// weights bounded by a polynomial in n). The representation is a compact
// CSR-style adjacency structure: neighbor lists are sorted, which gives
// deterministic iteration order — important because the CONGEST simulator
// must be reproducible across runs and across the sequential/parallel
// engines.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// MaxWeight bounds node weights. The paper assumes weights are positive
// integers bounded by n^c; 2^40 comfortably covers every workload in the
// benchmark harness while keeping packing-value arithmetic well inside
// float64's exact-integer range.
const MaxWeight = int64(1) << 40

// Graph is an immutable simple undirected graph with positive integer node
// weights. Construct one with a Builder. The zero value is an empty graph
// with no nodes.
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // concatenated sorted neighbor lists
	rev     []int32 // parallel to adj: rev[e] is the position of v in adj[e]'s list, where v owns slot e
	weights []int64 // len n; all entries in [1, MaxWeight]
	maxDeg  int
}

// Builder accumulates nodes and edges and produces an immutable Graph.
type Builder struct {
	n       int
	edges   [][2]int32
	weights []int64
	err     error
}

// NewBuilder returns a builder for a graph on n nodes (IDs 0..n-1), all with
// weight 1 until SetWeight is called.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n}
	if n < 0 {
		b.err = errors.New("graph: negative node count")
		return b
	}
	b.weights = make([]int64, n)
	for i := range b.weights {
		b.weights[i] = 1
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected;
// duplicate edges are deduplicated at Build time. The first error sticks and
// is reported by Build.
func (b *Builder) AddEdge(u, v int) *Builder {
	if b.err != nil {
		return b
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		return b
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at node %d", u)
		return b
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return b
}

// SetWeight assigns a weight to node v. Weights must be in [1, MaxWeight].
func (b *Builder) SetWeight(v int, w int64) *Builder {
	if b.err != nil {
		return b
	}
	if v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: SetWeight node %d out of range [0,%d)", v, b.n)
		return b
	}
	if w < 1 || w > MaxWeight {
		b.err = fmt.Errorf("graph: weight %d for node %d outside [1,%d]", w, v, MaxWeight)
		return b
	}
	b.weights[v] = w
	return b
}

// Build finalizes the graph. It returns the first error recorded by AddEdge
// or SetWeight, if any.
//
// Construction is comparison-free: the 2m directed edge slots are ordered
// by (source, target) with two stable counting passes (an LSD radix sort
// over node IDs), so every neighbor list comes out sorted without a
// per-node re-sort, duplicates land adjacent for O(m) deduplication, and
// the whole build runs in O(n + m) time.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.n
	m2 := 2 * len(b.edges)

	// Pass 1: stable counting sort of the directed slots by target.
	cnt := make([]int32, n+1)
	for _, e := range b.edges {
		cnt[e[0]]++
		cnt[e[1]]++
	}
	cursor := make([]int32, n+1)
	var sum int32
	for v := 0; v < n; v++ {
		cursor[v] = sum
		sum += cnt[v]
	}
	src := make([]int32, m2)
	dst := make([]int32, m2)
	for _, e := range b.edges {
		c := cursor[e[1]]
		src[c], dst[c] = e[0], e[1]
		cursor[e[1]] = c + 1
		c = cursor[e[0]]
		src[c], dst[c] = e[1], e[0]
		cursor[e[0]] = c + 1
	}

	// Pass 2: stable counting sort by source. Stability preserves the
	// by-target order within each source, so adjDup is sorted by
	// (source, target) and each node's targets are ascending.
	sum = 0
	for v := 0; v < n; v++ {
		cursor[v] = sum
		sum += cnt[v] // undirected: out-slot count == in-slot count per node
	}
	adjDup := make([]int32, m2)
	starts := make([]int32, n+1)
	copy(starts, cursor[:n])
	starts[n] = sum
	for i := 0; i < m2; i++ {
		s := src[i]
		adjDup[cursor[s]] = dst[i]
		cursor[s]++
	}

	// Deduplicate adjacent repeats (parallel edges) per source and build
	// the final CSR, compacting adjDup in place (the write index never
	// overtakes the read index).
	offsets := make([]int32, n+1)
	w := int32(0)
	maxDeg := 0
	for v := 0; v < n; v++ {
		offsets[v] = w
		prev := int32(-1)
		for i := starts[v]; i < starts[v+1]; i++ {
			t := adjDup[i]
			if t == prev {
				continue
			}
			prev = t
			adjDup[w] = t
			w++
		}
		if d := int(w - offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	offsets[n] = w
	adj := adjDup[:w:w]
	if int(w) < m2 {
		// Duplicates were dropped: re-allocate at exact size so the graph
		// does not pin the oversized scratch array for its lifetime.
		adj = append([]int32(nil), adjDup[:w]...)
	}

	// Reverse-edge index: slot e holds the directed edge (v → adj[e]) with
	// slots sorted by (source, target). A single stable counting pass by
	// target enumerates the same slots sorted by (target, source) — and the
	// k-th slot in that order is exactly the mirror slot of the slot it was
	// read from, so rev falls out in O(m) with no searching.
	rev := make([]int32, len(adj))
	copy(cursor[:n+1], offsets)
	for e := range adj {
		k := cursor[adj[e]]
		cursor[adj[e]] = k + 1
		rev[e] = k - offsets[adj[e]] // store position within the target's list
	}

	g := &Graph{offsets: offsets, adj: adj, rev: rev, weights: b.weights, maxDeg: maxDeg}
	return g, nil
}

// MustBuild is Build that panics on error; intended for tests and examples
// with hard-coded inputs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.weights) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// DegreeSum returns Σ_v deg(v) = 2·M(), the number of directed edge slots.
// Run-scoped allocators (the CONGEST simulator's outbox slab and arena) use
// it to size their backing arrays in one allocation.
func (g *Graph) DegreeSum() int { return len(g.adj) }

// MaxDegree returns Δ, the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// AdjOffset returns the CSR offset of node v's adjacency — equivalently,
// Σ_{u<v} deg(u), the cumulative degree of the nodes before v. Valid for
// v in [0, N()]; AdjOffset(N()) == DegreeSum(). The offsets are a
// monotone prefix-degree array, so work partitioners can binary-search
// them to cut the node range into pieces of near-equal total degree
// instead of equal node count.
func (g *Graph) AdjOffset(v int) int { return int(g.offsets[v]) }

// AvgDegree returns 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(g.N())
}

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

func (g *Graph) neighborSlice(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Neighbors returns the sorted neighbor list of v as a read-only view into
// the graph's internal storage. Callers must not modify the returned slice;
// use AppendNeighbors to obtain an owned copy.
func (g *Graph) Neighbors(v int) []int32 {
	return g.neighborSlice(v)
}

// ReverseIndex returns, for each position i in v's neighbor list, the
// position of v in Neighbors(v)[i]'s own sorted neighbor list. It is the
// precomputed mirror of the CSR: for the directed edge (v → u) it answers
// "where does u keep v" in O(1), replacing the per-message binary search a
// receiver would otherwise pay. Read-only view, aligned with Neighbors(v).
func (g *Graph) ReverseIndex(v int) []int32 {
	return g.rev[g.offsets[v]:g.offsets[v+1]]
}

// AppendNeighbors appends the neighbors of v to dst and returns the extended
// slice, giving callers an owned copy without forcing an allocation per call.
func (g *Graph) AppendNeighbors(dst []int, v int) []int {
	for _, u := range g.neighborSlice(v) {
		dst = append(dst, int(u))
	}
	return dst
}

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)) time.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
		return false
	}
	nb := g.neighborSlice(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Weight returns the weight of node v.
func (g *Graph) Weight(v int) int64 { return g.weights[v] }

// Weights returns a copy of the weight vector.
func (g *Graph) Weights() []int64 {
	w := make([]int64, len(g.weights))
	copy(w, g.weights)
	return w
}

// TotalWeight returns the sum of all node weights.
func (g *Graph) TotalWeight() int64 {
	var total int64
	for _, w := range g.weights {
		total += w
	}
	return total
}

// SetWeights returns a copy of the graph with the given weight vector. It
// returns an error if the vector length or any weight is invalid. The
// adjacency structure is shared (it is immutable), so this is cheap.
func (g *Graph) SetWeights(w []int64) (*Graph, error) {
	if len(w) != g.N() {
		return nil, fmt.Errorf("graph: SetWeights got %d weights for %d nodes", len(w), g.N())
	}
	for v, wv := range w {
		if wv < 1 || wv > MaxWeight {
			return nil, fmt.Errorf("graph: weight %d for node %d outside [1,%d]", wv, v, MaxWeight)
		}
	}
	clone := *g
	clone.weights = make([]int64, len(w))
	copy(clone.weights, w)
	return &clone, nil
}

// ClosedNeighborhoodMinWeight returns τ_v = min_{u ∈ N+(v)} w_u together
// with the smallest-ID node attaining it. This is the quantity the weighted
// algorithms (Section 4) use to initialize packing values and to complete
// partial dominating sets.
func (g *Graph) ClosedNeighborhoodMinWeight(v int) (tau int64, argmin int) {
	tau, argmin = g.weights[v], v
	for _, u := range g.neighborSlice(v) {
		if w := g.weights[u]; w < tau || (w == tau && int(u) < argmin) {
			tau, argmin = w, int(u)
		}
	}
	return tau, argmin
}

// Unweighted reports whether every node has weight exactly 1.
func (g *Graph) Unweighted() bool {
	for _, w := range g.weights {
		if w != 1 {
			return false
		}
	}
	return true
}

// Edges appends all undirected edges (u < v) to dst and returns it.
func (g *Graph) Edges(dst [][2]int) [][2]int {
	for v := 0; v < g.N(); v++ {
		for _, u := range g.neighborSlice(v) {
			if int(u) > v {
				dst = append(dst, [2]int{v, int(u)})
			}
		}
	}
	return dst
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted, ordered by smallest contained node.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		stack = append(stack[:0], s)
		members := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.neighborSlice(v) {
				if comp[u] < 0 {
					comp[u] = id
					stack = append(stack, int(u))
					members = append(members, int(u))
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given nodes together
// with the mapping from new IDs to original IDs. Node weights are preserved.
// Duplicate entries in nodes are an error.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: subgraph node %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate subgraph node %d", v)
		}
		remap[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(nodes))
	for i, v := range orig {
		b.SetWeight(i, g.Weight(v))
		for _, u := range g.neighborSlice(v) {
			if j, ok := remap[int(u)]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// IsForest reports whether the graph is acyclic.
func (g *Graph) IsForest() bool {
	// A graph is a forest iff every component has exactly |nodes|-1 edges.
	n := g.N()
	seen := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		stack = append(stack[:0], s)
		nodes, degSum := 0, 0
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes++
			degSum += g.Degree(v)
			for _, u := range g.neighborSlice(v) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, int(u))
				}
			}
		}
		if degSum/2 != nodes-1 {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary, e.g. "graph(n=100 m=250 Δ=7)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d Δ=%d)", g.N(), g.M(), g.MaxDegree())
}
