package arbor_test

import (
	"testing"
	"testing/quick"

	"arbods/internal/arbor"
	"arbods/internal/gen"
	"arbods/internal/graph"
)

func TestDegeneracyKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(5).MustBuild(), 0},
		{"path", gen.Path(10).G, 1},
		{"star", gen.Star(12).G, 1},
		{"cycle", gen.Cycle(9).G, 2},
		{"tree", gen.RandomTree(50, 1).G, 1},
		{"grid", gen.Grid(6, 6).G, 2},
		{"complete", gen.Complete(7).G, 6},
		{"hypercube4", gen.Hypercube(4).G, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			order, d := arbor.Degeneracy(tt.g)
			if d != tt.want {
				t.Fatalf("degeneracy = %d, want %d", d, tt.want)
			}
			if len(order) != tt.g.N() {
				t.Fatalf("order has %d nodes, want %d", len(order), tt.g.N())
			}
			seen := make(map[int]bool)
			for _, v := range order {
				if seen[v] {
					t.Fatalf("node %d appears twice in order", v)
				}
				seen[v] = true
			}
		})
	}
}

// TestDegeneracyOrientationProperty: for random forest unions, the
// degeneracy orientation is valid and its out-degree is at most the
// degeneracy, which is at most 2α−1.
func TestDegeneracyOrientationProperty(t *testing.T) {
	prop := func(seed uint64, kRaw, nRaw uint8) bool {
		k := int(kRaw%4) + 1
		n := int(nRaw%60) + 5
		g := gen.ForestUnion(n, k, seed).G
		order, d := arbor.Degeneracy(g)
		if d > 2*k-1 {
			return false // degeneracy ≤ 2α−1 ≤ 2k−1
		}
		o := arbor.OrientByOrder(g, order)
		if !o.Valid(g) {
			return false
		}
		return o.MaxOutDegree() <= d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBounds(t *testing.T) {
	tests := []struct {
		name  string
		g     *graph.Graph
		loMin int // lower bound must be ≥ this
		hiMax int // upper bound must be ≤ this
	}{
		{"tree", gen.RandomTree(60, 2).G, 1, 1},
		{"cycle", gen.Cycle(12).G, 2, 2},
		{"complete8", gen.Complete(8).G, 4, 7},
		{"grid", gen.Grid(7, 7).G, 2, 3},
		{"empty", graph.NewBuilder(3).MustBuild(), 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lo, hi := arbor.Bounds(tt.g)
			if lo > hi {
				t.Fatalf("lo=%d > hi=%d", lo, hi)
			}
			if lo < tt.loMin {
				t.Fatalf("lo=%d, want ≥ %d", lo, tt.loMin)
			}
			if hi > tt.hiMax {
				t.Fatalf("hi=%d, want ≤ %d", hi, tt.hiMax)
			}
		})
	}
}

// TestBoundsBracketConstruction: generator-guaranteed arboricity bounds must
// bracket the computed bounds: lo ≤ construction bound, and the degeneracy
// bound must not be absurdly loose (≤ 2·bound − 1).
func TestBoundsBracketConstruction(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		g := gen.ForestUnion(40, k, seed)
		lo, hi := arbor.Bounds(g.G)
		return lo <= k && hi <= 2*k-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoforests(t *testing.T) {
	g := gen.ForestUnion(50, 3, 9).G
	o := arbor.GreedyOrientation(g)
	parts := arbor.Pseudoforests(g, o)
	if len(parts) != o.MaxOutDegree() {
		t.Fatalf("%d parts, want %d", len(parts), o.MaxOutDegree())
	}
	total := 0
	for i, part := range parts {
		if !arbor.IsPseudoforest(g.N(), part) {
			t.Fatalf("part %d is not a pseudoforest", i)
		}
		total += len(part)
	}
	if total != g.M() {
		t.Fatalf("parts cover %d edges, graph has %d", total, g.M())
	}
}

func TestIsPseudoforest(t *testing.T) {
	// A triangle is a pseudoforest (one cycle).
	tri := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	if !arbor.IsPseudoforest(3, tri) {
		t.Fatal("triangle should be a pseudoforest")
	}
	// Two triangles sharing an edge: 5 edges on 4 nodes — not a pseudoforest.
	twoTri := [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}}
	if arbor.IsPseudoforest(4, twoTri) {
		t.Fatal("K4 minus an edge is not a pseudoforest")
	}
	// Out-of-range edges are rejected.
	if arbor.IsPseudoforest(2, [][2]int{{0, 5}}) {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestInDegrees(t *testing.T) {
	g := gen.Path(4).G
	o := arbor.GreedyOrientation(g)
	in := o.InDegrees()
	sumIn, sumOut := 0, 0
	for v := 0; v < g.N(); v++ {
		sumIn += in[v]
		sumOut += o.OutDegree(v)
	}
	if sumIn != g.M() || sumOut != g.M() {
		t.Fatalf("in/out degree sums %d/%d, want %d", sumIn, sumOut, g.M())
	}
}
