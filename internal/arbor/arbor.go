// Package arbor implements the centralized arboricity machinery the paper
// leans on: degeneracy (k-core) peeling, low out-degree orientations
// (Observation 3.5: a graph with arboricity α can be oriented with
// out-degree ≤ α), Nash–Williams density bounds, and pseudoforest
// decompositions (footnote 2: the algorithms work for any graph orientable
// with out-degree ≤ α, i.e. graphs decomposable into α pseudoforests).
//
// The paper uses the orientation only in the analysis; this package exists
// so that the test suite and the benchmark harness can certify arboricity
// bounds of generated workloads and verify the analysis-side invariants
// (e.g. "a node is an in-neighbor of at most α nodes").
package arbor

import (
	"arbods/internal/graph"
)

// Degeneracy computes the degeneracy d of g and a peeling order: order[i] is
// the i-th node removed by repeatedly deleting a minimum-degree node. Every
// node has at most d neighbors that appear later in the order.
//
// Degeneracy brackets arboricity: α ≤ d ≤ 2α − 1, so d is the standard
// certified upper bound for α when the generator does not already know one.
// Runs in O(n + m) time via bucket peeling.
func Degeneracy(g *graph.Graph) (order []int, degeneracy int) {
	n := g.N()
	order = make([]int, 0, n)
	if n == 0 {
		return order, 0
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue with lazy deletion: buckets[d] holds candidate nodes
	// whose degree was d when appended; entries are validated at pop time
	// (degree mismatch or already-removed means stale). Each degree
	// decrement appends one entry, so total work is O(n + m).
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	cur := 0
	for len(order) < n {
		for len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue
		}
		removed[v] = true
		if deg[v] > degeneracy {
			degeneracy = deg[v]
		}
		order = append(order, v)
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if removed[u] {
				continue
			}
			deg[u]--
			buckets[deg[u]] = append(buckets[deg[u]], u)
			if deg[u] < cur {
				cur = deg[u]
			}
		}
	}
	return order, degeneracy
}

// Orientation is an assignment of a direction to every edge of a graph.
type Orientation struct {
	out [][]int32
}

// OrientByOrder orients every edge of g from the endpoint that appears
// earlier in order to the one that appears later. With a degeneracy peeling
// order this yields an acyclic orientation with out-degree ≤ degeneracy.
func OrientByOrder(g *graph.Graph, order []int) *Orientation {
	n := g.N()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	out := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if pos[v] < pos[int(u)] {
				out[v] = append(out[v], u)
			}
		}
	}
	return &Orientation{out: out}
}

// GreedyOrientation returns the degeneracy-order orientation of g, which has
// out-degree ≤ degeneracy(g) ≤ 2α(g) − 1.
func GreedyOrientation(g *graph.Graph) *Orientation {
	order, _ := Degeneracy(g)
	return OrientByOrder(g, order)
}

// Out returns the out-neighbors of v. The slice is a read-only view.
func (o *Orientation) Out(v int) []int32 { return o.out[v] }

// OutDegree returns the out-degree of v.
func (o *Orientation) OutDegree(v int) int { return len(o.out[v]) }

// MaxOutDegree returns the maximum out-degree over all nodes.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for _, nb := range o.out {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// InDegrees returns the in-degree of every node.
func (o *Orientation) InDegrees() []int {
	in := make([]int, len(o.out))
	for _, nb := range o.out {
		for _, u := range nb {
			in[u]++
		}
	}
	return in
}

// Valid reports whether o orients every edge of g exactly once and nothing
// else (i.e. it is a true orientation of g).
func (o *Orientation) Valid(g *graph.Graph) bool {
	if len(o.out) != g.N() {
		return false
	}
	directed := 0
	for v := range o.out {
		for _, u := range o.out[v] {
			if !g.HasEdge(v, int(u)) {
				return false
			}
			directed++
		}
	}
	if directed != g.M() {
		return false
	}
	// Every edge directed exactly once: counts match and each directed edge
	// is a real edge, so it remains to rule out {u,v} oriented both ways.
	seen := make(map[[2]int32]bool, directed)
	for v := range o.out {
		for _, u := range o.out[v] {
			a, b := int32(v), u
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
	}
	return true
}

// Bounds returns certified lower and upper bounds for the arboricity of g:
//
//	lo = max(⌈density of the densest peeling suffix⌉, 1 if m ≥ 1)
//	hi = degeneracy(g)  (with hi ≥ lo enforced)
//
// The lower bound instantiates Nash–Williams: any subgraph S with n_S ≥ 2
// forces α ≥ ⌈m_S/(n_S−1)⌉; the suffixes of the degeneracy peeling order
// include the densest k-cores, which is where that bound is strongest.
func Bounds(g *graph.Graph) (lo, hi int) {
	order, degen := Degeneracy(g)
	hi = degen
	if g.M() == 0 {
		return 0, 0
	}
	lo = 1
	// Walk the peeling order backwards, maintaining the induced suffix
	// subgraph's node and edge counts.
	n := g.N()
	inSuffix := make([]bool, n)
	nodes, edges := 0, 0
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		inSuffix[v] = true
		nodes++
		for _, u := range g.Neighbors(v) {
			if inSuffix[u] {
				edges++
			}
		}
		if nodes >= 2 {
			d := (edges + nodes - 2) / (nodes - 1) // ⌈edges/(nodes-1)⌉
			if d > lo {
				lo = d
			}
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Pseudoforests partitions the edges of g into MaxOutDegree(o) pseudoforests
// using the orientation o: the i-th pseudoforest takes the i-th out-edge of
// every node. Each part has maximum out-degree 1 under o, hence every
// connected component contains at most one cycle (footnote 2 of the paper).
func Pseudoforests(g *graph.Graph, o *Orientation) [][][2]int {
	k := o.MaxOutDegree()
	parts := make([][][2]int, k)
	for v := range o.out {
		for i, u := range o.out[v] {
			parts[i] = append(parts[i], [2]int{v, int(u)})
		}
	}
	return parts
}

// IsPseudoforest reports whether the given edge set on n nodes is a
// pseudoforest: every connected component has at most as many edges as
// nodes (≤ one cycle per component).
func IsPseudoforest(n int, edges [][2]int) bool {
	parent := make([]int, n)
	compEdges := make([]int, n)
	compNodes := make([]int, n)
	for i := range parent {
		parent[i] = i
		compNodes[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n {
			return false
		}
		a, b := find(e[0]), find(e[1])
		if a == b {
			compEdges[a]++
		} else {
			parent[a] = b
			compEdges[b] += compEdges[a] + 1
			compNodes[b] += compNodes[a]
		}
	}
	for v := 0; v < n; v++ {
		if find(v) == v && compEdges[v] > compNodes[v] {
			return false
		}
	}
	return true
}
