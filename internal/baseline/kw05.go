package baseline

import (
	"fmt"
	"math"

	"arbods/internal/congest"
	"arbods/internal/graph"
	"arbods/internal/mds"
)

// kwProc implements the Kuhn–Wattenhofer '05-style O(k²)-round fractional
// dominating set algorithm with randomized rounding — the general-graph
// algorithm that Theorem 1.3 improves by removing the log Δ factor its
// rounding pays:
//
//	for l = k−1 … 0:            (degree-threshold sweep)
//	  for m = k−1 … 0:          (value sweep)
//	    every node whose span (fractionally uncovered closed neighbors)
//	    is ≥ (Δ+1)^{l/k} raises x_v to (Δ+1)^{-m/k}
//
// The fractional solution is feasible by construction (the final pass has
// threshold 1 and value 1). Rounding: v joins with probability
// min(1, x_v·ln(Δ+1)); nodes left uncovered join themselves — this is
// where the extra log Δ enters the KW05 bound.
//
// Each (l, m) iteration costs two rounds (value announcements, coverage
// announcements), for 2k² + O(1) rounds total. Unweighted graphs only.
type kwProc struct {
	ni congest.NodeInfo
	k  int

	x        float64
	mIdx     int // smallest m announced so far (-1 = none)
	nbrX     []float64
	nbrFCov  []bool
	fCovered bool
	fCovSent bool

	inDS      bool
	dominated bool

	l, m  int
	stage int // 0 = decide+announce x, 1 = coverage update; 2..4 rounding
}

var _ congest.Proc[mds.Output] = (*kwProc)(nil)

func (p *kwProc) value(m int) float64 {
	return math.Pow(float64(p.ni.MaxDegree+1), -float64(m)/float64(p.k))
}

func (p *kwProc) threshold(l int) float64 {
	return math.Pow(float64(p.ni.MaxDegree+1), float64(l)/float64(p.k))
}

// span counts fractionally uncovered nodes in the closed neighborhood.
func (p *kwProc) span() int {
	s := 0
	if !p.fCovered {
		s = 1
	}
	for _, c := range p.nbrFCov {
		if !c {
			s++
		}
	}
	return s
}

// fracSum returns Σ_{u∈N+(v)} x_u.
func (p *kwProc) fracSum() float64 {
	sum := p.x
	for _, xv := range p.nbrX {
		sum += xv
	}
	return sum
}

func (p *kwProc) absorb(in []congest.Incoming) {
	for _, msg := range in {
		i := msg.Idx
		switch msg.P.Tag {
		case congest.TagFracX:
			if v := p.value(int(fracXFields(msg.P))); v > p.nbrX[i] {
				p.nbrX[i] = v
			}
		case congest.TagFracCovered:
			p.nbrFCov[i] = true
		case congest.TagJoin:
			p.nbrFCov[i] = true
			p.dominated = true
		}
	}
}

func (p *kwProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	p.absorb(in)
	switch p.stage {
	case 0: // decide whether to raise x, announce the raise
		if float64(p.span()) >= p.threshold(p.l) {
			if v := p.value(p.m); v > p.x {
				p.x = v
				p.mIdx = p.m
				s.Broadcast(packFracX(int32(p.m)))
			}
		}
		p.stage = 1
		return false

	case 1: // coverage update
		if !p.fCovered && p.fracSum() >= 1-1e-12 {
			p.fCovered = true
		}
		if p.fCovered && !p.fCovSent {
			p.fCovSent = true
			s.Broadcast(packFracCovered())
		}
		// Advance the (l, m) sweep.
		p.m--
		if p.m < 0 {
			p.m = p.k - 1
			p.l--
		}
		if p.l < 0 {
			p.stage = 2
		} else {
			p.stage = 0
		}
		return false

	case 2: // randomized rounding
		prob := math.Min(1, p.x*math.Log(float64(p.ni.MaxDegree+1)))
		if p.ni.Rand.Bernoulli(prob) {
			p.inDS = true
			p.dominated = true
			s.Broadcast(packJoin())
		}
		p.stage = 3
		return false

	default: // fix-up: uncovered nodes join themselves
		if !p.dominated {
			p.inDS = true
			p.dominated = true
		}
		return true
	}
}

func (p *kwProc) Output() mds.Output {
	return mds.Output{InDS: p.inDS, InExtension: p.inDS, Dominated: p.dominated, Packing: 0}
}

// KW05 runs the Kuhn–Wattenhofer-style O(k²)-round algorithm with expected
// approximation O(kΔ^{2/k}·log Δ) — the baseline Theorem 1.3 improves.
// It also returns the fractional solution's value Σx (the LP-feasible
// intermediate). Unweighted graphs only.
func KW05(g *graph.Graph, k int, opts ...congest.Option) (*mds.Report, float64, error) {
	if !g.Unweighted() {
		return nil, 0, fmt.Errorf("baseline: KW05 requires unit weights")
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("baseline: k must be ≥ 1, got %d", k)
	}
	slab := make([]kwProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[mds.Output] {
		p := &slab[ni.ID]
		*p = kwProc{
			ni:      ni,
			k:       k,
			nbrX:    ni.Arena.Float64s(ni.Degree()),
			nbrFCov: ni.Arena.Bools(ni.Degree()),
			mIdx:    -1,
			l:       k - 1,
			m:       k - 1,
		}
		return p
	}
	all := append(append([]congest.Option{}, opts...), congest.WithKnownMaxDegree())
	res, err := congest.Run(g, factory, all...)
	if err != nil {
		return nil, 0, err
	}
	// The run has completed, so reading the procs' fractional values is
	// race-free (the factory runs before round 0; the engine joins all its
	// workers before returning).
	var fracTotal float64
	for i := range slab {
		fracTotal += slab[i].x
	}
	rep := mds.NewReport("kw05", res, g)
	return rep, fracTotal, nil
}
