package baseline

import (
	"errors"
	"math"

	"arbods/internal/graph"
)

const infWeight = int64(math.MaxInt64 / 4)

// errNotForest is returned by ExactForest on graphs with cycles.
var errNotForest = errors.New("baseline: ExactForest requires a forest")

// ExactForest computes a minimum weight dominating set of a forest in
// linear time with the classic three-state tree DP:
//
//	dp[v][inSet]    — v is in the set (children may be in any state),
//	dp[v][covered]  — v not in the set, dominated by a child,
//	dp[v][exposed]  — v not in the set, not yet dominated (its parent must
//	                  take it).
//
// Unlike the branch-and-bound solver, it has no size limit, which lets the
// harness ground-truth tree experiments (Observation A.1) at any scale.
func ExactForest(g *graph.Graph) (GreedyResult, error) {
	if !g.IsForest() {
		return GreedyResult{}, errNotForest
	}
	n := g.N()
	const (
		inSet   = 0
		covered = 1
		exposed = 2
	)
	dp := make([][3]int64, n)
	parent := make([]int, n)
	order := make([]int, 0, n) // post-order
	visited := make([]bool, n)

	var res GreedyResult
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		// Iterative DFS to build a post-order of this component.
		start := len(order)
		stack := []int{root}
		parent[root] = -1
		visited[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					parent[u] = v
					stack = append(stack, int(u))
				}
			}
		}
		comp := order[start:]
		// Children appear after parents in `comp` (pre-order); walk
		// backwards for the bottom-up DP.
		for i := len(comp) - 1; i >= 0; i-- {
			v := comp[i]
			dp[v][inSet] = g.Weight(v)
			dp[v][covered] = 0
			dp[v][exposed] = 0
			bestSwitch := infWeight // cheapest upgrade of one child to inSet
			hasChild := false
			for _, u32 := range g.Neighbors(v) {
				u := int(u32)
				if u == parent[v] {
					continue
				}
				hasChild = true
				anyState := min3(dp[u][inSet], dp[u][covered], dp[u][exposed])
				resolved := min2(dp[u][inSet], dp[u][covered])
				dp[v][inSet] += anyState
				dp[v][exposed] += resolved
				if up := dp[u][inSet] - resolved; up < bestSwitch {
					bestSwitch = up
				}
			}
			if !hasChild {
				dp[v][covered] = infWeight
			} else {
				dp[v][covered] = dp[v][exposed] + bestSwitch
				if dp[v][covered] > infWeight {
					dp[v][covered] = infWeight
				}
			}
		}
		// Reconstruct: assign states top-down.
		state := make(map[int]int, len(comp))
		if dp[root][inSet] <= dp[root][covered] {
			state[root] = inSet
		} else {
			state[root] = covered
		}
		for _, v := range comp {
			sv := state[v]
			if sv == inSet {
				res.DS = append(res.DS, v)
				res.Weight += g.Weight(v)
			}
			// Decide children. A node in state `covered` needs at least one
			// child in the set; if no child's unforced argmin is already
			// inSet, force the cheapest upgrade (the bestSwitch of the DP).
			force := -1
			if sv == covered {
				needForce := true
				bestChild, bestUp := -1, infWeight
				for _, u32 := range g.Neighbors(v) {
					u := int(u32)
					if u == parent[v] {
						continue
					}
					if argmin2(dp[u][inSet], dp[u][covered]) == inSet {
						needForce = false
						break
					}
					if up := dp[u][inSet] - min2(dp[u][inSet], dp[u][covered]); up < bestUp {
						bestUp, bestChild = up, u
					}
				}
				if needForce {
					force = bestChild
				}
			}
			for _, u32 := range g.Neighbors(v) {
				u := int(u32)
				if u == parent[v] {
					continue
				}
				var su int
				switch {
				case sv == inSet:
					su = argmin3(dp[u][inSet], dp[u][covered], dp[u][exposed])
				case u == force:
					su = inSet
				default:
					su = argmin2(dp[u][inSet], dp[u][covered])
				}
				state[u] = su
			}
		}
	}
	sortInts(res.DS)
	return res, nil
}

func min2(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func min3(a, b, c int64) int64 { return min2(min2(a, b), c) }

func argmin2(a, b int64) int {
	if a <= b {
		return 0
	}
	return 1
}

func argmin3(a, b, c int64) int {
	if a <= b && a <= c {
		return 0
	}
	if b <= c {
		return 1
	}
	return 2
}
