package baseline

import (
	"fmt"
	"sort"

	"arbods/internal/congest"
	"arbods/internal/graph"
	"arbods/internal/mds"
)

// lrgProc implements the local randomized greedy (LRG) scheme of
// Jia–Rajaraman–Suel (DISC'01), the classic randomized distributed
// dominating set baseline with an O(log Δ) expected approximation:
//
//	repeat until covered:
//	  1. every node computes its span d(v) and the power-of-two rounding d̂;
//	  2. v is a candidate if d̂(v) is maximum within distance 2;
//	  3. every uncovered node u reports its support s(u) = #candidates in N+(u);
//	  4. every candidate joins with probability 1/median{s(u) : u uncovered ∈ N+(v)}.
//
// Each iteration costs 5 rounds (status, max-relay, candidacy, support,
// join); coverage updates ride on the next status round.
type lrgProc struct {
	ni congest.NodeInfo

	inDS    bool
	covered bool
	nbrCov  []bool

	span      int
	dhat      int32
	m1        int32 // max d̂ within distance 1
	candidate bool
	selfSup   int32
	supports  []int32

	statusSpan []int32 // this-iteration neighbor spans (status round)

	st int // 0=status 1=max-relay 2=candidacy 3=support 4=join
}

var _ congest.Proc[mds.Output] = (*lrgProc)(nil)

func (p *lrgProc) computeSpan() int {
	s := 0
	if !p.covered {
		s = 1
	}
	for _, c := range p.nbrCov {
		if !c {
			s++
		}
	}
	return s
}

func roundPow2(d int) int32 {
	if d <= 0 {
		return 0
	}
	r := int32(1)
	for int(r)*2 <= d {
		r *= 2
	}
	return r
}

func (p *lrgProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	switch p.st {
	case 0: // status: absorb joins from the previous iteration, report span
		for _, m := range in {
			if m.P.Tag == congest.TagJoin {
				p.nbrCov[m.Idx] = true
				p.covered = true
			}
		}
		p.span = p.computeSpan()
		p.dhat = roundPow2(p.span)
		s.Broadcast(packSpan(p.covered, int32(p.span)))
		p.st = 1
		return false

	case 1: // max-relay: exit check, then relay max d̂ within distance 1
		for i := range p.statusSpan {
			p.statusSpan[i] = 0 // silent neighbors have terminated with span 0
		}
		for _, m := range in {
			if m.P.Tag == congest.TagSpan {
				covered, span := spanFields(m.P)
				i := m.Idx
				p.statusSpan[i] = span
				if covered {
					p.nbrCov[i] = true
				}
			}
		}
		if p.span == 0 {
			allZero := true
			for _, sp := range p.statusSpan {
				if sp != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				// Nothing uncovered within distance 2: this node can never
				// be a useful candidate again.
				return true
			}
		}
		p.m1 = p.dhat
		for _, sp := range p.statusSpan {
			if d := roundPow2(int(sp)); d > p.m1 {
				p.m1 = d
			}
		}
		s.Broadcast(packMaxSpan(p.m1))
		p.st = 2
		return false

	case 2: // candidacy: d̂ maximal within distance 2
		m2 := p.m1
		for _, m := range in {
			if m.P.Tag == congest.TagMaxSpan {
				if d := maxSpanFields(m.P); d > m2 {
					m2 = d
				}
			}
		}
		p.candidate = p.span > 0 && p.dhat == m2
		if p.candidate {
			s.Broadcast(packCandidate())
		}
		p.st = 3
		return false

	case 3: // support: uncovered nodes count candidate dominators
		sup := int32(0)
		if p.candidate {
			sup = 1
		}
		for _, m := range in {
			if m.P.Tag == congest.TagCandidate {
				sup++
			}
		}
		p.selfSup = sup
		if !p.covered && sup > 0 {
			s.Broadcast(packSupport(sup))
		}
		p.st = 4
		return false

	default: // join: candidates sample with probability 1/median(support)
		p.supports = p.supports[:0]
		for _, m := range in {
			if m.P.Tag == congest.TagSupport {
				p.supports = append(p.supports, supportFields(m.P))
			}
		}
		if !p.covered && p.selfSup > 0 {
			p.supports = append(p.supports, p.selfSup)
		}
		if p.candidate && len(p.supports) > 0 {
			sort.Slice(p.supports, func(i, j int) bool { return p.supports[i] < p.supports[j] })
			med := p.supports[len(p.supports)/2]
			if med < 1 {
				med = 1
			}
			if p.ni.Rand.Bernoulli(1 / float64(med)) {
				p.inDS = true
				p.covered = true
				s.Broadcast(packJoin())
			}
		}
		p.st = 0
		return false
	}
}

func (p *lrgProc) Output() mds.Output {
	return mds.Output{InDS: p.inDS, InExtension: p.inDS, Dominated: p.covered}
}

// LRGRandomized runs the LRG baseline. Unweighted graphs only.
func LRGRandomized(g *graph.Graph, opts ...congest.Option) (*mds.Report, error) {
	if !g.Unweighted() {
		return nil, fmt.Errorf("baseline: LRGRandomized requires unit weights")
	}
	slab := make([]lrgProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[mds.Output] {
		p := &slab[ni.ID]
		*p = lrgProc{
			ni:         ni,
			nbrCov:     ni.Arena.Bools(ni.Degree()),
			statusSpan: ni.Arena.Int32s(ni.Degree()),
			// One support per uncovered closed neighbor can arrive per
			// iteration; carving deg+1 slots keeps the per-round appends
			// inside the arena (truncate-and-refill, no growth).
			supports: ni.Arena.Int32s(ni.Degree() + 1)[:0],
		}
		return p
	}
	res, err := congest.Run(g, factory, opts...)
	if err != nil {
		return nil, err
	}
	return mds.NewReport("lrg-randomized", res, g), nil
}
