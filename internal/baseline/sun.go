package baseline

import (
	"arbods/internal/graph"
)

// SunResult is the outcome of the Sun21-style solver: the set plus the
// integer dual packing it grew, which certifies Σx ≤ OPT (Lemma 2.1).
type SunResult struct {
	DS      []int
	Weight  int64
	Packing []int64
}

// Sun implements a Sun21-style centralized primal–dual algorithm with
// reverse delete, the comparison point the paper discusses at length in
// §1.3: grow a dual packing node by node until every node is dominated by
// some tight node, then walk the tight set in reverse insertion order and
// drop every node whose removal keeps the set dominating.
//
// The paper's point about this algorithm is structural: the reverse-delete
// pass is inherently sequential, which is why it does not translate to
// CONGEST — here it serves as the centralized quality yardstick. (Sun's
// analysis gives (α+1) for his specific processing order; this
// implementation follows the scheme, not his exact order, so tables report
// its measured quality and its own packing certificate rather than an
// asserted factor.)
//
// All arithmetic is exact: duals are integers because every raise is a
// minimum of integer slacks.
func Sun(g *graph.Graph) SunResult {
	n := g.N()
	res := SunResult{Packing: make([]int64, n)}
	bigX := make([]int64, n)     // X_u = Σ_{v∈N+(u)} x_v
	inS := make([]bool, n)       // tight nodes added to S
	dominated := make([]bool, n) // dominated by S
	order := make([]int, 0, n)   // insertion order into S

	// Phase 1: raise duals of undominated nodes in ID order.
	for v := 0; v < n; v++ {
		if dominated[v] {
			continue
		}
		// δ = min slack over the closed neighborhood.
		delta := g.Weight(v) - bigX[v]
		for _, u := range g.Neighbors(v) {
			if s := g.Weight(int(u)) - bigX[int(u)]; s < delta {
				delta = s
			}
		}
		if delta > 0 {
			res.Packing[v] += delta
			bigX[v] += delta
			for _, u := range g.Neighbors(v) {
				bigX[u] += delta
			}
		}
		// Every newly tight node in N+(v) joins S; at least one exists.
		join := func(u int) {
			if !inS[u] && bigX[u] == g.Weight(u) {
				inS[u] = true
				order = append(order, u)
				dominated[u] = true
				for _, w := range g.Neighbors(u) {
					dominated[w] = true
				}
			}
		}
		join(v)
		for _, u := range g.Neighbors(v) {
			join(int(u))
		}
	}

	// Phase 2: reverse delete. cover[w] counts dominators of w in S.
	cover := make([]int, n)
	for u := 0; u < n; u++ {
		if !inS[u] {
			continue
		}
		cover[u]++
		for _, w := range g.Neighbors(u) {
			cover[w]++
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		removable := cover[u] >= 2
		if removable {
			for _, w := range g.Neighbors(u) {
				if cover[w] < 2 {
					removable = false
					break
				}
			}
		}
		if !removable {
			continue
		}
		inS[u] = false
		cover[u]--
		for _, w := range g.Neighbors(u) {
			cover[w]--
		}
	}

	for u := 0; u < n; u++ {
		if inS[u] {
			res.DS = append(res.DS, u)
			res.Weight += g.Weight(u)
		}
	}
	return res
}
