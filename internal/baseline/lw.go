package baseline

import (
	"fmt"

	"arbods/internal/congest"
	"arbods/internal/graph"
	"arbods/internal/mds"
)

// lwProc implements the Lenzen–Wattenhofer-style deterministic bucket
// greedy for unweighted MDS: for thresholds θ = 2^i, i = ⌈log₂(Δ+1)⌉ down
// to 0, every node whose span (number of uncovered nodes in its closed
// neighborhood) is at least θ joins the set. After phase θ every node has
// span < θ, so after the θ = 1 phase all nodes are covered. O(log Δ)
// phases of two rounds each; on arboricity-α graphs the set is an
// O(α·log Δ)-approximation [LW10].
type lwProc struct {
	ni congest.NodeInfo

	inDS    bool
	covered bool
	nbrCov  []bool

	phase  int  // current exponent i, counts down
	inJoin bool // true in the join half-round, false in the update half
}

var _ congest.Proc[mds.Output] = (*lwProc)(nil)

func (p *lwProc) span() int {
	s := 0
	if !p.covered {
		s = 1
	}
	for _, c := range p.nbrCov {
		if !c {
			s++
		}
	}
	return s
}

func (p *lwProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if p.inJoin {
		// Join half: absorb coverage updates from the previous phase, then
		// join if span ≥ 2^phase.
		for _, m := range in {
			if m.P.Tag == congest.TagCovered {
				p.nbrCov[m.Idx] = true
			}
		}
		if !p.inDS && p.span() >= 1<<uint(p.phase) {
			p.inDS = true
			p.covered = true // a member dominates itself; joinMsg tells neighbors
			s.Broadcast(packJoin())
		}
		p.inJoin = false
		return false
	}
	// Update half: absorb joins, announce new coverage.
	newlyCovered := false
	for _, m := range in {
		if m.P.Tag == congest.TagJoin {
			p.nbrCov[m.Idx] = true
			if !p.covered {
				p.covered = true
				newlyCovered = true
			}
		}
	}
	if newlyCovered {
		s.Broadcast(packCovered())
	}
	p.inJoin = true
	p.phase--
	return p.phase < 0
}

func (p *lwProc) Output() mds.Output {
	return mds.Output{InDS: p.inDS, InExtension: p.inDS, Dominated: p.covered}
}

// LWDeterministic runs the bucket greedy. Unweighted graphs only.
func LWDeterministic(g *graph.Graph, opts ...congest.Option) (*mds.Report, error) {
	if !g.Unweighted() {
		return nil, fmt.Errorf("baseline: LWDeterministic requires unit weights")
	}
	phases := 0
	for 1<<uint(phases) < g.MaxDegree()+1 {
		phases++
	}
	slab := make([]lwProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[mds.Output] {
		p := &slab[ni.ID]
		*p = lwProc{
			ni:     ni,
			nbrCov: ni.Arena.Bools(ni.Degree()),
			phase:  phases,
			inJoin: true,
		}
		return p
	}
	all := append(append([]congest.Option{}, opts...), congest.WithKnownMaxDegree())
	res, err := congest.Run(g, factory, all...)
	if err != nil {
		return nil, err
	}
	return mds.NewReport("lw-bucket-deterministic", res, g), nil
}
