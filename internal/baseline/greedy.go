// Package baseline implements the comparison algorithms the paper's §1.1
// table measures against:
//
//   - the classic centralized greedy (ln(Δ+1)-approximation, [Joh74]),
//   - an exact branch-and-bound solver for small instances (ground truth),
//   - a Lenzen–Wattenhofer-style deterministic bucket greedy in O(log Δ)
//     CONGEST rounds (O(α·log Δ)-approximation on arboricity-α graphs,
//     [LW10]),
//   - a local-randomized-greedy (LRG) distributed algorithm in the style of
//     Jia–Rajaraman–Suel / Kuhn–Wattenhofer (logarithmic approximation in
//     expectation),
//   - the trivial take-all baseline.
//
// MSW21 and the full KMW06 LP machinery are represented analytically in the
// benchmark tables (see DESIGN.md §5.4).
package baseline

import (
	"container/heap"

	"arbods/internal/graph"
)

// GreedyResult is the outcome of a centralized baseline.
type GreedyResult struct {
	DS     []int
	Weight int64
}

// Greedy runs the classic centralized greedy for weighted dominating set:
// repeatedly pick the node minimizing weight per newly covered node. This is
// the ln(Δ+1)-approximation the paper cites from [Joh74]; it serves as the
// quality yardstick for the distributed algorithms.
func Greedy(g *graph.Graph) GreedyResult {
	n := g.N()
	covered := make([]bool, n)
	inDS := make([]bool, n)
	span := make([]int, n) // # uncovered nodes in N+(v)
	for v := 0; v < n; v++ {
		span[v] = g.Degree(v) + 1
	}
	// Lazy max-heap keyed by span/weight ratio; entries are re-validated
	// against the current span at pop time.
	h := &ratioHeap{}
	for v := 0; v < n; v++ {
		heap.Push(h, ratioEntry{v: v, span: span[v], w: g.Weight(v)})
	}
	var res GreedyResult
	remaining := n
	for remaining > 0 && h.Len() > 0 {
		e := heap.Pop(h).(ratioEntry)
		if inDS[e.v] || span[e.v] == 0 {
			continue
		}
		if e.span != span[e.v] {
			e.span = span[e.v]
			heap.Push(h, e)
			continue
		}
		inDS[e.v] = true
		res.DS = append(res.DS, e.v)
		res.Weight += g.Weight(e.v)
		cover := func(u int) {
			if covered[u] {
				return
			}
			covered[u] = true
			remaining--
			span[u]--
			for _, t := range g.Neighbors(u) {
				span[t]--
			}
		}
		cover(e.v)
		for _, u := range g.Neighbors(e.v) {
			cover(int(u))
		}
	}
	sortInts(res.DS)
	return res
}

type ratioEntry struct {
	v    int
	span int
	w    int64
}

type ratioHeap []ratioEntry

func (h ratioHeap) Len() int { return len(h) }
func (h ratioHeap) Less(i, j int) bool {
	// Compare span_i/w_i > span_j/w_j without division:
	// span_i·w_j > span_j·w_i. Ties break toward lower ID for determinism.
	a := int64(h[i].span) * h[j].w
	b := int64(h[j].span) * h[i].w
	if a != b {
		return a > b
	}
	return h[i].v < h[j].v
}
func (h ratioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ratioHeap) Push(x any)   { *h = append(*h, x.(ratioEntry)) }
func (h *ratioHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return popped
}

// TakeAll returns the trivial dominating set of all nodes.
func TakeAll(g *graph.Graph) GreedyResult {
	res := GreedyResult{DS: make([]int, g.N()), Weight: g.TotalWeight()}
	for v := range res.DS {
		res.DS[v] = v
	}
	return res
}

func sortInts(a []int) {
	// Insertion sort is fine: DS lists are produced roughly in order.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
