package baseline_test

import (
	"testing"
	"testing/quick"

	"arbods/internal/baseline"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/verify"
)

func toSet(n int, ds []int) []bool {
	set := make([]bool, n)
	for _, v := range ds {
		set[v] = true
	}
	return set
}

func TestExactKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"single", graph.NewBuilder(1).MustBuild(), 1},
		{"K2", graph.NewBuilder(2).AddEdge(0, 1).MustBuild(), 1},
		{"path3", gen.Path(3).G, 1},
		{"path4", gen.Path(4).G, 2},
		{"path7", gen.Path(7).G, 3},
		{"cycle6", gen.Cycle(6).G, 2},
		{"cycle7", gen.Cycle(7).G, 3},
		{"star9", gen.Star(9).G, 1},
		{"complete5", gen.Complete(5).G, 1},
		{"grid3x3", gen.Grid(3, 3).G, 3},
		{"isolated4", graph.NewBuilder(4).MustBuild(), 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := baseline.Exact(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Weight != tt.want {
				t.Fatalf("OPT = %d, want %d (DS=%v)", res.Weight, tt.want, res.DS)
			}
			if und := verify.DominatingSet(tt.g, toSet(tt.g.N(), res.DS)); len(und) > 0 {
				t.Fatalf("exact DS invalid: %v", und)
			}
		})
	}
}

func TestExactWeighted(t *testing.T) {
	// Star where the center is expensive: OPT covers leaves individually
	// only if cheaper — with center weight 100 and 3 leaves weight 1 each,
	// taking all leaves (weight 3) beats the center (100).
	g := graph.NewBuilder(4).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).
		SetWeight(0, 100).
		MustBuild()
	res, err := baseline.Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 3 {
		t.Fatalf("OPT = %d, want 3", res.Weight)
	}
}

func TestExactTooLarge(t *testing.T) {
	// Forests of any size are fine (linear DP)…
	if _, err := baseline.Exact(gen.Path(baseline.ExactLimit + 1).G); err != nil {
		t.Fatalf("oversized forest rejected: %v", err)
	}
	// …but oversized general graphs hit the branch-and-bound limit.
	if _, err := baseline.Exact(gen.Cycle(baseline.ExactLimit + 1).G); err == nil {
		t.Fatal("oversized non-forest accepted")
	}
}

// TestGreedyProperty: greedy always yields a valid dominating set, and on
// small instances it is within ln(Δ+1)+1 of the exact optimum.
func TestGreedyProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := gen.UniformWeights(gen.ErdosRenyi(n, 0.2, seed).G, 10, seed+1)
		res := baseline.Greedy(g)
		if len(verify.DominatingSet(g, toSet(n, res.DS))) > 0 {
			return false
		}
		opt, err := baseline.Exact(g)
		if err != nil {
			return false
		}
		if res.Weight < opt.Weight {
			return false // greedy can't beat OPT
		}
		// H_{Δ+1} bound with slack.
		hBound := 1.0
		for i := 2; i <= g.MaxDegree()+1; i++ {
			hBound += 1 / float64(i)
		}
		return float64(res.Weight) <= hBound*float64(opt.Weight)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLWDeterministic(t *testing.T) {
	graphs := []gen.Result{
		gen.Path(50),
		gen.Cycle(41),
		gen.RandomTree(80, 3),
		gen.ForestUnion(60, 3, 5),
		gen.Grid(7, 8),
		gen.Complete(10),
		{G: graph.NewBuilder(3).MustBuild(), Name: "isolated"},
	}
	for _, w := range graphs {
		t.Run(w.Name, func(t *testing.T) {
			rep, err := baseline.LWDeterministic(w.G, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			set := make([]bool, w.G.N())
			for _, v := range rep.DS {
				set[v] = true
			}
			if und := verify.DominatingSet(w.G, set); len(und) > 0 {
				t.Fatalf("LW DS invalid: %d uncovered", len(und))
			}
			// Round bound: 2 rounds per phase, ⌈log₂(Δ+1)⌉+1 phases.
			phases := 1
			for 1<<uint(phases) < w.G.MaxDegree()+1 {
				phases++
			}
			if rep.Rounds() > 2*(phases+2) {
				t.Fatalf("LW used %d rounds for %d phases", rep.Rounds(), phases)
			}
		})
	}
	if _, err := baseline.LWDeterministic(gen.UniformWeights(gen.Path(5).G, 9, 1)); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestLRGRandomized(t *testing.T) {
	graphs := []gen.Result{
		gen.Path(40),
		gen.RandomTree(70, 3),
		gen.ForestUnion(50, 2, 5),
		gen.Grid(6, 6),
		gen.Complete(9),
		gen.BarabasiAlbert(80, 3, 7),
		{G: graph.NewBuilder(4).MustBuild(), Name: "isolated"},
	}
	for _, w := range graphs {
		t.Run(w.Name, func(t *testing.T) {
			rep, err := baseline.LRGRandomized(w.G, congest.WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			set := make([]bool, w.G.N())
			for _, v := range rep.DS {
				set[v] = true
			}
			if und := verify.DominatingSet(w.G, set); len(und) > 0 {
				t.Fatalf("LRG DS invalid: %d uncovered", len(und))
			}
		})
	}
	if _, err := baseline.LRGRandomized(gen.UniformWeights(gen.Path(5).G, 9, 1)); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

// exactBruteForce enumerates all subsets — the unimpeachable ground truth
// for cross-validating both exact solvers on tiny instances.
func exactBruteForce(g *graph.Graph) int64 {
	n := g.N()
	best := int64(1) << 62
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		set := make([]bool, n)
		var w int64
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				set[v] = true
				w += g.Weight(v)
			}
		}
		if w < best && len(verify.DominatingSet(g, set)) == 0 {
			best = w
		}
	}
	return best
}

// TestExactForestAgainstBruteForce cross-validates the tree DP (including
// its reconstruction) on random weighted forests.
func TestExactForestAgainstBruteForce(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		g := gen.UniformWeights(gen.RandomTree(n, seed).G, 9, seed+1)
		res, err := baseline.ExactForest(g)
		if err != nil {
			return false
		}
		if len(verify.DominatingSet(g, toSet(n, res.DS))) > 0 {
			return false
		}
		// The reconstructed set's weight must equal the DP optimum and the
		// brute-force optimum.
		var w int64
		for _, v := range res.DS {
			w += g.Weight(v)
		}
		return w == res.Weight && res.Weight == exactBruteForce(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestExactForestLarge checks the DP scales to big trees (no node limit).
func TestExactForestLarge(t *testing.T) {
	g := gen.UniformWeights(gen.RandomTree(30000, 5).G, 100, 6)
	res, err := baseline.ExactForest(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(verify.DominatingSet(g, toSet(g.N(), res.DS))) > 0 {
		t.Fatal("large-tree DP produced invalid set")
	}
	// Path with unit weights has known OPT = ⌈n/3⌉.
	p := gen.Path(3001).G
	res, err = baseline.ExactForest(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 1001 {
		t.Fatalf("path OPT = %d, want 1001", res.Weight)
	}
	if _, err := baseline.ExactForest(gen.Cycle(5).G); err == nil {
		t.Fatal("cycle accepted by forest solver")
	}
}

// TestSunProperty: the Sun21-style solver always returns a valid set with
// a feasible integer packing, and never loses to its own packing bound.
func TestSunProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		g := gen.UniformWeights(gen.ErdosRenyi(n, 0.15, seed).G, 20, seed+1)
		res := baseline.Sun(g)
		if len(verify.DominatingSet(g, toSet(n, res.DS))) > 0 {
			return false
		}
		x := make([]float64, n)
		var sum int64
		for v, xv := range res.Packing {
			if xv < 0 {
				return false
			}
			x[v] = float64(xv)
			sum += xv
		}
		if verify.PackingFeasible(g, x, 0) != nil {
			return false
		}
		// Σx ≤ OPT ≤ w(DS): the packing can never exceed the set weight.
		return sum <= res.Weight
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSunVsExact: on small instances the Sun21-style solver should be close
// to optimal — the paper cites (α+1) for Sun's original order; we assert a
// conservative 3× on small weighted trees and ER graphs.
func TestSunVsExact(t *testing.T) {
	for _, w := range []gen.Result{
		gen.RandomTree(30, 3),
		gen.ErdosRenyi(24, 0.2, 5),
		gen.Grid(4, 6),
		gen.Star(12),
	} {
		g := gen.UniformWeights(w.G, 10, 7)
		res := baseline.Sun(g)
		opt, err := baseline.Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Weight > 3*opt.Weight {
			t.Fatalf("%s: Sun %d vs OPT %d", w.Name, res.Weight, opt.Weight)
		}
		// Reverse delete must leave an inclusion-minimal set: removing any
		// single member breaks domination.
		set := toSet(g.N(), res.DS)
		for _, u := range res.DS {
			set[u] = false
			if len(verify.DominatingSet(g, set)) == 0 {
				t.Fatalf("%s: node %d is redundant after reverse delete", w.Name, u)
			}
			set[u] = true
		}
	}
}

func TestKW05(t *testing.T) {
	graphs := []gen.Result{
		gen.Path(40),
		gen.ErdosRenyi(120, 0.05, 7),
		gen.ForestUnion(80, 3, 5),
		gen.Grid(7, 7),
		gen.Complete(10),
		{G: graph.NewBuilder(3).MustBuild(), Name: "isolated"},
	}
	for _, w := range graphs {
		for _, k := range []int{1, 2, 3} {
			t.Run(w.Name, func(t *testing.T) {
				rep, frac, err := baseline.KW05(w.G, k, congest.WithSeed(3))
				if err != nil {
					t.Fatal(err)
				}
				set := make([]bool, w.G.N())
				for _, v := range rep.DS {
					set[v] = true
				}
				if und := verify.DominatingSet(w.G, set); len(und) > 0 {
					t.Fatalf("k=%d: %d uncovered", k, len(und))
				}
				// The fractional phase must produce a feasible fractional
				// dominating set on non-empty graphs: Σ over any closed
				// neighborhood ≥ 1, hence Σx ≥ n/(Δ+1) > 0.
				if w.G.N() > 0 && frac <= 0 {
					t.Fatalf("k=%d: fractional value %g", k, frac)
				}
				// Round budget: 2k² for the sweep + 2 for rounding/fix-up.
				if rep.Rounds() > 2*k*k+3 {
					t.Fatalf("k=%d: %d rounds exceed 2k²+3", k, rep.Rounds())
				}
			})
		}
	}
	if _, _, err := baseline.KW05(gen.UniformWeights(gen.Path(5).G, 9, 1), 2); err == nil {
		t.Fatal("weighted graph accepted")
	}
	if _, _, err := baseline.KW05(gen.Path(5).G, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestKW05FractionalFeasible re-checks the LP feasibility of the fractional
// phase by reconstructing per-node sums from a dedicated run.
func TestKW05FractionalFeasible(t *testing.T) {
	w := gen.ErdosRenyi(60, 0.08, 9)
	rep, frac, err := baseline.KW05(w.G, 2, congest.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	// Coarse feasibility consequence: a feasible fractional dominating set
	// on a graph with max degree Δ has value ≥ n/(Δ+1).
	minVal := float64(w.G.N()) / float64(w.G.MaxDegree()+1)
	if frac < minVal-1e-9 {
		t.Fatalf("fractional value %g below the feasibility floor %g", frac, minVal)
	}
	if !rep.AllDominated {
		t.Fatal("integral solution does not dominate")
	}
}

func TestTakeAll(t *testing.T) {
	g := gen.UniformWeights(gen.Path(5).G, 10, 1)
	res := baseline.TakeAll(g)
	if len(res.DS) != 5 || res.Weight != g.TotalWeight() {
		t.Fatalf("take-all wrong: %v w=%d", res.DS, res.Weight)
	}
}

// TestGreedyVsExactOnTrees pins the greedy behaviour on structured inputs.
func TestGreedyVsExactOnTrees(t *testing.T) {
	for _, w := range []gen.Result{gen.Star(10), gen.Path(12), gen.Caterpillar(5, 2)} {
		res := baseline.Greedy(w.G)
		opt, err := baseline.Exact(w.G)
		if err != nil {
			t.Fatal(err)
		}
		if res.Weight > 2*opt.Weight {
			t.Fatalf("%s: greedy %d vs OPT %d", w.Name, res.Weight, opt.Weight)
		}
	}
}
