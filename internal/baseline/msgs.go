package baseline

import "arbods/internal/congest"

// Wire-word pack/decode helpers for the distributed baselines. Each pack
// helper fixes the packet's CONGEST bit cost with the same per-field
// BitsInt/BitsUint accounting the legacy Message.Bits() implementations
// used (pinned by wire_test.go).

// packFracX builds the KW05 fractional-value announcement
// (congest.TagFracX): the new value x = (Δ+1)^{-m/k} encoded by the
// exponent index m, so the message is O(log k) bits.
func packFracX(m int32) congest.Packet {
	return congest.Packet{
		Tag:  congest.TagFracX,
		Bits: uint32(congest.MsgTagBits + congest.BitsUint(uint64(m)+1)),
		A:    uint64(uint32(m)),
	}
}

func fracXFields(p congest.Packet) (m int32) { return int32(uint32(p.A)) }

// packFracCovered announces that the sender became fractionally covered
// (KW05).
func packFracCovered() congest.Packet { return congest.TagOnly(congest.TagFracCovered) }

// packJoin announces that the sender joined the dominating set.
func packJoin() congest.Packet { return congest.TagOnly(congest.TagJoin) }

// packCovered announces that the sender became covered (LW bucket greedy).
func packCovered() congest.Packet { return congest.TagOnly(congest.TagCovered) }

// packSpan builds the LRG status message (congest.TagSpan): the sender's
// span plus its coverage flag (1 bit).
func packSpan(covered bool, span int32) congest.Packet {
	var c uint64
	if covered {
		c = 1
	}
	return congest.Packet{
		Tag:  congest.TagSpan,
		Bits: uint32(congest.MsgTagBits + 1 + congest.BitsUint(uint64(span))),
		A:    uint64(uint32(span)),
		B:    c,
	}
}

func spanFields(p congest.Packet) (covered bool, span int32) {
	return p.B != 0, int32(uint32(p.A))
}

// packMaxSpan relays the largest rounded span within distance 1 (LRG).
func packMaxSpan(dhat int32) congest.Packet {
	return congest.Packet{
		Tag:  congest.TagMaxSpan,
		Bits: uint32(congest.MsgTagBits + congest.BitsUint(uint64(dhat))),
		A:    uint64(uint32(dhat)),
	}
}

func maxSpanFields(p congest.Packet) (dhat int32) { return int32(uint32(p.A)) }

// packCandidate announces LRG candidacy.
func packCandidate() congest.Packet { return congest.TagOnly(congest.TagCandidate) }

// packSupport carries an uncovered node's support count (LRG).
func packSupport(s int32) congest.Packet {
	return congest.Packet{
		Tag:  congest.TagSupport,
		Bits: uint32(congest.MsgTagBits + congest.BitsUint(uint64(s))),
		A:    uint64(uint32(s)),
	}
}

func supportFields(p congest.Packet) (s int32) { return int32(uint32(p.A)) }
