package baseline

import (
	"testing"

	"arbods/internal/congest"
	"arbods/internal/rng"
)

// TestWireRoundTrip pins every baseline message against its legacy
// Message.Bits() accounting and checks pack/decode fidelity, mirroring
// the mds wire test.
func TestWireRoundTrip(t *testing.T) {
	r := rng.New(321)
	for i := 0; i < 20000; i++ {
		m := int32(r.Uint64() % (1 << 31))
		span := int32(r.Uint64() % (1 << 31))
		covered := r.Bernoulli(0.5)

		p := packFracX(m)
		if got := fracXFields(p); got != m {
			t.Fatalf("frac-x round-trip: got %d, want %d", got, m)
		}
		if want := congest.MsgTagBits + congest.BitsUint(uint64(m)+1); int(p.Bits) != want {
			t.Fatalf("frac-x bits: got %d, legacy %d", p.Bits, want)
		}

		p = packSpan(covered, span)
		if gc, gs := spanFields(p); gc != covered || gs != span {
			t.Fatalf("span round-trip: got (%v,%d), want (%v,%d)", gc, gs, covered, span)
		}
		if want := congest.MsgTagBits + 1 + congest.BitsUint(uint64(span)); int(p.Bits) != want {
			t.Fatalf("span bits: got %d, legacy %d", p.Bits, want)
		}

		p = packMaxSpan(span)
		if got := maxSpanFields(p); got != span {
			t.Fatalf("max-span round-trip: got %d, want %d", got, span)
		}
		if want := congest.MsgTagBits + congest.BitsUint(uint64(span)); int(p.Bits) != want {
			t.Fatalf("max-span bits: got %d, legacy %d", p.Bits, want)
		}

		p = packSupport(span)
		if got := supportFields(p); got != span {
			t.Fatalf("support round-trip: got %d, want %d", got, span)
		}
		if want := congest.MsgTagBits + congest.BitsUint(uint64(span)); int(p.Bits) != want {
			t.Fatalf("support bits: got %d, legacy %d", p.Bits, want)
		}
	}

	for _, tt := range []struct {
		name string
		p    congest.Packet
		tag  congest.Tag
	}{
		{"join", packJoin(), congest.TagJoin},
		{"frac-covered", packFracCovered(), congest.TagFracCovered},
		{"covered", packCovered(), congest.TagCovered},
		{"candidate", packCandidate(), congest.TagCandidate},
	} {
		if tt.p.Tag != tt.tag || tt.p.Bits != congest.MsgTagBits || tt.p.A != 0 || tt.p.B != 0 {
			t.Fatalf("%s: tag-only packet malformed: %+v", tt.name, tt.p)
		}
	}
}
