package baseline

import (
	"errors"
	"math"

	"arbods/internal/graph"
)

// ErrTooLarge is returned when an exact solve would exceed the node limit.
var ErrTooLarge = errors.New("baseline: graph too large for exact solver")

// ExactLimit is the largest instance the exact solver accepts. Branch and
// bound with greedy bounds handles sparse instances of this size in
// well under a second, which is all the test suite needs.
const ExactLimit = 64

// Exact computes a minimum weight dominating set. Forests of any size are
// solved exactly in linear time by ExactForest; everything else falls to
// branch and bound, which is exponential in the worst case and restricted
// to ≤ ExactLimit nodes. It exists to ground-truth the approximation
// ratios of every other algorithm.
func Exact(g *graph.Graph) (GreedyResult, error) {
	if g.IsForest() {
		return ExactForest(g)
	}
	n := g.N()
	if n > ExactLimit {
		return GreedyResult{}, ErrTooLarge
	}
	if n == 0 {
		return GreedyResult{}, nil
	}
	s := &exactSolver{g: g, n: n}
	// Closed neighborhood masks.
	s.mask = make([]uint64, n)
	for v := 0; v < n; v++ {
		m := uint64(1) << uint(v)
		for _, u := range g.Neighbors(v) {
			m |= uint64(1) << uint(u)
		}
		s.mask[v] = m
	}
	s.full = (uint64(1) << uint(n)) - 1
	if n == 64 {
		s.full = math.MaxUint64
	}
	// Seed the bound with the greedy solution.
	greedy := Greedy(g)
	s.bestW = greedy.Weight
	s.best = toMask(greedy.DS)
	s.minTau = make([]int64, n)
	for v := 0; v < n; v++ {
		tau, _ := g.ClosedNeighborhoodMinWeight(v)
		s.minTau[v] = tau
	}
	s.search(0, 0, 0)
	res := GreedyResult{Weight: s.bestW}
	for v := 0; v < n; v++ {
		if s.best&(uint64(1)<<uint(v)) != 0 {
			res.DS = append(res.DS, v)
		}
	}
	return res, nil
}

type exactSolver struct {
	g      *graph.Graph
	n      int
	mask   []uint64 // closed neighborhood bitmask per node
	full   uint64
	best   uint64
	bestW  int64
	minTau []int64 // τ_v: cheapest node able to dominate v
}

// search extends the current partial solution (chosen, weight w, coverage
// cov), branching on the dominators of the uncovered node with the fewest
// candidates.
func (s *exactSolver) search(chosen uint64, w int64, cov uint64) {
	if w >= s.bestW {
		return
	}
	if cov == s.full {
		s.bestW = w
		s.best = chosen
		return
	}
	// Admissible lower bound: every uncovered node v needs some node of
	// N+(v) with weight ≥ τ_v; the max of those τ over uncovered nodes is a
	// valid additive bound (one node might cover them all, so take max).
	var lb int64
	pick := -1
	pickDeg := s.n + 2
	for v := 0; v < s.n; v++ {
		if cov&(uint64(1)<<uint(v)) != 0 {
			continue
		}
		if s.minTau[v] > lb {
			lb = s.minTau[v]
		}
		// Branch on the uncovered node with the fewest remaining
		// dominators (smallest closed neighborhood): fewest children.
		d := s.g.Degree(v)
		if d < pickDeg {
			pickDeg = d
			pick = v
		}
	}
	if w+lb >= s.bestW {
		return
	}
	v := pick
	// Candidates: every node in N+(v), heaviest coverage first.
	cands := make([]int, 0, s.g.Degree(v)+1)
	cands = append(cands, v)
	for _, u := range s.g.Neighbors(v) {
		cands = append(cands, int(u))
	}
	// Order candidates by newly covered count (descending) to find good
	// solutions early and tighten the bound.
	newCov := func(c int) int {
		return popcount(s.mask[c] &^ cov)
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && newCov(cands[j]) > newCov(cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		bit := uint64(1) << uint(c)
		if chosen&bit != 0 {
			continue
		}
		s.search(chosen|bit, w+s.g.Weight(c), cov|s.mask[c])
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func toMask(nodes []int) uint64 {
	var m uint64
	for _, v := range nodes {
		m |= uint64(1) << uint(v)
	}
	return m
}
