// Package orient implements the distributed low out-degree orientation the
// paper's Remark 4.5 borrows from Barenboim–Elkin [BE10]: an H-partition by
// iterated peeling of low-degree nodes, followed by orienting every edge
// from earlier-peeled to later-peeled endpoint.
//
// Partition (known arboricity bound a): for L = O(log n/ε) iterations, every
// still-active node whose active degree is at most (2+ε)·a peels itself and
// announces it. Because the remaining subgraph always has average degree
// ≤ 2a, at least an ε/(2+ε) fraction peels per iteration, so all nodes peel
// within L iterations. A node's out-neighbors — neighbors peeled strictly
// later, plus same-iteration neighbors with larger ID — were all still
// active when it peeled, so the out-degree is at most ⌈(2+ε)a⌉.
//
// Doubling (unknown α): run Partition phases with estimates a = 1, 2, 4, …
// Each phase peels everything once the estimate reaches the true arboricity,
// so every node peels in a phase with a ≤ 2α and ends with out-degree
// ≤ (2+ε)·2α, after O(log α · log n/ε) rounds (a log α factor and a
// constant-factor out-degree slack versus the remark's sketch; see
// DESIGN.md §5.2). The schedule is fixed from n alone so that all nodes
// agree on when the orientation phase ends — a requirement for composing it
// with the dominating set phase of Remark 4.5.
package orient

import (
	"fmt"
	"math"

	"arbods/internal/congest"
	"arbods/internal/graph"
)

// packPeel builds the peel announcement (congest.TagPeel): the sender
// peeled this iteration. Tag-only wire word.
func packPeel() congest.Packet { return congest.TagOnly(congest.TagPeel) }

// Output is the per-node result of the orientation.
type Output struct {
	// Layer is the global iteration index at which the node peeled.
	Layer int
	// Estimate is the arboricity estimate in force when the node peeled
	// (equals the known bound for Partition, a power of two for Doubling).
	Estimate int
	// Out lists the out-neighbors under the computed orientation.
	Out []int32
}

// Schedule fixes the peeling timetable so that every node knows when the
// orientation ends.
type Schedule struct {
	// IterationsPerPhase is L = ⌈log_{(2+ε)/2}(n)⌉ + 1.
	IterationsPerPhase int
	// Estimates holds the arboricity estimate of each phase.
	Estimates []int
}

// TotalRounds returns the number of rounds the schedule occupies.
func (s Schedule) TotalRounds() int { return s.IterationsPerPhase * len(s.Estimates) }

// threshold returns the peeling degree threshold ⌈(2+ε)·a⌉ of phase p.
func (s Schedule) threshold(p int, eps float64) int {
	return int(math.Ceil((2 + eps) * float64(s.Estimates[p])))
}

// NewSchedule builds the fixed schedule for an n-node graph. With a > 0 a
// single phase with the known bound is used; with a == 0 the doubling
// estimates 1, 2, 4, …, ≥ n are used.
func NewSchedule(n, a int, eps float64) (Schedule, error) {
	if n < 0 {
		return Schedule{}, fmt.Errorf("orient: negative n")
	}
	if !(eps > 0 && eps <= 2) {
		return Schedule{}, fmt.Errorf("orient: ε must be in (0,2], got %g", eps)
	}
	iters := 1
	if n > 1 {
		iters = int(math.Ceil(math.Log(float64(n))/math.Log((2+eps)/2))) + 1
	}
	s := Schedule{IterationsPerPhase: iters}
	if a > 0 {
		s.Estimates = []int{a}
		return s, nil
	}
	for est := 1; ; est *= 2 {
		s.Estimates = append(s.Estimates, est)
		if est >= n {
			break
		}
	}
	return s, nil
}

// Proc is the per-node peeling proc. It is exported so that composite
// algorithms (Remark 4.5) can embed it and take over after Done.
type Proc struct {
	NI       congest.NodeInfo
	Sched    Schedule
	Eps      float64
	nbrLayer []int // -1 while the neighbor is active
	activeD  int
	layer    int // -1 while active
	estimate int
	round    int
}

// NewProc allocates and initializes the peeling state for a node.
func NewProc(ni congest.NodeInfo, sched Schedule, eps float64) *Proc {
	p := &Proc{}
	p.Init(ni, sched, eps)
	return p
}

// Init initializes the peeling state in place (for procs embedded by value
// or constructed in a slab), carving the layer cache from the run's arena.
func (p *Proc) Init(ni congest.NodeInfo, sched Schedule, eps float64) {
	*p = Proc{
		NI:       ni,
		Sched:    sched,
		Eps:      eps,
		nbrLayer: ni.Arena.Ints(ni.Degree()),
		activeD:  ni.Degree(),
		layer:    -1,
		estimate: 0,
	}
	for i := range p.nbrLayer {
		p.nbrLayer[i] = -1
	}
}

// Absorb records peel announcements without advancing the schedule. After
// the final Step, one more round's inbox must be absorbed: peels announced
// in the last round are still in flight, and same-round ties are broken by
// ID only when both endpoints know each other's layer.
func (p *Proc) Absorb(in []congest.Incoming) {
	for _, m := range in {
		if m.P.Tag == congest.TagPeel {
			if i := m.Idx; p.nbrLayer[i] < 0 {
				p.nbrLayer[i] = p.round - 1
				p.activeD--
			}
		}
	}
}

// Step advances one peeling round. The caller must invoke it exactly
// Sched.TotalRounds() times, passing consecutive inboxes, then call Absorb
// once with the following round's inbox; Step reports true when the
// schedule is exhausted (at which point every node has peeled).
func (p *Proc) Step(in []congest.Incoming, s *congest.Sender) (finished bool) {
	p.Absorb(in)
	phase := p.round / p.Sched.IterationsPerPhase
	if p.layer < 0 && phase < len(p.Sched.Estimates) {
		if p.activeD <= p.Sched.threshold(phase, p.Eps) {
			p.layer = p.round
			p.estimate = p.Sched.Estimates[phase]
			s.Broadcast(packPeel())
		}
	}
	p.round++
	return p.round >= p.Sched.TotalRounds()
}

// Output computes the node's layer and out-neighbors. Call only after the
// schedule finished. Neighbors that never announced a peel (impossible under
// a correct schedule) are treated as later-peeled.
func (p *Proc) Output() Output {
	out := Output{Layer: p.layer, Estimate: p.estimate}
	for i, u := range p.NI.Neighbors {
		ul := p.nbrLayer[i]
		if ul < 0 || ul > p.layer || (ul == p.layer && int(u) > p.NI.ID) {
			out.Out = append(out.Out, u)
		}
	}
	return out
}

// OutDegree returns the node's current out-degree (valid after the run).
func (p *Proc) OutDegree() int {
	d := 0
	for i, u := range p.NI.Neighbors {
		ul := p.nbrLayer[i]
		if ul < 0 || ul > p.layer || (ul == p.layer && int(u) > p.NI.ID) {
			d++
		}
	}
	return d
}

type runProc struct {
	inner    Proc
	finished bool
}

func (r *runProc) Step(round int, in []congest.Incoming, s *congest.Sender) bool {
	if r.finished {
		r.inner.Absorb(in)
		return true
	}
	r.finished = r.inner.Step(in, s)
	return false
}

func (r *runProc) Output() Output { return r.inner.Output() }

// Run executes the orientation as a standalone CONGEST algorithm. Pass
// arbor > 0 for the known-bound single-phase variant, 0 for doubling.
func Run(g *graph.Graph, arbor int, eps float64, opts ...congest.Option) (*congest.Result[Output], error) {
	sched, err := NewSchedule(g.N(), arbor, eps)
	if err != nil {
		return nil, err
	}
	slab := make([]runProc, g.N())
	factory := func(ni congest.NodeInfo) congest.Proc[Output] {
		p := &slab[ni.ID]
		p.inner.Init(ni, sched, eps)
		return p
	}
	return congest.Run(g, factory, opts...)
}
