package orient_test

import (
	"testing"

	"arbods/internal/arbor"
	"arbods/internal/congest"
	"arbods/internal/gen"
	"arbods/internal/graph"
	"arbods/internal/orient"
)

// checkOrientation verifies that the distributed orientation is a valid
// orientation of g (every edge directed exactly once) with the promised
// out-degree bound.
func checkOrientation(t *testing.T, g *graph.Graph, outs []orient.Output, maxOut int) {
	t.Helper()
	oriented := make(map[[2]int]int)
	maxSeen := 0
	for v, o := range outs {
		if o.Layer < 0 {
			t.Fatalf("node %d never peeled", v)
		}
		if len(o.Out) > maxSeen {
			maxSeen = len(o.Out)
		}
		for _, u := range o.Out {
			if !g.HasEdge(v, int(u)) {
				t.Fatalf("oriented non-edge %d→%d", v, u)
			}
			a, b := v, int(u)
			if a > b {
				a, b = b, a
			}
			oriented[[2]int{a, b}]++
		}
	}
	if len(oriented) != g.M() {
		t.Fatalf("oriented %d edges, graph has %d", len(oriented), g.M())
	}
	for e, c := range oriented {
		if c != 1 {
			t.Fatalf("edge %v oriented %d times", e, c)
		}
	}
	if maxSeen > maxOut {
		t.Fatalf("max out-degree %d exceeds bound %d", maxSeen, maxOut)
	}
}

func TestPartitionKnownAlpha(t *testing.T) {
	tests := []struct {
		w     gen.Result
		alpha int
	}{
		{gen.RandomTree(150, 3), 1},
		{gen.ForestUnion(120, 2, 5), 2},
		{gen.ForestUnion(100, 4, 7), 4},
		{gen.Grid(10, 12), 2},
		{gen.Complete(13), 7},
	}
	for _, tt := range tests {
		t.Run(tt.w.Name, func(t *testing.T) {
			eps := 0.5
			res, err := orient.Run(tt.w.G, tt.alpha, eps, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			bound := int((2 + eps) * float64(tt.alpha))
			if bound < 1 {
				bound = 1
			}
			checkOrientation(t, tt.w.G, res.Outputs, bound+1)
		})
	}
}

func TestDoublingUnknownAlpha(t *testing.T) {
	tests := []struct {
		w     gen.Result
		alpha int // true arboricity bound of the construction
	}{
		{gen.RandomTree(150, 3), 1},
		{gen.ForestUnion(120, 3, 5), 3},
		{gen.Grid(9, 9), 2},
		{gen.ErdosRenyi(80, 0.1, 11), 0},
	}
	for _, tt := range tests {
		t.Run(tt.w.Name, func(t *testing.T) {
			eps := 0.5
			res, err := orient.Run(tt.w.G, 0, eps, congest.WithSeed(1))
			if err != nil {
				t.Fatal(err)
			}
			alpha := tt.alpha
			if alpha == 0 {
				_, degen := arbor.Degeneracy(tt.w.G)
				alpha = degen // α ≤ degeneracy
			}
			// Doubling guarantee: out-degree ≤ (2+ε)·2α (estimate overshoots
			// the true arboricity by at most a factor 2).
			bound := int((2+eps)*2*float64(alpha)) + 1
			checkOrientation(t, tt.w.G, res.Outputs, bound)
		})
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := orient.NewSchedule(10, 0, 0); err == nil {
		t.Fatal("expected error for ε = 0")
	}
	if _, err := orient.NewSchedule(10, 0, 3); err == nil {
		t.Fatal("expected error for ε > 2")
	}
	s, err := orient.NewSchedule(1000, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRounds() <= 0 {
		t.Fatal("schedule has no rounds")
	}
	// Doubling estimates must reach n.
	last := s.Estimates[len(s.Estimates)-1]
	if last < 1000 {
		t.Fatalf("doubling stops at %d < n", last)
	}
}
