package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryNeverFires(t *testing.T) {
	var r *Registry
	if err := r.Fire("any"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	if err := r.FireRound("any", 3); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	if r.Hits("any") != 0 {
		t.Fatal("nil registry counted hits")
	}
	if r.Chance(1) {
		t.Fatal("nil registry answered Chance true")
	}
	r.Reset() // must not panic
}

func TestFireErrOnce(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Round: -1, Err: ErrInjected})
	if err := r.Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first fire: %v", err)
	}
	if err := r.Fire("p"); err != nil {
		t.Fatalf("second fire (Times default 1): %v", err)
	}
	if got := r.Hits("p"); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestAfterAndTimes(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Round: -1, After: 2, Times: 2, Err: ErrInjected})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, r.Fire("p") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire pattern %v, want %v", got, want)
		}
	}
}

func TestRoundMatching(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Round: 3, Err: ErrInjected})
	for round := 0; round < 3; round++ {
		if err := r.FireRound("p", round); err != nil {
			t.Fatalf("round %d fired early: %v", round, err)
		}
	}
	if err := r.FireRound("p", 3); !errors.Is(err, ErrInjected) {
		t.Fatalf("round 3: %v", err)
	}
	// A round-pinned fault ignores round-free Fire calls entirely.
	r.Reset()
	r.Arm("p", Fault{Round: 3, Err: ErrInjected})
	if err := r.Fire("p"); err != nil {
		t.Fatalf("round-free fire matched a round-pinned fault: %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Round: -1, Panic: "boom"})
	defer func() {
		if v := recover(); v != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	_ = r.Fire("p")
	t.Fatal("fire did not panic")
}

func TestDelayAction(t *testing.T) {
	r := New(1)
	r.Arm("p", Fault{Round: -1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := r.Fire("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("fire returned after %v, want ≥ 20ms", d)
	}
}

func TestFirstMatchWins(t *testing.T) {
	e2 := errors.New("second")
	r := New(1)
	r.Arm("p", Fault{Round: -1, Err: ErrInjected})
	r.Arm("p", Fault{Round: -1, Err: e2, Times: 2})
	if err := r.Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("first fire: %v", err)
	}
	if err := r.Fire("p"); !errors.Is(err, e2) {
		t.Fatalf("second fire should fall through to the second arm: %v", err)
	}
}

func TestChanceDeterministic(t *testing.T) {
	seq := func(seed uint64) []bool {
		r := New(seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Chance(0.5)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different Chance sequences")
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical Chance sequences")
	}
}

// TestConcurrentFire exercises the registry under -race: concurrent Fire
// calls against a Times-bounded arm must fire exactly Times times.
func TestConcurrentFire(t *testing.T) {
	r := New(1)
	const times = 10
	r.Arm("p", Fault{Round: -1, Times: times, Err: ErrInjected})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if r.Fire("p") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != times {
		t.Fatalf("fired %d times, want %d", fired, times)
	}
	if r.Hits("p") != 800 {
		t.Fatalf("hits = %d, want 800", r.Hits("p"))
	}
}
