// Package faultinject provides deterministic, seeded fault injection for
// the serving stack's chaos tests. Production code declares named
// failpoints by calling Fire on a *Registry it was handed; a nil Registry
// makes every Fire a no-op costing one nil check, so the seams are
// build-tag-free and effectively free when injection is off. Tests arm
// faults against those names and get reproducible failures: a panic at
// round k, a slow round, a failing build, a snapshot write error —
// whatever the armed Fault describes, firing in a deterministic order
// governed by hit counts (and, for probabilistic arms, by the Registry's
// seed), never by wall-clock races.
//
// Failpoint names used by this repository:
//
//	congest.step      fired once per round by the engine's step phase
//	                  (shard 0, so on a worker goroutine when parallel);
//	                  round-aware
//	server.build      fired by the solve path's singleflight leader just
//	                  before a cold graph build
//	server.admit      fired by the solve path just before admission
//	persist.writeBlob fired before a snapshot blob is renamed into place
//	persist.writeIndex fired before the snapshot index is rewritten
//	peer.<host:port>  fired by Transport before every HTTP request to that
//	                  peer (cluster proxying, health probes, snapshot
//	                  fetches, and any client wired through Transport)
package faultinject

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Fault describes what happens when an armed failpoint fires.
//
// Matching: the fault matches a Fire at its point after After matching
// invocations have been skipped, and stops matching after it has fired
// Times times (Times ≤ 0 means once). A fault with Round ≥ 0 matches only
// a FireRound call with exactly that round (never a round-free Fire);
// Round < 0 matches any call. Matching is by invocation count, so a
// rerun of the same test arms and fires identically.
//
// Action, applied in order when the fault fires: sleep Delay (a slow
// round / slow write), then panic with Panic if non-nil (the injected
// proc panic), then return Err (a build or snapshot failure; nil Err with
// nil Panic makes Delay-only faults possible).
type Fault struct {
	Round int // FireRound only: required round, -1 = any
	After int // skip the first After matching invocations
	Times int // fire at most Times times (≤ 0 = once)

	Delay time.Duration // sleep before acting
	Panic any           // non-nil: panic(Panic) after Delay
	Err   error         // returned by Fire after Delay (when Panic is nil)
}

// armed is one armed fault plus its live matching state.
type armed struct {
	f       Fault
	skipped int
	fired   int
}

// Registry is a set of named failpoints. The zero value is ready to use;
// a nil *Registry is also valid and never fires (the production state).
// All methods are safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	seed  uint64
	state uint64 // seeded PCG-style stream for probabilistic arms
	arms  map[string][]*armed
	hits  map[string]int
}

// New returns a Registry whose probabilistic decisions derive from seed,
// so an armed probability fires on the same Fire sequence every run.
func New(seed uint64) *Registry {
	return &Registry{seed: seed, state: seed*0x9E3779B97F4A7C15 + 1}
}

// Arm registers f at the named failpoint. Multiple faults may be armed at
// one point; they are evaluated in arm order and the first match fires.
func (r *Registry) Arm(point string, f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.arms == nil {
		r.arms = make(map[string][]*armed)
	}
	r.arms[point] = append(r.arms[point], &armed{f: f})
}

// Reset disarms every failpoint and clears the hit counts; the seed (and
// the probabilistic stream) is preserved.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.arms = nil
	r.hits = nil
}

// Hits reports how many times the named failpoint has been reached
// (fired or not) — the observability half of the harness: a chaos test
// asserts both that the fault fired and that the seam was actually on
// the executed path.
func (r *Registry) Hits(point string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[point]
}

// Fire evaluates the named failpoint outside any round context. A nil
// Registry never fires. If an armed fault matches, Fire sleeps its Delay,
// panics with its Panic if set, and otherwise returns its Err.
func (r *Registry) Fire(point string) error {
	return r.FireRound(point, -1)
}

// FireRound is Fire for round-aware failpoints: an armed fault with
// Round ≥ 0 matches only when round equals it.
func (r *Registry) FireRound(point string, round int) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.hits == nil {
		r.hits = make(map[string]int)
	}
	r.hits[point]++
	var hit *Fault
	for _, a := range r.arms[point] {
		times := a.f.Times
		if times <= 0 {
			times = 1
		}
		if a.fired >= times {
			continue
		}
		if a.f.Round >= 0 && round != a.f.Round {
			continue
		}
		if a.skipped < a.f.After {
			a.skipped++
			continue
		}
		a.fired++
		f := a.f
		hit = &f
		break
	}
	r.mu.Unlock()
	if hit == nil {
		return nil
	}
	if hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	if hit.Panic != nil {
		panic(hit.Panic)
	}
	return hit.Err
}

// Chance returns a deterministic pseudo-random decision with the given
// probability, advancing the Registry's seeded stream: the k-th Chance
// call after New(seed) answers identically on every run. It exists for
// chaos tests that want "fail some fraction of operations" without
// wall-clock nondeterminism; a nil Registry always answers false.
func (r *Registry) Chance(p float64) bool {
	if r == nil || p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	r.mu.Lock()
	// splitmix64 step: full-period, seed-determined, dependency-free.
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	r.mu.Unlock()
	return float64(z>>11)/float64(1<<53) < p
}

// ErrInjected is a convenience error for arms that only need "some
// failure" — tests can assert on it with errors.Is.
var ErrInjected = fmt.Errorf("faultinject: injected failure")

// ErrBlackhole, armed as a Fault's Err at a peer seam, makes Transport
// hang until the request's context is done instead of failing fast — a
// network partition rather than a connection refusal. The caller sees
// its own context error, exactly as if the packets had vanished.
var ErrBlackhole = errors.New("faultinject: blackholed")

// Transport is an http.RoundTripper with a per-peer failpoint seam:
// every outgoing request fires "peer.<host:port>" before reaching Base,
// so a chaos test can blackhole, fail, or slow one daemon's link while
// the rest of the cluster stays clean. Faults compose the usual way —
// Delay models link latency, Err a refused connection, ErrBlackhole a
// partition (the request hangs until its context dies; arm it with a
// large Times so the partition persists). A nil Reg forwards untouched.
type Transport struct {
	Base http.RoundTripper // nil = http.DefaultTransport
	Reg  *Registry
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.Reg.Fire("peer." + req.URL.Host); err != nil {
		if errors.Is(err, ErrBlackhole) {
			<-req.Context().Done()
			return nil, req.Context().Err()
		}
		return nil, err
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
