package arbods

import (
	"context"

	"arbods/internal/congest"
	"arbods/internal/faultinject"
)

// This file is the engine-level run surface of the facade: the generic
// Run/RunContext entry points plus the types a caller needs to drive
// custom congest procs through package arbods alone, without reaching
// into internal/congest. The algorithm wrappers in algorithms.go are the
// paper's surface; this is the simulator's.

// NodeInfo is the local knowledge a node starts with: ID, neighbor list,
// weight, the globally known parameters, its private random stream, and
// the run's Arena.
type NodeInfo = congest.NodeInfo

// Incoming is one received packet, tagged with its sender and the
// sender's precomputed position in the receiver's neighbor list.
type Incoming = congest.Incoming

// Sender collects a node's outgoing packets for the current round (Send,
// Broadcast).
type Sender = congest.Sender

// Packet is the wire-word message representation: a Tag, at most two
// payload words, and the CONGEST bit cost fixed at pack time.
type Packet = congest.Packet

// Tag identifies a message's wire format. Library algorithms occupy the
// low values; custom procs may use the headroom up to MaxTags.
type Tag = congest.Tag

// MaxTags bounds the tag space; MsgTagBits is the bit cost charged for
// every message's tag header.
const (
	MaxTags    = congest.MaxTags
	MsgTagBits = congest.MsgTagBits
)

// TagOnly returns the packet for a payload-free message: just the
// MsgTagBits type header.
func TagOnly(tag Tag) Packet { return congest.TagOnly(tag) }

// BitsUint returns the number of bits needed to encode x (at least 1);
// BitsInt adds a sign bit. Custom packets must charge their payloads at
// these rates for the simulator's bandwidth accounting to be meaningful.
func BitsUint(x uint64) int { return congest.BitsUint(x) }

// BitsInt returns the number of bits needed to encode x with a sign bit.
func BitsInt(x int64) int { return congest.BitsInt(x) }

// Proc is the per-node state machine of a distributed algorithm; Factory
// builds one per node before round 0.
type Proc[O any] = congest.Proc[O]

// Factory builds the per-node proc from its starting knowledge.
type Factory[O any] = congest.Factory[O]

// RunResult is the generic simulator result for custom-proc runs. (The
// non-generic Result alias fixes O to the library's NodeOutput.)
type RunResult[O any] = congest.Result[O]

// Run executes the algorithm built by factory on g under the CONGEST
// simulator. The transcript is bit-identical for every worker count and
// for transient vs reused Runner state. Run never cancels; it is the
// context-free convenience over RunContext.
func Run[O any](g *Graph, factory Factory[O], opts ...Option) (*RunResult[O], error) {
	return congest.Run(g, factory, opts...)
}

// RunContext is Run with a cancellation context, checked at the
// per-round barrier: after ctx is canceled (deadline, disconnected
// client, caller Cancel) the run returns ctx.Err() within one round. A
// canceled run has no partial results, and a Runner attached with
// WithRunner is immediately reusable — its next run is bit-identical to
// one on a fresh Runner. Go methods cannot be type-parameterized, so
// there is no Runner.RunContext method form; RunContext(ctx, …,
// WithRunner(r)) is that spelling.
func RunContext[O any](ctx context.Context, g *Graph, factory Factory[O], opts ...Option) (*RunResult[O], error) {
	return congest.RunContext(ctx, g, factory, opts...)
}

// WithContext attaches ctx to a run, making the option-based algorithm
// surface (WeightedDeterministic and friends, the server's solve path)
// cancellable without signature changes: the engine checks ctx once per
// round, so a canceled run returns ctx.Err() within one round. See
// RunContext for the full contract; the two spellings are equivalent.
func WithContext(ctx context.Context) Option { return congest.WithContext(ctx) }

// RunBatchContext is RunBatch under a context: once ctx dies, jobs not
// yet started fail with ctx.Err() in their slots and the first error in
// submission order is returned. Running jobs finish unless they thread
// the same ctx into their runs with WithContext. The cancellable batch
// form on a caller-owned pool is RunnerPool.BatchContext; the
// cancellable checkout is RunnerPool.GetContext.
func RunBatchContext(ctx context.Context, parallel int, jobs ...Job) error {
	return congest.RunBatchContext(ctx, parallel, jobs...)
}

// ErrPoolClosed is returned by RunnerPool.GetContext when the pool has
// been closed (RunnerPool.Get returns nil in the same situation): a
// caller blocked on checkout fails fast instead of waiting forever.
var ErrPoolClosed = congest.ErrPoolClosed

// ErrProcPanic is the sentinel wrapped by every recovered proc panic: a
// Factory, Step, or Output callback that panics fails its own run with a
// *ProcPanicError instead of crashing the process. Match the class with
// errors.Is(err, ErrProcPanic); reach the round, node, and captured stack
// with errors.As and *ProcPanicError. The Runner that hosted the run is
// quarantined — see RunnerPool.Put.
var ErrProcPanic = congest.ErrProcPanic

// ProcPanicError carries the details of a recovered proc panic: the round
// it interrupted (−1 outside the round loop), the node whose callback
// panicked (−1 for engine-internal faults), the panic value, and the
// panicking goroutine's stack.
type ProcPanicError = congest.ProcPanicError

// WithFaultInjection attaches a deterministic fault-injection registry to
// a run: the engine fires the "congest.step" failpoint once per round, so
// chaos tests can panic, delay, or fail a chosen round reproducibly. Runs
// without the option (or with a nil registry) pay a single comparison.
func WithFaultInjection(reg *faultinject.Registry) Option { return congest.WithFaultInjection(reg) }
