package arbods_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"arbods"
	"arbods/internal/faultinject"
)

// TestGeneratorSurface exercises every generator wrapper of the facade.
func TestGeneratorSurface(t *testing.T) {
	gens := map[string]arbods.Workload{
		"path":        arbods.Path(10),
		"cycle":       arbods.Cycle(10),
		"star":        arbods.Star(10),
		"complete":    arbods.Complete(6),
		"tree":        arbods.RandomTree(10, 1),
		"balanced":    arbods.BalancedTree(2, 3),
		"caterpillar": arbods.Caterpillar(4, 2),
		"broom":       arbods.Broom(5, 8),
		"forest":      arbods.ForestUnion(20, 2, 1),
		"grid":        arbods.Grid(4, 4),
		"torus":       arbods.Torus(3, 3),
		"hypercube":   arbods.Hypercube(3),
		"er":          arbods.ErdosRenyi(20, 0.3, 1),
		"ba":          arbods.BarabasiAlbert(25, 2, 1),
		"bipartite":   arbods.RandomBipartite(5, 5, 0.4, 1),
		"geometric":   arbods.Geometric(25, 0.3, 1),
	}
	for name, w := range gens {
		if w.G == nil || w.Name == "" {
			t.Fatalf("%s: malformed workload", name)
		}
	}
	base := gens["grid"].G
	if g := arbods.ExponentialWeights(base, 10, 2); g.Unweighted() {
		t.Fatal("exponential weights not applied")
	}
	if g := arbods.DegreeWeights(base, 3, 0); g.Unweighted() {
		t.Fatal("degree weights not applied")
	}
}

// TestAlgorithmSurface exercises the remaining algorithm wrappers and the
// option re-exports.
func TestAlgorithmSurface(t *testing.T) {
	w := arbods.ForestUnion(80, 2, 3)

	rep, err := arbods.UnweightedDeterministic(w.G, 2, 0.25,
		arbods.WithSeed(1), arbods.WithWorkers(2), arbods.WithMaxRounds(10_000),
		arbods.WithRoundStats(), arbods.WithMessageStats(), arbods.WithBandwidth(256))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.RoundStats) == 0 || len(rep.Result.MessageStats) == 0 {
		t.Fatal("stats options not honored")
	}

	trunc, err := arbods.TruncatedUnweighted(w.G, 2, 0.25, 2, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if und := arbods.IsDominatingSet(w.G, arbods.MembershipOf(trunc)); len(und) > 0 {
		t.Fatal("truncated run not dominating")
	}

	sun := arbods.SunCentralized(w.G)
	if len(sun.DS) == 0 {
		t.Fatal("Sun returned empty set")
	}

	kw, frac, err := arbods.KW05(w.G, 2, arbods.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !kw.AllDominated || frac <= 0 {
		t.Fatalf("KW05 malformed: dominated=%v frac=%g", kw.AllDominated, frac)
	}

	layered, err := arbods.LayeredLowerBoundGadget(8, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if layered.N() != 8+4+2 {
		t.Fatalf("layered gadget n=%d", layered.N())
	}

	ex, err := arbods.ExactSmall(arbods.Cycle(9).G)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Weight != 3 {
		t.Fatalf("exact on C9 = %d, want 3", ex.Weight)
	}
}

// TestOptionSurface pins the complete root option set: every congest
// option the library accepts must be constructible and honored through
// the facade, so a server or client written against package arbods never
// needs to reach into internal/congest.
func TestOptionSurface(t *testing.T) {
	w := arbods.ForestUnion(100, 2, 3)
	r := arbods.NewRunner()
	defer r.Close()

	var streamed []arbods.RoundStat
	opts := []arbods.Option{
		arbods.WithSeed(1),
		arbods.WithWorkers(2),
		arbods.WithMode(arbods.CongestAudit),
		arbods.WithBandwidth(512),
		arbods.WithMaxRounds(10_000),
		arbods.WithRoundStats(),
		arbods.WithMessageStats(),
		arbods.WithRoundObserver(func(rs arbods.RoundStat) { streamed = append(streamed, rs) }),
		arbods.WithKnownMaxDegree(),
		arbods.WithKnownArboricity(2),
		arbods.WithRunner(r),
		arbods.WithRecycledResult(),
	}
	rep, err := arbods.WeightedDeterministic(w.G, 2, 0.25, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != rep.Rounds() {
		t.Fatalf("observer saw %d rounds, run took %d", len(streamed), rep.Rounds())
	}
	if len(rep.Result.RoundStats) != rep.Rounds() || len(rep.Result.MessageStats) == 0 {
		t.Fatal("stats options not honored")
	}

	// Detach severs the recycled result from the Runner: values must be
	// stable across the Runner's next run.
	det := rep.Detach()
	wantW := det.DSWeight
	wantOut := det.Result.Outputs[0]
	if _, err := arbods.WeightedDeterministic(w.G, 2, 0.25,
		arbods.WithSeed(99), arbods.WithRunner(r), arbods.WithRecycledResult()); err != nil {
		t.Fatal(err)
	}
	if det.DSWeight != wantW || det.Result.Outputs[0] != wantOut {
		t.Fatal("detached report changed under the Runner's next run")
	}
	var _ *arbods.Result = det.Result // the root Result alias is the report's type
}

// countProc is a minimal custom proc driven through the root facade: each
// node broadcasts once and reports how many neighbors it heard.
type countProc struct {
	ni    arbods.NodeInfo
	heard int64
}

func (p *countProc) Step(round int, in []arbods.Incoming, s *arbods.Sender) bool {
	p.heard += int64(len(in))
	if round == 0 {
		s.Broadcast(arbods.TagOnly(arbods.Tag(16)))
		return false
	}
	return true
}

func (p *countProc) Output() int64 { return p.heard }

// TestContextSurface pins the cancellation surface of the facade:
// Run/RunContext/WithContext for the engine, GetContext/ErrPoolClosed for
// the pool, and BatchContext/RunBatchContext for batches. A server or
// client written against package arbods alone can thread deadlines
// through every layer.
func TestContextSurface(t *testing.T) {
	w := arbods.Cycle(12)
	factory := func(ni arbods.NodeInfo) arbods.Proc[int64] { return &countProc{ni: ni} }

	// The generic Run surface executes custom procs...
	res, err := arbods.Run(w.G, factory, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var _ *arbods.RunResult[int64] = res
	if res.Outputs[0] != 2 {
		t.Fatalf("cycle node heard %d broadcasts, want 2", res.Outputs[0])
	}
	if arbods.BitsUint(255) != 8 || arbods.BitsInt(-1) != 2 || arbods.MaxTags < arbods.MsgTagBits {
		t.Fatal("bit-accounting helpers malformed")
	}

	// ...and RunContext / WithContext abort it with ctx.Err().
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := arbods.RunContext(dead, w.G, factory); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v", err)
	}
	if _, err := arbods.WeightedDeterministic(w.G, 2, 0.25, arbods.WithContext(dead)); !errors.Is(err, context.Canceled) {
		t.Fatalf("algorithm wrapper under WithContext err = %v", err)
	}

	// Pool checkouts are cancellable and fail fast once the pool closes.
	pool := arbods.NewRunnerPool(1)
	r, err := pool.GetContext(dead) // free capacity beats a dead context
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(r)
	if err := pool.BatchContext(dead).Wait(); err != nil {
		t.Fatalf("empty canceled batch err = %v", err)
	}
	pool.Close()
	if _, err := pool.GetContext(context.Background()); !errors.Is(err, arbods.ErrPoolClosed) {
		t.Fatalf("closed pool err = %v, want ErrPoolClosed", err)
	}

	// RunBatchContext checks the context between sequential jobs. (The
	// parallel path prefers free pool capacity over a dead context, so a
	// fresh transient pool would still run its jobs — same rule as
	// GetContext above.)
	if err := arbods.RunBatchContext(dead, 1,
		func(r *arbods.Runner, workers int) error { return nil },
	); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBatchContext err = %v", err)
	}
}

// TestReceiptSurface exercises BuildReceipt: the structured verification
// record must agree with Certify and carry every check.
func TestReceiptSurface(t *testing.T) {
	w := arbods.ForestUnion(60, 2, 5)
	rep, err := arbods.WeightedDeterministic(w.G, 2, 0.25, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := arbods.BuildReceipt(w.G, rep)
	if !rec.OK || rec.Err() != nil {
		t.Fatalf("valid run's receipt not OK: %+v", rec)
	}
	if rec.SetSize != len(rep.DS) || rec.SetWeight != rep.DSWeight || rec.Rounds != rep.Rounds() {
		t.Fatalf("receipt disagrees with report: %+v", rec)
	}
	byName := map[string]arbods.Check{}
	for _, c := range rec.Checks {
		byName[c.Name] = c
	}
	for _, name := range []string{"domination", "packing", "ratio"} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("receipt missing %q check", name)
		}
		if !c.Pass && !c.Skipped {
			t.Fatalf("check %q failed on a valid run: %+v", name, c)
		}
	}
	if byName["ratio"].Skipped {
		t.Fatal("deterministic run must not skip the ratio check")
	}

	// Expectation-only bounds skip the ratio check but still verify
	// coverage and packing.
	rr, err := arbods.WeightedRandomized(w.G, 2, 1, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rrec := arbods.BuildReceipt(w.G, rr)
	if !rrec.OK {
		t.Fatalf("randomized run's receipt not OK: %+v", rrec)
	}
	for _, c := range rrec.Checks {
		if c.Name == "ratio" && !c.Skipped {
			t.Fatal("expectation-only run must skip the ratio check")
		}
	}

	// A sabotaged report fails with the same typed error Certify reports.
	bad := rep.Detach()
	for v := range bad.Result.Outputs {
		if bad.Result.Outputs[v].InDS {
			bad.Result.Outputs[v].InDS = false
			break
		}
	}
	brec := arbods.BuildReceipt(w.G, bad)
	if brec.OK || brec.Err() == nil {
		t.Fatal("sabotaged report's receipt OK")
	}
	var ce *arbods.CertError
	if !errors.As(brec.Err(), &ce) || ce.Stage != "domination" {
		t.Fatalf("want domination CertError, got %v", brec.Err())
	}
	if (arbods.Certify(w.G, bad) == nil) != brec.OK {
		t.Fatal("Certify and BuildReceipt disagree")
	}
}

// TestCertifySurface exercises the certificate helpers and error paths.
func TestCertifySurface(t *testing.T) {
	w := arbods.ForestUnion(60, 2, 5)
	rep, err := arbods.WeightedDeterministic(w.G, 2, 0.25, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	set := arbods.MembershipOf(rep)
	x := arbods.PackingOf(rep)
	if err := arbods.CheckCertificate(w.G, set, x, rep.Factor); err != nil {
		t.Fatal(err)
	}
	// A sabotaged report must fail certification with a typed error.
	bad := *rep
	for v := range rep.Result.Outputs {
		if rep.Result.Outputs[v].InDS {
			outs := make([]arbods.NodeOutput, len(rep.Result.Outputs))
			copy(outs, rep.Result.Outputs)
			outs[v].InDS = false
			res := *rep.Result
			res.Outputs = outs
			bad.Result = &res
			break
		}
	}
	err = arbods.Certify(w.G, &bad)
	if err == nil {
		t.Fatal("sabotaged report certified")
	}
	var ce *arbods.CertError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CertError, got %T", err)
	}
	if ce.Error() == "" {
		t.Fatal("empty error string")
	}
	// Wrong factor must fail at the ratio stage and unwrap cleanly.
	if err := arbods.CheckCertificate(w.G, set, x, 0.0001); err == nil {
		t.Fatal("absurd factor accepted")
	}
}

// crashProc is countProc with one node panicking mid-round, for the
// fault-tolerance surface below.
type crashProc struct{ countProc }

func (p *crashProc) Step(round int, in []arbods.Incoming, s *arbods.Sender) bool {
	if p.ni.ID == 3 && round == 1 {
		panic("surface boom")
	}
	return p.countProc.Step(round, in, s)
}

// TestFaultToleranceSurface pins the robustness surface of the facade:
// typed proc-panic errors (ErrProcPanic / ProcPanicError), Runner
// poisoning and pool replacement, the fault-injection option, and the
// binary snapshot codec — everything the server layer relies on, reachable
// from package arbods alone.
func TestFaultToleranceSurface(t *testing.T) {
	w := arbods.Cycle(12)
	boom := func(ni arbods.NodeInfo) arbods.Proc[int64] { return &crashProc{countProc{ni: ni}} }

	pool := arbods.NewRunnerPool(1)
	defer pool.Close()
	r := pool.Get()
	_, err := arbods.Run(w.G, boom, arbods.WithSeed(1), arbods.WithRunner(r))
	if !errors.Is(err, arbods.ErrProcPanic) {
		t.Fatalf("panicking run err = %v, want ErrProcPanic", err)
	}
	var pe *arbods.ProcPanicError
	if !errors.As(err, &pe) || pe.Round != 1 || pe.Node != 3 || len(pe.Stack) == 0 {
		t.Fatalf("panic detail = %+v", pe)
	}
	if !r.Poisoned() {
		t.Fatal("panicking Runner not poisoned")
	}
	pool.Put(r)
	if pool.Replaced() != 1 {
		t.Fatalf("Replaced = %d, want 1", pool.Replaced())
	}

	// Deterministic fault injection threads through the same option set.
	reg := faultinject.New(1)
	reg.Arm("congest.step", faultinject.Fault{Round: 0, Err: faultinject.ErrInjected})
	if _, err := arbods.WeightedDeterministic(w.G, 1, 0.25, arbods.WithFaultInjection(reg)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected run err = %v, want ErrInjected", err)
	}

	// The binary snapshot codec round-trips through the facade.
	var buf bytes.Buffer
	if err := arbods.EncodeGraphBinary(&buf, w.G); err != nil {
		t.Fatal(err)
	}
	g2, err := arbods.DecodeGraphBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != w.G.N() || g2.M() != w.G.M() {
		t.Fatalf("binary round trip: n=%d m=%d, want n=%d m=%d", g2.N(), g2.M(), w.G.N(), w.G.M())
	}
}

// TestArboricitySurface exercises the orientation helpers.
func TestArboricitySurface(t *testing.T) {
	w := arbods.ForestUnion(60, 3, 7)
	order, d := arbods.Degeneracy(w.G)
	if len(order) != w.G.N() || d < 1 || d > 2*3-1 {
		t.Fatalf("degeneracy order/%d malformed", d)
	}
	o := arbods.OrientGreedy(w.G)
	if o.MaxOutDegree() > d {
		t.Fatal("greedy orientation exceeds degeneracy")
	}
	lo, hi := arbods.ArboricityBounds(w.G)
	if lo < 1 || hi < lo {
		t.Fatalf("bounds [%d,%d]", lo, hi)
	}
	if arbods.MaxWeight <= 0 {
		t.Fatal("MaxWeight must be positive")
	}
	if arbods.CertTolerance <= 0 {
		t.Fatal("CertTolerance must be positive")
	}
}
