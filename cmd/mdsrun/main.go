// Command mdsrun executes one dominating set algorithm on one graph and
// prints a JSON summary (or the dominating set itself).
//
//	mdsrun -algo thm1.1 -gen forest:n=1000,k=3/uniform:max=100 -alpha 3 -eps 0.2
//	mdsrun -algo thm1.2 -t 2 -graph my.graph -alpha 4
//	mdsrun -algo tree -gen tree:n=5000 -print-ds
//
// With -servers, the solve runs on an arbods-server cluster instead of
// in-process: the graph uploads over the ARBCSR01 binary wire, the solve
// rides the resilient client (multi-endpoint failover, backoff, circuit
// breaking), and the answer's receipt is verified locally before
// anything prints:
//
//	mdsrun -servers host1:8080,host2:8080 -algo thm1.1 -gen grid:n=900 -receipt
//
// Algorithms: thm3.1 (unweighted det), thm1.1 (weighted det), thm1.2
// (weighted randomized, -t), thm1.3 (general graphs, -k), remark4.4,
// remark4.5, tree (Observation A.1), lw (LW bucket), lrg (LRG), greedy
// (centralized), exact.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"arbods"
	arbodsclient "arbods/client"
	"arbods/internal/gen"
)

type summary struct {
	Algorithm       string  `json:"algorithm"`
	Graph           string  `json:"graph"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	MaxDegree       int     `json:"maxDegree"`
	Alpha           int     `json:"alpha,omitempty"`
	DSSize          int     `json:"dsSize"`
	DSWeight        int64   `json:"dsWeight"`
	Rounds          int     `json:"rounds,omitempty"`
	Messages        int64   `json:"messages,omitempty"`
	TotalBits       int64   `json:"totalBits,omitempty"`
	PackingSum      float64 `json:"packingSum,omitempty"`
	CertifiedRatio  float64 `json:"certifiedRatio,omitempty"`
	GuaranteeFactor float64 `json:"guaranteeFactor,omitempty"`
	Certified       bool    `json:"certified"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdsrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdsrun", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "thm1.1", "algorithm (see doc comment)")
		genSpec = fs.String("gen", "", "graph generator spec (see internal/gen.Parse)")
		file    = fs.String("graph", "", "graph file in arbods text format")
		alpha   = fs.Int("alpha", 0, "arboricity bound (0 = use generator bound or degeneracy)")
		eps     = fs.Float64("eps", 0.2, "ε parameter")
		tParam  = fs.Int("t", 2, "t parameter (thm1.2)")
		kParam  = fs.Int("k", 2, "k parameter (thm1.3)")
		seed    = fs.Uint64("seed", 1, "run seed")
		printDS = fs.Bool("print-ds", false, "print the dominating set node IDs")
		receipt = fs.Bool("receipt", false, "print the full verification receipt instead of the summary")
		workers = fs.Int("workers", 0, "simulator goroutines (0 = GOMAXPROCS, 1 = sequential)")
		local   = fs.Bool("local", false, "run in the LOCAL model (no bandwidth limit)")
		timeout = fs.Duration("timeout", 0, "abort the run after this long (checked at each round barrier; 0 = no limit)")
		servers = fs.String("servers", "", "comma-separated arbods-server base URLs: solve remotely through the resilient client instead of in-process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := []arbods.Option{arbods.WithSeed(*seed)}
	if *workers > 0 {
		opts = append(opts, arbods.WithWorkers(*workers))
	}
	if *local {
		opts = append(opts, arbods.WithMode(arbods.Local))
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = append(opts, arbods.WithContext(ctx))
	}

	g, name, bound, err := loadGraph(*genSpec, *file)
	if err != nil {
		return err
	}
	a := *alpha
	if a == 0 {
		a = bound
	}
	if a == 0 {
		_, a = arbods.Degeneracy(g) // certified upper bound for α
	}
	if a == 0 {
		a = 1
	}

	if *servers != "" {
		return runRemote(remoteConfig{
			endpoints: strings.Split(*servers, ","),
			algo:      *algo, alpha: a, eps: *eps, t: *tParam, k: *kParam,
			seed: *seed, local: *local, timeout: *timeout,
			printDS: *printDS, receipt: *receipt,
		}, g, name)
	}

	s := summary{
		Algorithm: *algo, Graph: name,
		Nodes: g.N(), Edges: g.M(), MaxDegree: g.MaxDegree(),
	}
	var rep *arbods.Report
	switch *algo {
	case "thm3.1":
		rep, err = arbods.UnweightedDeterministic(g, a, *eps, opts...)
	case "thm1.1":
		rep, err = arbods.WeightedDeterministic(g, a, *eps, opts...)
	case "thm1.2":
		rep, err = arbods.WeightedRandomized(g, a, *tParam, opts...)
	case "thm1.3":
		rep, err = arbods.GeneralGraphs(g, *kParam, opts...)
	case "remark4.4":
		rep, err = arbods.UnknownDelta(g, a, *eps, opts...)
	case "remark4.5":
		rep, err = arbods.UnknownAlpha(g, *eps, opts...)
	case "tree":
		rep, err = arbods.TreeThreeApprox(g, opts...)
	case "lw":
		rep, err = arbods.LWBucketDeterministic(g, opts...)
	case "lrg":
		rep, err = arbods.LRGRandomized(g, opts...)
	case "greedy":
		res := arbods.GreedyCentralized(g)
		return emitBaseline(&s, g, res, *printDS)
	case "exact":
		res, err := arbods.ExactSmall(g)
		if err != nil {
			return err
		}
		return emitBaseline(&s, g, res, *printDS)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if *algo != "thm1.3" {
		s.Alpha = a
	}
	s.DSSize = len(rep.DS)
	s.DSWeight = rep.DSWeight
	s.Rounds = rep.Rounds()
	s.Messages = rep.Messages()
	s.TotalBits = rep.Result.TotalBits
	s.PackingSum = rep.PackingSum
	// Baselines produce no packing; CertifiedRatio is +Inf there, which
	// JSON cannot represent — report it only when finite.
	if ratio := rep.CertifiedRatio(); !math.IsInf(ratio, 0) {
		s.CertifiedRatio = ratio
	}
	s.GuaranteeFactor = rep.Factor
	// Verification goes through the one shared path (BuildReceipt) that
	// the server and bench harness use too.
	rec := arbods.BuildReceipt(g, rep)
	s.Certified = rec.OK
	if *receipt {
		if err := emitJSON(rec); err != nil {
			return err
		}
	} else if err := emit(&s); err != nil {
		return err
	}
	if *printDS {
		return json.NewEncoder(os.Stdout).Encode(rep.DS)
	}
	return nil
}

// remoteConfig carries the flags relevant to a -servers run.
type remoteConfig struct {
	endpoints        []string
	algo             string
	alpha, t, k      int
	eps              float64
	seed             uint64
	local            bool
	timeout          time.Duration
	printDS, receipt bool
}

// runRemote executes the solve on an arbods-server cluster through the
// resilient client: the graph uploads over the binary wire, the solve
// retries across endpoints with backoff and per-endpoint circuit
// breaking, and the answer's receipt (plus the dominating set itself,
// with -print-ds) is verified locally before anything prints.
func runRemote(rc remoteConfig, g *arbods.Graph, name string) error {
	cli, err := arbodsclient.New(arbodsclient.Config{
		Endpoints:      rc.endpoints,
		VerifyReceipts: true,
		Logf:           log.New(os.Stderr, "mdsrun: ", 0).Printf,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if rc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.timeout)
		defer cancel()
	}
	info, err := cli.Upload(ctx, g)
	if err != nil {
		return err
	}
	req := arbodsclient.SolveRequest{
		Graph: info.ID, Algorithm: rc.algo, Alpha: rc.alpha, Eps: rc.eps,
		T: rc.t, K: rc.k, Seed: rc.seed, IncludeDS: rc.printDS,
	}
	if rc.local {
		req.Mode = "local"
	}
	out, err := cli.Solve(ctx, req)
	if err != nil {
		return err
	}
	rec := out.Receipt
	if rec == nil {
		return errors.New("server answered without a receipt")
	}
	if rc.receipt {
		if err := emitJSON(rec); err != nil {
			return err
		}
	} else {
		s := summary{
			Algorithm: rec.Algorithm, Graph: name,
			Nodes: rec.Nodes, Edges: rec.Edges, MaxDegree: g.MaxDegree(),
			Alpha:  rec.Alpha,
			DSSize: rec.SetSize, DSWeight: rec.SetWeight,
			Rounds: rec.Rounds, Messages: rec.Messages, TotalBits: rec.TotalBits,
			PackingSum: rec.PackingSum, CertifiedRatio: rec.CertifiedRatio,
			GuaranteeFactor: rec.Factor, Certified: rec.OK,
		}
		if err := emit(&s); err != nil {
			return err
		}
	}
	if rc.printDS {
		return json.NewEncoder(os.Stdout).Encode(out.DS)
	}
	return nil
}

func emitBaseline(s *summary, g *arbods.Graph, res arbods.BaselineResult, printDS bool) error {
	s.DSSize = len(res.DS)
	s.DSWeight = res.Weight
	set := make([]bool, g.N())
	for _, v := range res.DS {
		set[v] = true
	}
	s.Certified = len(arbods.IsDominatingSet(g, set)) == 0
	if err := emit(s); err != nil {
		return err
	}
	if printDS {
		return json.NewEncoder(os.Stdout).Encode(res.DS)
	}
	return nil
}

func emit(s *summary) error { return emitJSON(s) }

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func loadGraph(spec, file string) (*arbods.Graph, string, int, error) {
	switch {
	case spec != "" && file != "":
		return nil, "", 0, errors.New("pass either -gen or -graph, not both")
	case spec != "":
		w, err := gen.Parse(spec)
		if err != nil {
			return nil, "", 0, err
		}
		return w.G, w.Name, w.ArboricityBound, nil
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", 0, err
		}
		defer f.Close()
		g, err := arbods.DecodeGraph(f)
		if err != nil {
			return nil, "", 0, err
		}
		return g, file, 0, nil
	default:
		return nil, "", 0, errors.New("pass -gen SPEC or -graph FILE")
	}
}
