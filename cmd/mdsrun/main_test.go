package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arbods/internal/server"
)

// silenceStdout redirects os.Stdout to /dev/null for the test's duration.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunAlgorithms(t *testing.T) {
	silenceStdout(t)
	algos := []string{
		"thm3.1", "thm1.1", "thm1.2", "thm1.3",
		"remark4.4", "remark4.5", "lw", "lrg", "greedy", "exact",
	}
	for _, a := range algos {
		t.Run(a, func(t *testing.T) {
			if err := run([]string{"-algo", a, "-gen", "forest:n=40,k=2", "-alpha", "2"}); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := run([]string{"-algo", "tree", "-gen", "tree:n=50", "-print-ds"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWeighted(t *testing.T) {
	silenceStdout(t)
	if err := run([]string{"-algo", "thm1.1", "-gen", "grid:r=5,c=5/uniform:max=30", "-eps", "0.3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.graph")
	content := "arbods-graph v1\nn 3 m 2\ne 0 1\ne 1 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-algo", "thm1.1", "-graph", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeout(t *testing.T) {
	silenceStdout(t)
	// A generous deadline changes nothing about the run...
	if err := run([]string{"-algo", "thm1.1", "-gen", "forest:n=40,k=2", "-timeout", "1m"}); err != nil {
		t.Fatal(err)
	}
	// ...an expired one aborts it with the context error.
	err := run([]string{"-algo", "thm1.1", "-gen", "forest:n=40,k=2", "-timeout", "1ns"})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("expired -timeout: err = %v, want a deadline error", err)
	}
}

func TestRunErrors(t *testing.T) {
	silenceStdout(t)
	cases := [][]string{
		{},                                     // no graph source
		{"-gen", "forest:n=10", "-graph", "x"}, // both sources
		{"-algo", "nope", "-gen", "path:n=5"},  // unknown algorithm
		{"-gen", "martian:n=5"},                // bad spec
		{"-algo", "tree", "-gen", "cycle:n=5"}, // tree algo on a cycle
		{"-graph", "/does/not/exist"},          // missing file
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunRemote(t *testing.T) {
	silenceStdout(t)
	srv, err := server.New(server.Config{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	// The full remote path: binary upload, solve with failover client,
	// receipt verified locally, receipt and DS printed.
	args := []string{"-servers", ts.URL, "-algo", "thm1.1",
		"-gen", "grid:r=5,c=5", "-print-ds", "-receipt"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	// The summary path (no -receipt) rides the same verified answer.
	if err := run([]string{"-servers", ts.URL, "-algo", "lw", "-gen", "grid:r=4,c=4"}); err != nil {
		t.Fatal(err)
	}
	// Centralized baselines are not servable; the server's rejection must
	// surface as a terminal error, not retries.
	err = run([]string{"-servers", ts.URL, "-algo", "greedy", "-gen", "grid:r=3,c=3"})
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("remote greedy: err = %v, want unknown algorithm", err)
	}
}
