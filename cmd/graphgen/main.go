// Command graphgen generates a workload graph and writes it in the arbods
// text format.
//
//	graphgen -gen forest:n=1000,k=3,seed=7/uniform:max=100 -out g.graph
//	graphgen -gen grid:r=20,c=20                       # stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"arbods"
	"arbods/internal/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		spec = fs.String("gen", "", "graph generator spec (see internal/gen.Parse)")
		out  = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("pass -gen SPEC")
	}
	w, err := gen.Parse(*spec)
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := arbods.EncodeGraph(dst, w.G); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s — n=%d m=%d Δ=%d arboricity≤%d\n",
		w.Name, w.G.N(), w.G.M(), w.G.MaxDegree(), effectiveBound(w))
	return nil
}

func effectiveBound(w gen.Result) int {
	if w.ArboricityBound > 0 {
		return w.ArboricityBound
	}
	_, d := arbods.Degeneracy(w.G)
	return d
}
