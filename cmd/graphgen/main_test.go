package main

import (
	"os"
	"path/filepath"
	"testing"

	"arbods"
)

func TestGenerateToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.graph")
	if err := run([]string{"-gen", "forest:n=50,k=2,seed=3/uniform:max=20", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := arbods.DecodeGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 {
		t.Fatalf("decoded n=%d", g.N())
	}
	if g.Unweighted() {
		t.Fatal("weights were not applied")
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -gen accepted")
	}
	if err := run([]string{"-gen", "martian:n=1"}); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := run([]string{"-gen", "path:n=5", "-out", "/no/such/dir/x.graph"}); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
