package main

import (
	"os"
	"testing"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunSingleExperiment(t *testing.T) {
	silenceStdout(t)
	if err := run([]string{"-only", "E2", "-scale", "small", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "E6", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestList(t *testing.T) {
	silenceStdout(t)
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	silenceStdout(t)
	cases := [][]string{
		{"-scale", "cosmic"},
		{"-format", "yaml", "-only", "E2"},
		{"-only", "E99"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
