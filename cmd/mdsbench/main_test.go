package main

import (
	"encoding/json"
	"os"
	"testing"

	"arbods/internal/bench"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunSingleExperiment(t *testing.T) {
	silenceStdout(t)
	if err := run([]string{"-only", "E2", "-scale", "small", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "E6", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
	// -parallel pipelines each experiment's independent runs across a
	// RunnerPool; the emitted tables are identical (pinned by
	// bench.TestParallelMatchesSequential), so this only needs to prove
	// the flag wiring runs end to end.
	if err := run([]string{"-only", "E4", "-scale", "small", "-parallel", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "E2", "-scale", "small", "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
}

// TestJSONFormat runs one experiment in -format json and checks the
// captured stdout parses back into a Report (the BENCH_*.json pipeline).
func TestJSONFormat(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	// Drain concurrently: a report bigger than the OS pipe buffer would
	// otherwise block run()'s write forever.
	type decoded struct {
		rep bench.Report
		err error
	}
	got := make(chan decoded, 1)
	go func() {
		var d decoded
		d.err = json.NewDecoder(r).Decode(&d.rep)
		got <- d
	}()
	os.Stdout = w
	runErr := run([]string{"-only", "E2", "-scale", "small", "-format", "json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	d := <-got
	if d.err != nil {
		t.Fatalf("output is not valid JSON: %v", d.err)
	}
	rep := d.rep
	if rep.Schema != bench.ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, bench.ReportSchema)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "E2" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	if len(rep.Experiments[0].Tables) == 0 || rep.Experiments[0].WallMS <= 0 {
		t.Fatalf("experiment record incomplete: %+v", rep.Experiments[0])
	}
}

func TestList(t *testing.T) {
	silenceStdout(t)
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	silenceStdout(t)
	cases := [][]string{
		{"-scale", "cosmic"},
		{"-format", "yaml", "-only", "E2"},
		{"-only", "E99"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
