// Command mdsbench regenerates every experiment table of the paper
// reproduction (E1…E10, see DESIGN.md §4) and prints them as markdown,
// CSV, or a machine-readable JSON report. EXPERIMENTS.md is produced
// from the markdown output; the committed BENCH_*.json trajectory files
// are produced from the JSON output:
//
//	mdsbench -scale full -seed 1 > experiments.md
//	mdsbench -only E1,E6 -format csv
//	mdsbench -scale small -format json > BENCH_$(date +%F)_small.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"arbods/internal/bench"
	"arbods/internal/congest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdsbench", flag.ContinueOnError)
	var (
		scale    = fs.String("scale", "small", "experiment scale: small or full")
		seed     = fs.Uint64("seed", 1, "base random seed")
		only     = fs.String("only", "", "comma-separated experiment IDs (e.g. E1,E6); empty = all")
		format   = fs.String("format", "md", "output format: md, csv, or json")
		reps     = fs.Int("reps", 0, "repetitions for randomized algorithms (0 = scale default)")
		parallel = fs.Int("parallel", 1, "concurrent simulator runs per experiment (0 = GOMAXPROCS, 1 = sequential); tables are identical for every value")
		list     = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "md", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want md, csv, or json)", *format)
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Name)
		}
		return nil
	}
	// One reusable Runner serves every sequential simulator run of the
	// sweep: the worker pool, arenas, and flat inbox arrays are built once
	// and amortized across all experiments — the serving pattern the
	// engine is designed around. With -parallel > 1 the independent runs
	// of each experiment additionally pipeline across a shared RunnerPool
	// (one warmed Runner per concurrency slot, GOMAXPROCS split between
	// run- and engine-level parallelism); the emitted tables are
	// bit-identical either way, so -parallel is purely a wall-clock knob.
	runner := congest.NewRunner()
	defer runner.Close()
	cfg := bench.Config{Seed: *seed, Reps: *reps, Runner: runner}
	// The experiment runs are pure CPU work, so concurrency beyond the
	// core count only costs memory (each pool slot keeps a warmed Runner
	// resident): clamp rather than oversubscribe.
	if *parallel == 0 || *parallel > runtime.GOMAXPROCS(0) {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if *parallel > 1 {
		pool := congest.NewRunnerPool(*parallel)
		defer pool.Close()
		cfg.Parallel = *parallel
		cfg.Pool = pool
	}
	switch *scale {
	case "small":
		cfg.Scale = bench.Small
	case "full":
		cfg.Scale = bench.Full
	default:
		return fmt.Errorf("unknown scale %q (want small or full)", *scale)
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	if *format == "json" {
		rep, err := bench.RunJSON(cfg, wanted)
		if err != nil {
			return err
		}
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mdsbench: %d experiment(s), scale=%s, seed=%d, %s\n",
			len(rep.Experiments), *scale, *seed, time.Since(start).Round(time.Millisecond))
		return nil
	}
	ran := 0
	for _, e := range bench.All() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		ran++
		for _, t := range tables {
			switch *format {
			case "md":
				fmt.Println(t.Markdown())
			case "csv":
				fmt.Printf("# %s — %s (%s)\n%s\n", t.ID, t.Title, t.PaperRef, t.CSV())
			}
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%s", *only)
	}
	fmt.Fprintf(os.Stderr, "mdsbench: %d experiment(s), scale=%s, seed=%d, %s\n",
		ran, *scale, *seed, time.Since(start).Round(time.Millisecond))
	return nil
}
