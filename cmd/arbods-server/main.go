// Command arbods-server runs the arbods HTTP/JSON daemon: a long-running
// MDS service with content-addressed graph caching, a shared RunnerPool,
// and verification receipts on every answer.
//
//	arbods-server -addr :8080 -corpus ./graphs
//
// Endpoints (see internal/server and the README "Serving" section):
//
//	POST /v1/graphs      upload a graph (arbods text format) → cached id
//	GET  /v1/graphs      list cached graphs
//	GET  /v1/graphs/{id} metadata for one cached graph
//	POST /v1/solve       run an algorithm, get the set + receipt
//	GET  /v1/algorithms  servable algorithms and their parameters
//	GET  /v1/stats       cache, pool, and outcome counters
//	GET  /v1/metrics     solve-path latency histograms
//	GET  /healthz        liveness plus stats
//	GET  /readyz         readiness: 503 once a drain begins
//
// Solves run under a context: -solve-timeout bounds each request (a run
// past the deadline aborts at its next round barrier and answers 503
// with Retry-After), and a client that disconnects cancels its run the
// same way. Identical requests are answered from a response cache
// (-max-solves entries) keyed by graph, algorithm, parameters, and seed.
//
// With -data-dir, every uploaded or name-built graph is snapshotted as a
// checksummed binary CSR blob and restored on the next start, so a
// restarted (or crashed and restarted) daemon serves the same sha256:
// references without re-uploads; corrupt snapshots are detected, logged,
// and rebuilt from source. -per-graph caps one graph's share of the pool
// (fairness 429s), and a panicking solve answers 500 while everything
// else keeps serving.
//
// With -peers (comma-separated advertised URLs, -self naming this
// daemon's own entry), the daemon joins a replicated cluster: each graph
// rendezvous-hashes to -replicas owner daemons, solves for graphs this
// daemon does not own are proxied to a healthy owner (and served locally
// when every owner is down — receipts stay byte-identical either way),
// uploads replicate to their owners, and /v1/stats grows a per-peer
// health and traffic section. Peer health rides /readyz probes every
// -probe-interval with failure-count hysteresis.
//
// SIGINT/SIGTERM first flip /readyz to 503, then drain in-flight requests
// under -drain-timeout before the RunnerPool is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"arbods/internal/cluster"
	"arbods/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "arbods-server:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until shutdown. stop, when non-nil,
// replaces OS signals as the shutdown trigger (tests close it); ready,
// when non-nil, receives the bound listen address once serving.
func run(args []string, stop <-chan struct{}, ready chan<- string) error {
	fs := flag.NewFlagSet("arbods-server", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		corpus    = fs.String("corpus", "", "directory served by corpus:<name> graph references")
		dataDir   = fs.String("data-dir", "", "snapshot directory: graphs persist across restarts as checksummed binary CSRs (\"\" = in-memory only)")
		pool      = fs.Int("pool", 0, "RunnerPool size = concurrent solves (0 = GOMAXPROCS)")
		inflight  = fs.Int("inflight", 0, "max admitted solves before 429 (0 = 4×pool)")
		perGraph  = fs.Int("per-graph", 0, "max solves in flight per graph before a fairness 429 (0 = no per-graph cap)")
		maxUpload = fs.Int64("max-upload", 0, "max graph upload bytes (0 = 64 MiB)")
		maxGraphs = fs.Int("max-graphs", 0, "max cached built graphs, LRU-evicted (0 = 64)")
		maxSolves = fs.Int("max-solves", 0, "max cached solve answers, LRU-evicted (0 = 256)")
		solveTO   = fs.Duration("solve-timeout", 0, "per-solve deadline; past it the run aborts and answers 503 (0 = none)")
		drain     = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown timeout: in-flight requests get this long to finish after SIGTERM")
		quiet     = fs.Bool("quiet", false, "suppress per-request log lines")
		peers     = fs.String("peers", "", "comma-separated advertised peer URLs forming a replicated cluster (\"\" = standalone)")
		self      = fs.String("self", "", "this daemon's advertised URL within -peers (required with -peers)")
		replicas  = fs.Int("replicas", 0, "owner daemons per graph (0 = 2, clamped to the peer count)")
		probeIv   = fs.Duration("probe-interval", 0, "peer /readyz probe period (0 = 1s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := log.New(os.Stderr, "arbods-server: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	var cset *cluster.Set
	if *peers != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self (this daemon's advertised URL)")
		}
		var err error
		cset, err = cluster.New(cluster.Config{
			Self:          *self,
			Peers:         strings.Split(*peers, ","),
			Replicas:      *replicas,
			ProbeInterval: *probeIv,
			Logf:          logf,
		})
		if err != nil {
			return err
		}
	}
	srv, err := server.New(server.Config{
		CorpusDir:       *corpus,
		DataDir:         *dataDir,
		PoolSize:        *pool,
		MaxInflight:     *inflight,
		MaxPerGraph:     *perGraph,
		MaxUploadBytes:  *maxUpload,
		MaxCachedGraphs: *maxGraphs,
		MaxCachedSolves: *maxSolves,
		SolveTimeout:    *solveTO,
		Cluster:         cset,
		Logf:            logf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	if logf != nil {
		logf("listening on %s", ln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		sigStop := make(chan struct{})
		go func() { <-sig; close(sigStop) }()
		stop = sigStop
	}

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-stop:
	}

	// Drain: flip /readyz to 503 first so the load balancer stops sending
	// traffic, then let http.Server.Shutdown wait out in-flight requests
	// under the drain timeout, then release the RunnerPool — Close must
	// run only after every handler has put its Runner back.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = hs.Shutdown(ctx)
	srv.Close()
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}
