package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arbods"
	arbodsclient "arbods/client"
	"arbods/internal/cluster"
	"arbods/internal/faultinject"
	"arbods/internal/server"
)

// reserveAddrs grabs n ephemeral 127.0.0.1 ports and releases them, so
// every daemon in a cluster can be told the full peer list — its own
// address included — before any of them starts. The close-then-rebind
// race is real but tiny: nothing else on the box is hunting these ports.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// waitClusterView polls url's /v1/stats until check passes on its
// cluster section.
func waitClusterView(t *testing.T, url string, what string, check func(*server.ClusterStats) bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/stats")
		if err == nil {
			var st server.Stats
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.Cluster != nil && check(st.Cluster) {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s: cluster view on %s never converged", what, url)
}

// TestClusterChaosFailover is the failover acceptance test on the real
// binary: 3 daemons with R=2 replication serve a sweep through the
// resilient client while one daemon is SIGKILLed and another's link is
// blackholed mid-sweep. The client must complete 100% of the solves, and
// every receipt must be byte-identical to the same sweep against a
// single healthy standalone daemon — failover changes who answers, never
// what the answer is.
func TestClusterChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "arbods-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	ctx := context.Background()
	g := arbods.Grid(9, 7).G
	sweep := []arbodsclient.SolveRequest{
		{Algorithm: "thm1.1", Seed: 1, IncludeDS: true},
		{Algorithm: "thm1.1", Seed: 2},
		{Algorithm: "thm3.1", Seed: 1},
		{Algorithm: "thm1.2", Seed: 3, IncludeDS: true},
		{Algorithm: "lw"},
		{Algorithm: "lrg", Seed: 5},
	}

	// Baseline: one standalone daemon answers the whole sweep.
	solo := startDaemon(t, bin)
	soloClient, err := arbodsclient.New(arbodsclient.Config{
		Endpoints:      []string{solo.base},
		VerifyReceipts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	soloInfo, err := soloClient.Upload(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([][]byte, len(sweep))
	for i, req := range sweep {
		req.Graph = soloInfo.ID
		out, err := soloClient.Solve(ctx, req)
		if err != nil {
			t.Fatalf("baseline solve %d: %v", i, err)
		}
		baseline[i] = out.ReceiptBytes
	}
	solo.cmd.Process.Kill()
	solo.cmd.Wait()

	// Cluster of 3 real daemons, every one knowing the full peer list.
	addrs := reserveAddrs(t, 3)
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peersFlag := strings.Join(urls, ",")
	procs := make(map[string]*daemonProc, len(urls))
	for i, a := range addrs {
		d := startDaemonAddr(t, bin, a,
			"-peers", peersFlag, "-self", urls[i], "-probe-interval", "50ms")
		procs[urls[i]] = d
		defer func() {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}()
	}
	// Daemons started in sequence briefly see later peers as down; wait
	// until everyone's probes agree the cluster is whole.
	for _, u := range urls {
		waitClusterView(t, u, "startup", func(cs *server.ClusterStats) bool {
			healthy := 0
			for _, p := range cs.Peers {
				if p.Healthy {
					healthy++
				}
			}
			return len(cs.Peers) == 3 && healthy == 3
		})
	}

	// The test chooses its victims by ownership, computed from the same
	// rendezvous hash the daemons use: SIGKILL one owner, blackhole the
	// non-owner's link, and let the surviving owner carry the sweep.
	cset, err := cluster.New(cluster.Config{Self: urls[0], Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	reg := faultinject.New(1)
	cli, err := arbodsclient.New(arbodsclient.Config{
		Endpoints:        urls,
		HTTPClient:       &http.Client{Transport: &faultinject.Transport{Reg: reg}},
		MaxAttempts:      12,
		AttemptTimeout:   2 * time.Second,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		RetryAfterCap:    50 * time.Millisecond,
		RetryBudget:      100,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		VerifyReceipts:   true,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := cli.Upload(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != soloInfo.ID {
		t.Fatalf("cluster upload id %s, standalone id %s", info.ID, soloInfo.ID)
	}
	owners := cset.Owners(info.ID)
	if len(owners) != 2 {
		t.Fatalf("Owners(%s) = %v, want 2", info.ID, owners)
	}
	victim, survivor := owners[0], owners[1]
	var blackholed string
	for _, u := range urls {
		if u != victim && u != survivor {
			blackholed = u
		}
	}

	solveAt := func(i int) {
		t.Helper()
		req := sweep[i]
		req.Graph = info.ID
		out, err := cli.Solve(ctx, req)
		if err != nil {
			t.Fatalf("cluster solve %d: %v", i, err)
		}
		if !bytes.Equal(out.ReceiptBytes, baseline[i]) {
			t.Fatalf("solve %d receipt diverges from standalone baseline\n cluster: %s\nbaseline: %s",
				i, out.ReceiptBytes, baseline[i])
		}
	}

	// First half of the sweep against a fully healthy cluster.
	for i := 0; i < len(sweep)/2; i++ {
		solveAt(i)
	}

	// Chaos, mid-sweep: one owner dies without warning, and the client's
	// link to the non-owner becomes a packet-eating partition (requests
	// hang until AttemptTimeout, not fail fast).
	v := procs[victim]
	if err := v.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	v.cmd.Wait()
	reg.Arm("peer."+strings.TrimPrefix(blackholed, "http://"),
		faultinject.Fault{Round: -1, Times: 1 << 20, Err: faultinject.ErrBlackhole})

	// Rest of the sweep: every solve must still succeed, with receipts
	// matching the standalone baseline byte for byte.
	for i := len(sweep) / 2; i < len(sweep); i++ {
		solveAt(i)
	}

	// The survivor's /v1/stats shows the per-peer cluster view: three
	// peers, counters moving, and the killed daemon marked unhealthy.
	waitClusterView(t, survivor, "post-chaos", func(cs *server.ClusterStats) bool {
		if len(cs.Peers) != 3 || cs.Self != survivor || cs.Replicas != 2 {
			return false
		}
		for _, p := range cs.Peers {
			if p.Peer == victim {
				return !p.Healthy && p.Probes > 0 && p.ProbeFailures > 0
			}
		}
		return false
	})
}
