package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"arbods"
	"arbods/internal/server"
)

// daemonProc is one real arbods-server subprocess under test.
type daemonProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon execs the built binary on an ephemeral port and waits for
// its "listening on" line to learn it.
func startDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	return startDaemonAddr(t, bin, "127.0.0.1:0", args...)
}

// startDaemonAddr is startDaemon on a fixed address (cluster tests
// reserve ports up front so every daemon can know its peers' addresses
// before any of them starts). Stderr keeps draining in the background so
// request logging can never block the process on a full pipe.
func startDaemonAddr(t *testing.T, bin, addr string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemonProc{cmd: cmd, base: "http://" + addr}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon did not report its listen address")
		return nil
	}
}

func (d *daemonProc) get(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// solveReceipt runs one solve and returns the raw receipt JSON.
func (d *daemonProc) solveReceipt(t *testing.T, req server.SolveRequest) json.RawMessage {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(d.base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Receipt json.RawMessage `json:"receipt"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out.Receipt
}

// TestCrashRestartServesSnapshots is the crash-safety acceptance test on
// the real binary: upload and solve, SIGKILL the daemon mid-life (no
// drain, no goodbye), restart it on the same -data-dir, and require that
// the graph serves from its snapshot — no re-upload, zero builds, and a
// byte-identical receipt for the same request.
func TestCrashRestartServesSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "arbods-server")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	dataDir := filepath.Join(dir, "data")

	// Life 1: upload, solve, then die without warning.
	d1 := startDaemon(t, bin, "-data-dir", dataDir)
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, arbods.Grid(30, 30).G); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d1.base+"/v1/graphs", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !info.New {
		t.Fatalf("upload: status %d, info %+v", resp.StatusCode, info)
	}
	if code := d1.get(t, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz on a serving daemon: %d", code)
	}
	solveReq := server.SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 11}
	receipt1 := d1.solveReceipt(t, solveReq)

	if err := d1.cmd.Process.Kill(); err != nil { // SIGKILL: no handlers run
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Life 2: same data dir. The graph must be resident before any client
	// re-uploads it.
	d2 := startDaemon(t, bin, "-data-dir", dataDir)
	defer func() {
		d2.cmd.Process.Kill()
		d2.cmd.Wait()
	}()

	var meta server.GraphInfo
	if code := d2.get(t, "/v1/graphs/"+info.ID, &meta); code != http.StatusOK {
		t.Fatalf("restored graph not served: status %d", code)
	}
	if meta.Nodes != info.Nodes || meta.Edges != info.Edges || meta.Alpha != info.Alpha {
		t.Fatalf("restored metadata diverges: upload %+v, restored %+v", info, meta)
	}
	var stats server.Stats
	d2.get(t, "/v1/stats", &stats)
	if stats.SnapshotsLoaded < 1 {
		t.Fatalf("snapshotsLoaded = %d, want ≥ 1", stats.SnapshotsLoaded)
	}
	if stats.Builds != 0 {
		t.Fatalf("restored graph cost %d builds, want 0", stats.Builds)
	}

	receipt2 := d2.solveReceipt(t, solveReq)
	if !bytes.Equal(receipt1, receipt2) {
		t.Fatalf("receipt across crash-restart diverges:\n%s\n%s", receipt1, receipt2)
	}

	// Life 2 ends politely: SIGTERM must drain and exit 0.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- d2.cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("SIGTERM shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}

	// The snapshot survives the graceful exit too.
	if _, err := os.Stat(filepath.Join(dataDir, "index.json")); err != nil {
		t.Fatalf("index.json missing after shutdown: %v", err)
	}
	blob := strings.TrimPrefix(info.ID, "sha256:") + ".csr"
	if _, err := os.Stat(filepath.Join(dataDir, "graphs", blob)); err != nil {
		t.Fatalf("snapshot blob missing: %v", err)
	}
}
