package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"arbods"
	"arbods/internal/server"
)

// TestDaemonRoundTrip boots the real daemon on an ephemeral port, drives
// an upload → solve → receipt round trip over HTTP, and shuts it down
// gracefully — the whole binary lifecycle, not just the handler.
func TestDaemonRoundTrip(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-quiet"}, stop, ready)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start listening")
	}

	// Upload a 40-node star (α=1) in the text format.
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, arbods.Star(40).G); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var info server.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !info.New || info.Nodes != 40 {
		t.Fatalf("upload: status %d, info %+v", resp.StatusCode, info)
	}

	// Solve twice: the second request must hit the CSR cache and return
	// the same receipt.
	var receipts [2]json.RawMessage
	for i := range receipts {
		req, _ := json.Marshal(server.SolveRequest{
			Graph: info.ID, Algorithm: "thm1.1", Alpha: 1, Seed: 7, IncludeDS: true,
		})
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			CacheHit bool            `json:"cacheHit"`
			DS       []int           `json:"ds"`
			Receipt  json.RawMessage `json:"receipt"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
		if !out.CacheHit {
			t.Fatalf("solve %d: expected cache hit on uploaded graph", i)
		}
		var rec arbods.Receipt
		if err := json.Unmarshal(out.Receipt, &rec); err != nil {
			t.Fatal(err)
		}
		if !rec.OK || rec.SetSize != len(out.DS) || rec.SetSize == 0 {
			t.Fatalf("solve %d: receipt not OK or inconsistent: %+v ds=%d", i, rec, len(out.DS))
		}
		receipts[i] = out.Receipt
	}
	if !bytes.Equal(receipts[0], receipts[1]) {
		t.Fatalf("repeat request receipts differ:\n%s\n%s", receipts[0], receipts[1])
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
