package arbods_test

// One benchmark per table/figure of the paper, as indexed in DESIGN.md §4.
// Each target executes the corresponding experiment of internal/bench at
// Small scale, so `go test -bench=.` regenerates every quantitative claim;
// `cmd/mdsbench` renders the same experiments as tables (that output is
// what EXPERIMENTS.md records). Additional micro-benchmarks at the bottom
// measure the simulator and the core algorithms in isolation.

import (
	"testing"

	"arbods"
	"arbods/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	var exp *bench.Experiment
	for _, e := range bench.All() {
		if e.ID == id {
			e := e
			exp = &e
			break
		}
	}
	if exp == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(bench.Config{Seed: uint64(i + 1), Scale: bench.Small})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkE1ComparisonTable regenerates the §1.1 prior-work comparison.
func BenchmarkE1ComparisonTable(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2RoundsVsDelta regenerates the Theorem 1.1 round-bound sweep.
func BenchmarkE2RoundsVsDelta(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3ApproxVsEpsilon regenerates the Theorem 1.1 approximation sweep.
func BenchmarkE3ApproxVsEpsilon(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4TradeoffT regenerates the Theorem 1.2 t-sweep.
func BenchmarkE4TradeoffT(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5GeneralK regenerates the Theorem 1.3 k-sweep.
func BenchmarkE5GeneralK(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6LowerBound regenerates Figure 1 and the Theorem 1.4 reduction.
func BenchmarkE6LowerBound(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7Trees regenerates the Observation A.1 tree comparison.
func BenchmarkE7Trees(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8UnknownParams regenerates the Remark 4.4/4.5 comparison.
func BenchmarkE8UnknownParams(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9Ablations regenerates the design ablations.
func BenchmarkE9Ablations(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10Weighted regenerates the weighted-regime table.
func BenchmarkE10Weighted(b *testing.B) { runExperiment(b, "E10") }

// --- micro-benchmarks ---

// BenchmarkWeightedDeterministic measures one Theorem 1.1 run end to end
// (simulator included) on a 2000-node α=3 instance.
func BenchmarkWeightedDeterministic(b *testing.B) {
	w := arbods.ForestUnion(2000, 3, 1)
	g := arbods.UniformWeights(w.G, 100, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := arbods.WeightedDeterministic(g, 3, 0.2, arbods.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllDominated {
			b.Fatal("undominated")
		}
	}
}

// BenchmarkWeightedRandomized measures one Theorem 1.2 run (t=2).
func BenchmarkWeightedRandomized(b *testing.B) {
	w := arbods.ForestUnion(2000, 3, 1)
	g := arbods.UniformWeights(w.G, 100, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := arbods.WeightedRandomized(g, 3, 2, arbods.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllDominated {
			b.Fatal("undominated")
		}
	}
}

// BenchmarkEngineSequentialVsParallel quantifies the simulator's worker
// scaling (ablation E9's engine dimension) through a full algorithm run;
// internal/congest's BenchmarkRunLarge measures the engine alone at
// million-node scale.
func BenchmarkEngineSequentialVsParallel(b *testing.B) {
	w := arbods.ForestUnion(5000, 4, 1)
	g := arbods.UniformWeights(w.G, 100, 2)
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "sequential", 4: "parallel4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := arbods.WeightedDeterministic(g, 4, 0.2,
					arbods.WithSeed(7), arbods.WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyCentralized measures the centralized baseline for scale
// reference.
func BenchmarkGreedyCentralized(b *testing.B) {
	w := arbods.ForestUnion(20000, 3, 1)
	g := arbods.UniformWeights(w.G, 100, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := arbods.GreedyCentralized(g)
		if len(res.DS) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkExactForest measures the linear-time tree DP.
func BenchmarkExactForest(b *testing.B) {
	g := arbods.UniformWeights(arbods.RandomTree(50000, 3).G, 100, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arbods.ExactForest(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegeneracy measures the O(n+m) peeling on a dense-ish graph.
func BenchmarkDegeneracy(b *testing.B) {
	g := arbods.ErdosRenyi(20000, 0.001, 9).G
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, d := arbods.Degeneracy(g); d == 0 {
			b.Fatal("unexpected degeneracy")
		}
	}
}
