package arbods_test

import (
	"bytes"
	"testing"

	"arbods"
)

// TestPublicAPIEndToEnd exercises the whole facade the way a downstream
// user would: generate, weight, run, certify, serialize.
func TestPublicAPIEndToEnd(t *testing.T) {
	w := arbods.ForestUnion(300, 3, 42)
	g := arbods.UniformWeights(w.G, 100, 7)

	rep, err := arbods.WeightedDeterministic(g, w.ArboricityBound, 0.2, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := arbods.Certify(g, rep); err != nil {
		t.Fatal(err)
	}
	if rep.CertifiedRatio() > rep.Factor {
		t.Fatalf("ratio %g exceeds factor %g", rep.CertifiedRatio(), rep.Factor)
	}

	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := arbods.DecodeGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := arbods.WeightedDeterministic(g2, w.ArboricityBound, 0.2, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DSWeight != rep.DSWeight {
		t.Fatalf("round-tripped graph changed the result: %d vs %d", rep2.DSWeight, rep.DSWeight)
	}
}

func TestPublicAPIAllAlgorithms(t *testing.T) {
	w := arbods.ForestUnion(150, 2, 9)
	g := arbods.UniformWeights(w.G, 50, 3)
	alpha := w.ArboricityBound

	runs := []struct {
		name string
		run  func() (*arbods.Report, error)
	}{
		{"weighted-det", func() (*arbods.Report, error) {
			return arbods.WeightedDeterministic(g, alpha, 0.25, arbods.WithSeed(2))
		}},
		{"weighted-rand", func() (*arbods.Report, error) {
			return arbods.WeightedRandomized(g, alpha, 2, arbods.WithSeed(2))
		}},
		{"general", func() (*arbods.Report, error) {
			return arbods.GeneralGraphs(g, 2, arbods.WithSeed(2))
		}},
		{"unknown-delta", func() (*arbods.Report, error) {
			return arbods.UnknownDelta(g, alpha, 0.25, arbods.WithSeed(2))
		}},
		{"unknown-alpha", func() (*arbods.Report, error) {
			return arbods.UnknownAlpha(g, 0.25, arbods.WithSeed(2))
		}},
	}
	for _, tt := range runs {
		t.Run(tt.name, func(t *testing.T) {
			rep, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			if err := arbods.Certify(g, rep); err != nil {
				t.Fatal(err)
			}
		})
	}

	uw := arbods.RandomTree(120, 11)
	tri, err := arbods.TreeThreeApprox(uw.G)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := arbods.ExactForest(uw.G)
	if err != nil {
		t.Fatal(err)
	}
	if tri.DSWeight > 3*opt.Weight {
		t.Fatalf("tree 3-approx violated: %d vs OPT %d", tri.DSWeight, opt.Weight)
	}
}

func TestPublicAPIBaselinesAndTools(t *testing.T) {
	w := arbods.ForestUnion(120, 2, 5)
	lo, hi := arbods.ArboricityBounds(w.G)
	if lo < 1 || hi < lo || lo > 2 {
		t.Fatalf("arboricity bounds [%d,%d] inconsistent with construction α≤2", lo, hi)
	}
	o := arbods.OrientGreedy(w.G)
	if o.MaxOutDegree() > hi {
		t.Fatalf("greedy orientation out-degree %d > degeneracy %d", o.MaxOutDegree(), hi)
	}
	out, rounds, err := arbods.DistributedOrientation(w.G, 2, 0.5, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 || len(out) != w.G.N() {
		t.Fatal("distributed orientation malformed")
	}

	gr := arbods.GreedyCentralized(w.G)
	set := make([]bool, w.G.N())
	for _, v := range gr.DS {
		set[v] = true
	}
	if und := arbods.IsDominatingSet(w.G, set); len(und) > 0 {
		t.Fatalf("greedy invalid: %v", und)
	}

	lw, err := arbods.LWBucketDeterministic(w.G, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	lrg, err := arbods.LRGRandomized(w.G, arbods.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*arbods.Report{lw, lrg} {
		if und := arbods.IsDominatingSet(w.G, arbods.MembershipOf(rep)); len(und) > 0 {
			t.Fatalf("%s invalid", rep.Algorithm)
		}
	}
}

func TestPublicAPILowerBound(t *testing.T) {
	base, err := arbods.LowerBoundGadget(8, 3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := arbods.BuildLowerBound(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := arbods.UnweightedDeterministic(c.H, 2, 0.2, arbods.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	y := c.ExtractFractionalVC(arbods.MembershipOf(rep))
	if err := arbods.CheckFractionalVertexCover(base, y); err != nil {
		t.Fatal(err)
	}
}
