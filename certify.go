package arbods

import (
	"fmt"

	"arbods/internal/verify"
)

// CertTolerance is the relative tolerance for floating-point certificate
// checks.
const CertTolerance = verify.DefaultTol

// IsDominatingSet reports the nodes left undominated by the given
// membership vector (empty result = valid dominating set).
func IsDominatingSet(g *Graph, inSet []bool) (undominated []int) {
	return verify.DominatingSet(g, inSet)
}

// CheckPacking verifies the dual-packing constraint Σ_{v∈N+(u)} x_v ≤ w_u
// for every node u. A feasible packing certifies Σx ≤ OPT (Lemma 2.1).
func CheckPacking(g *Graph, x []float64) error {
	return verify.PackingFeasible(g, x, CertTolerance)
}

// CheckCertificate verifies the per-run guarantee w(S) ≤ factor·Σx.
func CheckCertificate(g *Graph, inSet []bool, x []float64, factor float64) error {
	return verify.Certificate(g, inSet, x, factor, CertTolerance)
}

// CheckFractionalVertexCover verifies y_u + y_v ≥ 1 for every edge — the
// feasibility side of the Theorem 1.4 reduction.
func CheckFractionalVertexCover(g *Graph, y []float64) error {
	return verify.FractionalVertexCover(g, y, CertTolerance)
}

// MembershipOf extracts the dominating set membership vector from a report.
func MembershipOf(rep *Report) []bool {
	set := make([]bool, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		set[v] = out.InDS
	}
	return set
}

// PackingOf extracts the certified packing vector from a report.
func PackingOf(rep *Report) []float64 {
	x := make([]float64, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		x[v] = out.Packing
	}
	return x
}

// Check is one stage of a Receipt: a named verification with its outcome.
// Skipped marks a check whose premise does not apply to the run (e.g. the
// ratio check on an algorithm whose bound holds only in expectation);
// skipped checks never fail the receipt.
type Check struct {
	Name    string `json:"name"`
	Pass    bool   `json:"pass"`
	Skipped bool   `json:"skipped,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Receipt is the structured verification record of one run — the form in
// which an answer is handed to a party that should not have to trust the
// solver. It re-derives everything checkable from the graph and the
// report: the coverage proof (every node dominated), the dual-packing
// feasibility that makes PackingSum a lower bound on OPT (Lemma 2.1), and
// the α-dependent ratio bound w(S) ≤ Factor·Σx that deterministic runs
// certify. OK aggregates the non-skipped checks. Receipts are plain data
// with deterministic JSON encoding (no maps), so two runs of the same
// (graph, algorithm, seed) produce byte-identical receipts — the property
// arbods-server's response cache and its clients rely on.
type Receipt struct {
	Algorithm string `json:"algorithm"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`

	SetSize    int     `json:"setSize"`
	SetWeight  int64   `json:"setWeight"`
	PackingSum float64 `json:"packingSum"`
	// CertifiedRatio is SetWeight/PackingSum, the exactly checkable upper
	// bound on the true approximation ratio; 0 when the run produced no
	// packing (Σx = 0, where the ratio would be +Inf).
	CertifiedRatio float64 `json:"certifiedRatio,omitempty"`
	// Factor is the deterministic per-run guarantee being checked
	// ((2α+1)(1+ε) for the Theorem 1.1 family); 0 when the algorithm's
	// bound is in expectation only, in which case the ratio check is
	// skipped.
	Factor         float64 `json:"guaranteeFactor,omitempty"`
	ExpectedFactor float64 `json:"expectedFactor,omitempty"`
	Alpha          int     `json:"alpha,omitempty"`
	Eps            float64 `json:"eps,omitempty"`

	Rounds    int   `json:"rounds"`
	Messages  int64 `json:"messages"`
	TotalBits int64 `json:"totalBits"`

	Checks []Check `json:"checks"`
	OK     bool    `json:"ok"`

	err *CertError
}

// Err returns nil when every applicable check passed, and the first
// failure as a *CertError otherwise — the same error Certify reports.
func (r *Receipt) Err() error {
	if r.err == nil {
		return nil
	}
	return r.err
}

// BuildReceipt re-verifies a report end to end and returns the structured
// verification record: the coverage proof, the packing feasibility, and
// (for deterministic algorithms) the ratio certificate, each as a named
// Check, plus the sizes and bounds a consumer needs to audit the run.
// CLI, bench, and server all verify through this one path; Certify is the
// error-only wrapper.
func BuildReceipt(g *Graph, rep *Report) *Receipt {
	r := &Receipt{
		Algorithm:      rep.Algorithm,
		Nodes:          g.N(),
		Edges:          g.M(),
		SetSize:        len(rep.DS),
		SetWeight:      rep.DSWeight,
		PackingSum:     rep.PackingSum,
		Factor:         rep.Factor,
		ExpectedFactor: rep.ExpectedFactor,
		Alpha:          rep.Alpha,
		Eps:            rep.Eps,
		Rounds:         rep.Result.Rounds,
		Messages:       rep.Result.Messages,
		TotalBits:      rep.Result.TotalBits,
	}
	if rep.PackingSum > 0 {
		r.CertifiedRatio = float64(rep.DSWeight) / rep.PackingSum
	}

	set := MembershipOf(rep)
	und := verify.DominatingSet(g, set)
	if len(und) == 0 {
		r.Checks = append(r.Checks, Check{
			Name: "domination", Pass: true,
			Detail: fmt.Sprintf("all %d nodes dominated by the %d-node set", g.N(), len(rep.DS)),
		})
	} else {
		r.Checks = append(r.Checks, Check{
			Name:   "domination",
			Detail: fmt.Sprintf("%d nodes undominated (first: %d)", len(und), und[0]),
		})
		if r.err == nil {
			r.err = &CertError{Stage: "domination", Detail: und}
		}
	}

	x := PackingOf(rep)
	if err := verify.PackingFeasible(g, x, CertTolerance); err != nil {
		r.Checks = append(r.Checks, Check{Name: "packing", Detail: err.Error()})
		if r.err == nil {
			r.err = &CertError{Stage: "packing", Err: err}
		}
	} else {
		r.Checks = append(r.Checks, Check{
			Name: "packing", Pass: true,
			Detail: fmt.Sprintf("dual packing feasible; Σx=%.6g lower-bounds OPT", rep.PackingSum),
		})
	}

	if rep.Factor > 0 {
		if err := verify.Certificate(g, set, x, rep.Factor, CertTolerance); err != nil {
			r.Checks = append(r.Checks, Check{Name: "ratio", Detail: err.Error()})
			if r.err == nil {
				r.err = &CertError{Stage: "ratio", Err: err}
			}
		} else {
			r.Checks = append(r.Checks, Check{
				Name: "ratio", Pass: true,
				Detail: fmt.Sprintf("w(S)=%d ≤ %.6g·Σx=%.6g (α-bound holds)",
					rep.DSWeight, rep.Factor, rep.Factor*rep.PackingSum),
			})
		}
	} else {
		r.Checks = append(r.Checks, Check{
			Name: "ratio", Skipped: true,
			Detail: "no deterministic per-run guarantee (bound holds in expectation only)",
		})
	}

	r.OK = r.err == nil
	return r
}

// Certify re-verifies a report end to end: the set dominates, the packing
// is feasible, and (for deterministic algorithms) w(DS) ≤ Factor·Σx. It is
// what a downstream user calls to distrust-but-verify any run; BuildReceipt
// returns the same verification as a structured record.
func Certify(g *Graph, rep *Report) error {
	return BuildReceipt(g, rep).Err()
}

// CertError reports which certification stage failed.
type CertError struct {
	Stage  string
	Detail []int
	Err    error
}

func (e *CertError) Error() string {
	if e.Err != nil {
		return "arbods: certification failed at " + e.Stage + ": " + e.Err.Error()
	}
	return "arbods: certification failed at " + e.Stage
}

// Unwrap supports errors.Is/As chains.
func (e *CertError) Unwrap() error { return e.Err }
