package arbods

import (
	"arbods/internal/verify"
)

// CertTolerance is the relative tolerance for floating-point certificate
// checks.
const CertTolerance = verify.DefaultTol

// IsDominatingSet reports the nodes left undominated by the given
// membership vector (empty result = valid dominating set).
func IsDominatingSet(g *Graph, inSet []bool) (undominated []int) {
	return verify.DominatingSet(g, inSet)
}

// CheckPacking verifies the dual-packing constraint Σ_{v∈N+(u)} x_v ≤ w_u
// for every node u. A feasible packing certifies Σx ≤ OPT (Lemma 2.1).
func CheckPacking(g *Graph, x []float64) error {
	return verify.PackingFeasible(g, x, CertTolerance)
}

// CheckCertificate verifies the per-run guarantee w(S) ≤ factor·Σx.
func CheckCertificate(g *Graph, inSet []bool, x []float64, factor float64) error {
	return verify.Certificate(g, inSet, x, factor, CertTolerance)
}

// CheckFractionalVertexCover verifies y_u + y_v ≥ 1 for every edge — the
// feasibility side of the Theorem 1.4 reduction.
func CheckFractionalVertexCover(g *Graph, y []float64) error {
	return verify.FractionalVertexCover(g, y, CertTolerance)
}

// MembershipOf extracts the dominating set membership vector from a report.
func MembershipOf(rep *Report) []bool {
	set := make([]bool, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		set[v] = out.InDS
	}
	return set
}

// PackingOf extracts the certified packing vector from a report.
func PackingOf(rep *Report) []float64 {
	x := make([]float64, len(rep.Result.Outputs))
	for v, out := range rep.Result.Outputs {
		x[v] = out.Packing
	}
	return x
}

// Certify re-verifies a report end to end: the set dominates, the packing
// is feasible, and (for deterministic algorithms) w(DS) ≤ Factor·Σx. It is
// what a downstream user calls to distrust-but-verify any run.
func Certify(g *Graph, rep *Report) error {
	set := MembershipOf(rep)
	if und := verify.DominatingSet(g, set); len(und) > 0 {
		return &CertError{Stage: "domination", Detail: und}
	}
	x := PackingOf(rep)
	if err := verify.PackingFeasible(g, x, CertTolerance); err != nil {
		return &CertError{Stage: "packing", Err: err}
	}
	if rep.Factor > 0 {
		if err := verify.Certificate(g, set, x, rep.Factor, CertTolerance); err != nil {
			return &CertError{Stage: "ratio", Err: err}
		}
	}
	return nil
}

// CertError reports which certification stage failed.
type CertError struct {
	Stage  string
	Detail []int
	Err    error
}

func (e *CertError) Error() string {
	if e.Err != nil {
		return "arbods: certification failed at " + e.Stage + ": " + e.Err.Error()
	}
	return "arbods: certification failed at " + e.Stage
}

// Unwrap supports errors.Is/As chains.
func (e *CertError) Unwrap() error { return e.Err }
