// Package arbodsclient is the resilient Go client for arbods-server: it
// spreads requests over multiple endpoints, retries transient failures
// with capped exponential backoff and full jitter, honors the server's
// adaptive Retry-After hints, spends from a retry budget so client
// retries cannot amplify a server outage, and trips a per-endpoint
// circuit breaker (closed → open → half-open) so a dead daemon costs one
// probe per cooldown instead of one timeout per request.
//
// The library's determinism is the client's verification lever: a solve's
// receipt is byte-identical for a fixed (graph, algorithm, params, seed)
// no matter which daemon — original, replica, or failover — executed it.
// With VerifyReceipts set, every answer is re-checked locally: the
// receipt's own checks must pass, its arithmetic must be consistent, and
// when the response carries the dominating set (IncludeDS), the client
// downloads the graph over the ARBCSR01 binary wire (content-hash
// verified against the graph id) and re-proves domination, set size, and
// set weight from scratch — answers are verified, not trusted.
package arbodsclient

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"arbods"
)

// Config configures a Client. Every knob has a production-safe default;
// tests shrink the time constants.
type Config struct {
	// Endpoints are the server base URLs (e.g. "http://10.0.0.1:8080"),
	// at least one. Order sets the preference: attempt k starts at
	// endpoint k mod len, so retries rotate through the set.
	Endpoints []string
	// HTTPClient carries every request (nil = a default client). Chaos
	// tests wire faultinject.Transport here to break specific links.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request across all endpoints
	// (default 8; the first try counts).
	MaxAttempts int
	// AttemptTimeout bounds one attempt end to end (default 30s) — the
	// guard that turns a blackholed link into a retry instead of a hang.
	AttemptTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the retry sleep: attempt k waits
	// a uniform random duration in [0, min(MaxBackoff, BaseBackoff·2^k))
	// — capped exponential backoff with full jitter (defaults 50ms, 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryAfterCap clamps how long a server's Retry-After hint is
	// honored (default 30s, matching the server's own clamp).
	RetryAfterCap time.Duration
	// RetryBudget is the token bucket that stops retry amplification:
	// each retry spends one token, each success refunds half a token, and
	// a drained bucket fails fast with the last error instead of piling
	// more load on a struggling cluster (default 10 tokens).
	RetryBudget float64
	// BreakerThreshold consecutive endpoint failures open that endpoint's
	// breaker (default 5); BreakerCooldown is how long it stays open
	// before one half-open probe is allowed through (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// VerifyReceipts re-checks every solve answer locally; see the
	// package comment. Verification failures are terminal, not retried —
	// a wrong answer from a deterministic server will be wrong again.
	VerifyReceipts bool
	// Seed drives the jitter stream (0 = 1), so a test run backs off
	// identically every time.
	Seed uint64
	// Logf receives one line per retry and breaker transition (nil =
	// silent).
	Logf func(format string, args ...any)
}

// Client is a multi-endpoint arbods-server client; safe for concurrent
// use.
type Client struct {
	cfg       Config
	endpoints []*endpoint
	hc        *http.Client
	budget    *retryBudget
	jitter    *jitterSource

	mu     sync.Mutex
	graphs map[string]*arbods.Graph // verified downloads, by sha256: id
	next   uint64                   // round-robin start for attempt 0
}

// New builds a Client from cfg.
func New(cfg Config) (*Client, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("arbodsclient: at least one endpoint required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 30 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.RetryAfterCap <= 0 {
		cfg.RetryAfterCap = 30 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 10
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	c := &Client{
		cfg:    cfg,
		hc:     cfg.HTTPClient,
		budget: newRetryBudget(cfg.RetryBudget, 0.5),
		jitter: newJitterSource(cfg.Seed),
		graphs: make(map[string]*arbods.Graph),
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	for _, e := range cfg.Endpoints {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e == "" {
			continue
		}
		if !strings.Contains(e, "://") {
			e = "http://" + e
		}
		c.endpoints = append(c.endpoints, &endpoint{
			base:    e,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	if len(c.endpoints) == 0 {
		return nil, fmt.Errorf("arbodsclient: at least one endpoint required")
	}
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// endpoint is one server base URL plus its breaker.
type endpoint struct {
	base    string
	breaker *breaker
}

// SolveRequest mirrors the server's POST /v1/solve body; see the README
// "Serving" section for field semantics.
type SolveRequest struct {
	Graph     string  `json:"graph"`
	Algorithm string  `json:"algorithm,omitempty"`
	Alpha     int     `json:"alpha,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	T         int     `json:"t,omitempty"`
	K         int     `json:"k,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	MaxRounds int     `json:"maxRounds,omitempty"`
	IncludeDS bool    `json:"includeDS,omitempty"`
}

// GraphInfo mirrors the server's graph metadata.
type GraphInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	Alpha int    `json:"alpha"`
	Hits  int64  `json:"hits,omitempty"`
	New   bool   `json:"new,omitempty"`
}

// SolveResponse is one verified answer. ReceiptBytes preserves the
// receipt exactly as the server sent it, so callers can compare replicas
// byte for byte; Receipt is its decoded form.
type SolveResponse struct {
	Graph        GraphInfo       `json:"graph"`
	CacheHit     bool            `json:"cacheHit"`
	SolveCached  bool            `json:"solveCached,omitempty"`
	ServedBy     string          `json:"servedBy,omitempty"`
	Proxied      bool            `json:"proxied,omitempty"`
	Seed         uint64          `json:"seed"`
	DS           []int           `json:"ds,omitempty"`
	ReceiptBytes json.RawMessage `json:"receipt"`
	Receipt      *arbods.Receipt `json:"-"`

	// Endpoint is the base URL that answered; Attempts counts tries,
	// first included.
	Endpoint string `json:"-"`
	Attempts int    `json:"-"`
}

// APIError is a server error envelope with its HTTP status; terminal
// (non-retryable) failures surface as one of these.
type APIError struct {
	Status   int
	Code     string
	Message  string
	Endpoint string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %d %s: %s", e.Endpoint, e.Status, e.Code, e.Message)
}

// ErrBudgetExhausted wraps the last attempt error when the retry budget
// drains; errors.Is finds it.
var ErrBudgetExhausted = errors.New("arbodsclient: retry budget exhausted")

// Solve runs one solve with retries, failover, and (when configured)
// receipt verification.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp *SolveResponse
	err = c.withRetries(ctx, func(ctx context.Context, ep *endpoint) (retryable bool, err error) {
		r, retryable, err := c.solveOnce(ctx, ep, body)
		if err != nil {
			return retryable, err
		}
		resp = r
		return false, nil
	}, &resp)
	if err != nil {
		return nil, err
	}
	if c.cfg.VerifyReceipts {
		if err := c.verifyResponse(ctx, resp); err != nil {
			return nil, fmt.Errorf("arbodsclient: receipt verification failed: %w", err)
		}
	}
	return resp, nil
}

// withRetries is the shared attempt loop: pick an endpoint the breaker
// allows, run op, and on a retryable failure spend budget, sleep the
// jittered backoff (or the server's Retry-After), and go again. attempts
// is written back onto the response via the pointer dance in Solve.
func (c *Client) withRetries(ctx context.Context, op func(context.Context, *endpoint) (bool, error), resp **SolveResponse) error {
	start := int(c.nextStart())
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !c.budget.spend() {
				return fmt.Errorf("%w after %d attempts: %v", ErrBudgetExhausted, attempt, lastErr)
			}
			if err := c.sleep(ctx, attempt, lastErr); err != nil {
				return err
			}
		}
		ep := c.pickEndpoint(start + attempt)
		if ep == nil {
			lastErr = fmt.Errorf("arbodsclient: every endpoint's circuit breaker is open")
			continue
		}
		attemptCtx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		retryable, err := op(attemptCtx, ep)
		cancel()
		if err == nil {
			c.budget.refund()
			if resp != nil && *resp != nil {
				(*resp).Endpoint = ep.base
				(*resp).Attempts = attempt + 1
			}
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		c.logf("event=retry attempt=%d endpoint=%s err=%q", attempt+1, ep.base, err.Error())
	}
	return fmt.Errorf("arbodsclient: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

func (c *Client) nextStart() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	c.next++
	return n
}

// pickEndpoint returns the first endpoint from the rotating start whose
// breaker admits a request, nil when every breaker is open and cooling.
func (c *Client) pickEndpoint(start int) *endpoint {
	n := len(c.endpoints)
	for i := 0; i < n; i++ {
		ep := c.endpoints[(start+i)%n]
		if ep.breaker.allow() {
			return ep
		}
	}
	return nil
}

// sleep waits the backoff for attempt, preferring the server's
// Retry-After hint when the last failure carried one. ctx cancels the
// wait.
func (c *Client) sleep(ctx context.Context, attempt int, lastErr error) error {
	d := c.backoff(attempt)
	var ra *retryAfterError
	if errors.As(lastErr, &ra) && ra.delay > 0 {
		d = ra.delay
		if d > c.cfg.RetryAfterCap {
			d = c.cfg.RetryAfterCap
		}
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoff is the capped-exponential-full-jitter schedule: a uniform
// draw from [0, min(MaxBackoff, BaseBackoff·2^(attempt-1))).
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.cfg.BaseBackoff << uint(attempt-1)
	if ceil > c.cfg.MaxBackoff || ceil <= 0 {
		ceil = c.cfg.MaxBackoff
	}
	return c.jitter.uniform(ceil)
}

// retryAfterError marks a retryable server rejection that carried a
// Retry-After hint.
type retryAfterError struct {
	api   *APIError
	delay time.Duration
}

func (e *retryAfterError) Error() string { return e.api.Error() }
func (e *retryAfterError) Unwrap() error { return e.api }

// solveOnce runs one solve attempt against one endpoint and classifies
// the outcome: transport errors and 5xx feed the breaker and retry;
// 429/503 retry after the server's hint without blaming the endpoint
// (an overloaded daemon is alive); 404 tries the next endpoint (another
// replica may hold the graph); remaining 4xx are terminal.
func (c *Client) solveOnce(ctx context.Context, ep *endpoint, body []byte) (*SolveResponse, bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ep.base+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		c.markBreaker(ep, false)
		return nil, true, fmt.Errorf("%s: %w", ep.base, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		c.markBreaker(ep, false)
		return nil, true, fmt.Errorf("%s: read response: %w", ep.base, err)
	}
	if hresp.StatusCode == http.StatusOK {
		c.markBreaker(ep, true)
		var resp SolveResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return nil, false, fmt.Errorf("%s: decode response: %w", ep.base, err)
		}
		if len(resp.ReceiptBytes) > 0 {
			resp.Receipt = new(arbods.Receipt)
			if err := json.Unmarshal(resp.ReceiptBytes, resp.Receipt); err != nil {
				return nil, false, fmt.Errorf("%s: decode receipt: %w", ep.base, err)
			}
		}
		return &resp, false, nil
	}
	api := &APIError{Status: hresp.StatusCode, Endpoint: ep.base}
	var envelope struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if json.Unmarshal(data, &envelope) == nil {
		api.Code, api.Message = envelope.Code, envelope.Error
	}
	switch {
	case hresp.StatusCode == http.StatusTooManyRequests || hresp.StatusCode == http.StatusServiceUnavailable:
		// The daemon answered: alive, just shedding. Honor its hint.
		c.markBreaker(ep, true)
		var delay time.Duration
		if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs > 0 {
			delay = time.Duration(secs) * time.Second
		}
		return nil, true, &retryAfterError{api: api, delay: delay}
	case hresp.StatusCode >= 500:
		c.markBreaker(ep, false)
		return nil, true, api
	case hresp.StatusCode == http.StatusNotFound:
		// Another replica may hold the graph; the endpoint is healthy.
		c.markBreaker(ep, true)
		return nil, true, api
	default:
		c.markBreaker(ep, true)
		return nil, false, api
	}
}

// markBreaker feeds one outcome to ep's breaker, logging transitions.
func (c *Client) markBreaker(ep *endpoint, ok bool) {
	if changed, open := ep.breaker.record(ok); changed {
		c.logf("event=breaker endpoint=%s open=%v", ep.base, open)
	}
}

// Upload sends g to the cluster over the ARBCSR01 binary wire and
// returns its content-hash id. Any daemon accepts an upload; the cluster
// replicates it to the graph's owners.
func (c *Client) Upload(ctx context.Context, g *arbods.Graph) (GraphInfo, error) {
	var buf bytes.Buffer
	if err := arbods.EncodeGraphBinary(&buf, g); err != nil {
		return GraphInfo{}, err
	}
	var info GraphInfo
	err := c.withRetries(ctx, func(ctx context.Context, ep *endpoint) (bool, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ep.base+"/v1/graphs", bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false, err
		}
		hreq.Header.Set("Content-Type", "application/x-arbods-csr")
		hresp, err := c.hc.Do(hreq)
		if err != nil {
			c.markBreaker(ep, false)
			return true, fmt.Errorf("%s: %w", ep.base, err)
		}
		defer hresp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
		if err != nil {
			c.markBreaker(ep, false)
			return true, fmt.Errorf("%s: read response: %w", ep.base, err)
		}
		if hresp.StatusCode != http.StatusOK {
			retryable := hresp.StatusCode >= 500 || hresp.StatusCode == http.StatusTooManyRequests
			c.markBreaker(ep, hresp.StatusCode < 500)
			return retryable, &APIError{Status: hresp.StatusCode, Endpoint: ep.base, Message: string(data)}
		}
		c.markBreaker(ep, true)
		return false, json.Unmarshal(data, &info)
	}, nil)
	return info, err
}

// Graph downloads the identified graph over the binary wire, verifies
// its content hash against id, and caches it; VerifyReceipts rides this
// path to re-prove domination locally.
func (c *Client) Graph(ctx context.Context, id string) (*arbods.Graph, error) {
	c.mu.Lock()
	g, ok := c.graphs[id]
	c.mu.Unlock()
	if ok {
		return g, nil
	}
	err := c.withRetries(ctx, func(ctx context.Context, ep *endpoint) (bool, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+"/v1/graphs/"+id, nil)
		if err != nil {
			return false, err
		}
		hreq.Header.Set("Accept", "application/x-arbods-csr")
		hresp, err := c.hc.Do(hreq)
		if err != nil {
			c.markBreaker(ep, false)
			return true, fmt.Errorf("%s: %w", ep.base, err)
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<20))
			c.markBreaker(ep, hresp.StatusCode < 500)
			// 404 is retryable here for the same reason as in solveOnce:
			// another replica may hold the graph.
			return hresp.StatusCode >= 500 || hresp.StatusCode == http.StatusNotFound,
				&APIError{Status: hresp.StatusCode, Code: "fetch_failed", Endpoint: ep.base, Message: "graph fetch"}
		}
		c.markBreaker(ep, true)
		decoded, err := arbods.DecodeGraphBinary(hresp.Body)
		if err != nil {
			return true, fmt.Errorf("%s: decode graph: %w", ep.base, err)
		}
		got, err := graphID(decoded)
		if err != nil {
			return false, err
		}
		if got != id {
			// A corrupt or wrong blob from one replica must not poison
			// verification — try elsewhere.
			return true, fmt.Errorf("%s: graph hash mismatch: got %s want %s", ep.base, got, id)
		}
		g = decoded
		return false, nil
	}, nil)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.graphs[id] = g
	c.mu.Unlock()
	return g, nil
}

// graphID recomputes a graph's content-hash id exactly as the server
// does: sha256 over the canonical text encoding.
func graphID(g *arbods.Graph) (string, error) {
	var buf bytes.Buffer
	if err := arbods.EncodeGraph(&buf, g); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
