package arbodsclient

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker: threshold consecutive
// failures open it, the cooldown later one half-open probe is allowed
// through, and that probe's outcome closes it again or re-opens it for
// another cooldown. While open, allow answers false — the endpoint costs
// the cluster one probe per cooldown instead of one timeout per request.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	state     breakerState
	failures  int
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may go to this endpoint, transitioning
// open → half-open when the cooldown has elapsed (the caller's request
// is the probe).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // breakerOpen
		if time.Now().Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		return true
	}
}

// record feeds one outcome, returning whether the open/closed verdict
// changed and what it now is.
func (b *breaker) record(ok bool) (changed, open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.state == breakerOpen
	if ok {
		b.state = breakerClosed
		b.failures = 0
	} else {
		b.failures++
		// A failed half-open probe re-opens immediately; a closed breaker
		// opens at the threshold.
		if b.state == breakerHalfOpen || b.failures >= b.threshold {
			b.state = breakerOpen
			b.failures = 0
			b.openUntil = time.Now().Add(b.cooldown)
		}
	}
	now := b.state == breakerOpen
	return was != now, now
}

// snapshot reports the current state (tests only).
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
