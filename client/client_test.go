package arbodsclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"arbods"
	"arbods/internal/faultinject"
	"arbods/internal/server"
)

// okSolveBody is a minimal well-formed solve answer for scripted
// handlers that never run a real solve.
const okSolveBody = `{"graph":{"id":"sha256:test","nodes":1,"edges":0,"alpha":1},"cacheHit":true,"seed":0,"receipt":{"algorithm":"thm1.1","nodes":1,"edges":0,"setSize":1,"setWeight":1,"packingSum":1,"rounds":1,"messages":0,"totalBits":0,"checks":[],"ok":true}}`

func scripted(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts
}

func mustClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	cfg := Config{
		Endpoints:   []string{"http://x:1"},
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Seed:        42,
	}
	a, b := mustClient(t, cfg), mustClient(t, cfg)
	for attempt := 1; attempt <= 12; attempt++ {
		ceil := cfg.BaseBackoff << uint(attempt-1)
		if ceil > cfg.MaxBackoff || ceil <= 0 {
			ceil = cfg.MaxBackoff
		}
		d := a.backoff(attempt)
		if d < 0 || d >= ceil {
			t.Fatalf("backoff(%d) = %v outside [0, %v)", attempt, d, ceil)
		}
		if d2 := b.backoff(attempt); d2 != d {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, d, d2)
		}
	}
	// Past the cap every draw stays under MaxBackoff — the "capped" half
	// of capped exponential backoff.
	for i := 0; i < 100; i++ {
		if d := a.backoff(30); d >= cfg.MaxBackoff {
			t.Fatalf("capped backoff draw %v >= %v", d, cfg.MaxBackoff)
		}
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	ts := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy","code":"at_capacity"}`)
			return
		}
		fmt.Fprint(w, okSolveBody)
	})
	c := mustClient(t, Config{
		Endpoints:     []string{ts.URL},
		BaseBackoff:   time.Nanosecond, // jitter contributes ~nothing…
		MaxBackoff:    2 * time.Nanosecond,
		RetryAfterCap: 300 * time.Millisecond, // …so the wait is the (clamped) hint
	})
	start := time.Now()
	resp, err := c.Solve(context.Background(), SolveRequest{Graph: "sha256:test"})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", resp.Attempts)
	}
	// The server said 1s; the cap clamped it to 300ms. Waiting at least
	// the clamp proves the hint was honored; finishing well under the raw
	// 1s proves the clamp was applied.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("elapsed %v — Retry-After hint not honored", elapsed)
	}
	if elapsed > 900*time.Millisecond {
		t.Fatalf("elapsed %v — RetryAfterCap not applied", elapsed)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
	})
	c := mustClient(t, Config{
		Endpoints:        []string{ts.URL},
		MaxAttempts:      20,
		RetryBudget:      2,
		BaseBackoff:      time.Nanosecond,
		MaxBackoff:       time.Nanosecond,
		BreakerThreshold: 100, // keep the breaker out of this test
	})
	_, err := c.Solve(context.Background(), SolveRequest{Graph: "sha256:test"})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// First attempt is free; the budget paid for exactly 2 retries.
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 budgeted retries)", n)
	}
	// Successes refund: after one OK the budget allows another retry.
	var ok atomic.Bool
	ts2 := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		if ok.Load() {
			fmt.Fprint(w, okSolveBody)
			return
		}
		http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
	})
	c2 := mustClient(t, Config{
		Endpoints:        []string{ts2.URL},
		MaxAttempts:      4,
		RetryBudget:      1,
		BaseBackoff:      time.Nanosecond,
		MaxBackoff:       time.Nanosecond,
		BreakerThreshold: 100,
	})
	ok.Store(true)
	if _, err := c2.Solve(context.Background(), SolveRequest{Graph: "sha256:test"}); err != nil {
		t.Fatal(err)
	}
	if got := c2.budget.remaining(); got != 1 {
		t.Fatalf("budget after refunded success = %v, want back at cap 1", got)
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(2, 30*time.Millisecond)
	if !b.allow() || b.snapshot() != breakerClosed {
		t.Fatal("breaker must start closed")
	}
	b.record(false)
	if b.snapshot() != breakerClosed {
		t.Fatal("opened before threshold")
	}
	if changed, open := b.record(false); !changed || !open {
		t.Fatal("threshold failure must open the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	time.Sleep(35 * time.Millisecond)
	if !b.allow() || b.snapshot() != breakerHalfOpen {
		t.Fatal("cooldown elapsed: one half-open probe must be admitted")
	}
	// A failed probe re-opens immediately (no threshold accumulation).
	if changed, open := b.record(false); !changed || !open {
		t.Fatal("failed half-open probe must re-open")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	time.Sleep(35 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second cooldown elapsed: probe must be admitted")
	}
	// allow() already moved the verdict to "not open" at half-open, so
	// the close is not a verdict change — just the state settling.
	if _, open := b.record(true); open {
		t.Fatal("successful probe must close the breaker")
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("breaker not closed after successful probe")
	}
}

func TestBreakerShieldsDeadEndpoint(t *testing.T) {
	var deadCalls atomic.Int64
	dead := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		http.Error(w, `{"error":"dying","code":"internal"}`, http.StatusInternalServerError)
	})
	live := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, okSolveBody)
	})
	c := mustClient(t, Config{
		Endpoints:        []string{dead.URL, live.URL},
		BaseBackoff:      time.Nanosecond,
		MaxBackoff:       time.Nanosecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // never half-opens within the test
	})
	for i := 0; i < 5; i++ {
		if _, err := c.Solve(context.Background(), SolveRequest{Graph: "sha256:test"}); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	// The first solve's first attempt tripped the breaker; every request
	// after that skipped the dead endpoint entirely.
	if n := deadCalls.Load(); n != 1 {
		t.Fatalf("dead endpoint saw %d requests, want exactly 1", n)
	}
}

func TestTerminalErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such algorithm","code":"bad_request"}`, http.StatusBadRequest)
	})
	c := mustClient(t, Config{Endpoints: []string{ts.URL}, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond})
	_, err := c.Solve(context.Background(), SolveRequest{Graph: "sha256:test", Algorithm: "nope"})
	var api *APIError
	if !errors.As(err, &api) || api.Status != http.StatusBadRequest || api.Code != "bad_request" {
		t.Fatalf("err = %v, want terminal *APIError 400 bad_request", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("terminal 400 retried: %d requests", n)
	}
}

// realServer spins a full in-process arbods-server.
func realServer(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func TestUploadSolveVerify(t *testing.T) {
	url := realServer(t)
	c := mustClient(t, Config{Endpoints: []string{url}, VerifyReceipts: true})
	g := arbods.Grid(6, 6).G
	info, err := c.Upload(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !info.New || !strings.HasPrefix(info.ID, "sha256:") {
		t.Fatalf("upload info = %+v", info)
	}
	// IncludeDS triggers the full verification: graph download over the
	// hash-checked binary wire, then domination re-proved locally.
	resp, err := c.Solve(context.Background(), SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 9, IncludeDS: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Receipt == nil || !resp.Receipt.OK || len(resp.DS) == 0 {
		t.Fatalf("verified solve came back thin: %+v", resp)
	}
	if resp.Attempts != 1 || resp.Endpoint != url {
		t.Fatalf("attempt accounting = %d via %q", resp.Attempts, resp.Endpoint)
	}
	// The verified graph is cached: a second Graph call must not refetch.
	g1, err := c.Graph(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := c.Graph(context.Background(), info.ID)
	if g1 != g2 {
		t.Fatal("graph cache miss on repeat fetch")
	}
}

func TestVerifyRejectsTamperedAnswer(t *testing.T) {
	url := realServer(t)
	honest := mustClient(t, Config{Endpoints: []string{url}})
	g := arbods.Grid(5, 5).G
	info, err := honest.Upload(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	good, err := honest.Solve(context.Background(), SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 2, IncludeDS: true})
	if err != nil {
		t.Fatal(err)
	}

	// A proxy that corrupts the dominating set must be caught by the
	// client-side re-proof even though the receipt itself is untouched.
	tamper := scripted(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/solve" {
			var tampered SolveResponse
			blob, _ := json.Marshal(good)
			json.Unmarshal(blob, &tampered)
			tampered.ReceiptBytes = good.ReceiptBytes
			tampered.DS = append([]int(nil), good.DS[1:]...) // drop one dominator
			json.NewEncoder(w).Encode(tampered)
			return
		}
		// Pass graph downloads through to the real server.
		resp, err := http.Get(url + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
		return
	})
	_ = tamper
	c := mustClient(t, Config{Endpoints: []string{tamper.URL}, VerifyReceipts: true})
	_, err = c.Solve(context.Background(), SolveRequest{Graph: info.ID, Algorithm: "thm1.1", Seed: 2, IncludeDS: true})
	if err == nil || !strings.Contains(err.Error(), "receipt verification failed") {
		t.Fatalf("tampered answer accepted: err = %v", err)
	}
}

// TestFlakyPeerSweepIdentity is the client half of the chaos acceptance:
// one of two replicas fails every other request at the transport seam,
// yet a sweep through the retrying client completes 100% and every
// receipt is byte-identical to the same sweep against a single healthy
// server.
func TestFlakyPeerSweepIdentity(t *testing.T) {
	sweep := []SolveRequest{
		{Algorithm: "thm1.1", Seed: 1, IncludeDS: true},
		{Algorithm: "thm1.1", Seed: 2, IncludeDS: true},
		{Algorithm: "thm3.1", Seed: 1, IncludeDS: true},
		{Algorithm: "thm1.2", Seed: 4, IncludeDS: true},
		{Algorithm: "lrg", Seed: 7, IncludeDS: true},
		{Algorithm: "lw", IncludeDS: true},
	}
	g := arbods.Grid(8, 5).G

	// Baseline: one healthy server, plain client.
	soloURL := realServer(t)
	solo := mustClient(t, Config{Endpoints: []string{soloURL}})
	soloInfo, err := solo.Upload(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([][]byte, len(sweep))
	for i, req := range sweep {
		req.Graph = soloInfo.ID
		resp, err := solo.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("baseline sweep[%d]: %v", i, err)
		}
		baseline[i] = resp.ReceiptBytes
	}

	// Flaky pair: replica A drops every other request at the wire.
	urlA, urlB := realServer(t), realServer(t)
	reg := faultinject.New(11)
	hostA := strings.TrimPrefix(urlA, "http://")
	for i := 0; i < 64; i++ {
		reg.Arm("peer."+hostA, faultinject.Fault{Round: -1, After: 2 * i, Times: 1, Err: faultinject.ErrInjected})
	}
	c := mustClient(t, Config{
		Endpoints:       []string{urlA, urlB},
		HTTPClient:      &http.Client{Transport: &faultinject.Transport{Reg: reg}},
		VerifyReceipts:  true,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      4 * time.Millisecond,
		BreakerCooldown: 20 * time.Millisecond,
		Seed:            11,
	})
	if _, err := c.Upload(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	// Both replicas need the graph (standalone servers don't replicate).
	direct := mustClient(t, Config{Endpoints: []string{urlB}})
	if _, err := direct.Upload(context.Background(), g); err != nil {
		t.Fatal(err)
	}

	for i, req := range sweep {
		req.Graph = soloInfo.ID
		resp, err := c.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("flaky sweep[%d]: %v", i, err)
		}
		if !bytes.Equal(resp.ReceiptBytes, baseline[i]) {
			t.Fatalf("sweep[%d] receipt differs from healthy baseline:\n%s\nvs\n%s",
				i, resp.ReceiptBytes, baseline[i])
		}
	}
	if reg.Hits("peer."+hostA) == 0 {
		t.Fatal("flaky seam never exercised — the test proved nothing")
	}
}
