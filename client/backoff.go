package arbodsclient

import (
	"sync"
	"time"
)

// jitterSource is the seeded stream behind full-jitter backoff: a
// splitmix64 walk, so a fixed Config.Seed backs off identically on every
// run — the property the backoff-bound tests pin.
type jitterSource struct {
	mu    sync.Mutex
	state uint64
}

func newJitterSource(seed uint64) *jitterSource {
	if seed == 0 {
		seed = 1
	}
	return &jitterSource{state: seed}
}

// uniform draws from [0, ceil); zero ceil draws zero.
func (j *jitterSource) uniform(ceil time.Duration) time.Duration {
	if ceil <= 0 {
		return 0
	}
	j.mu.Lock()
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	j.mu.Unlock()
	return time.Duration(z % uint64(ceil))
}

// retryBudget is the token bucket that keeps retries from amplifying an
// outage: a retry spends one token, a success refunds refundPer (capped
// at max), and an empty bucket fails the request fast. During a total
// outage the client sends at most max extra requests beyond its
// first-attempt rate, no matter how long the outage lasts.
type retryBudget struct {
	mu        sync.Mutex
	tokens    float64
	max       float64
	refundPer float64
}

func newRetryBudget(max, refundPer float64) *retryBudget {
	return &retryBudget{tokens: max, max: max, refundPer: refundPer}
}

// spend takes one token, reporting false when the bucket is dry.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund credits one success.
func (b *retryBudget) refund() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.refundPer
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// remaining reports the current balance (tests only).
func (b *retryBudget) remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
