package arbodsclient

import (
	"context"
	"fmt"
	"math"

	"arbods"
)

// verifyResponse is the VerifyReceipts check: everything the client can
// re-derive from the answer is re-derived. The receipt's own checks must
// all pass; its arithmetic (ratio = weight / packing sum, ratio within
// the certified factor) must be consistent; and when the response
// carries the dominating set, the graph is downloaded over the verified
// binary wire and domination, set size, and set weight are proven from
// scratch. Any failure is terminal: the server is deterministic, so a
// wrong answer retried is the same wrong answer.
func (c *Client) verifyResponse(ctx context.Context, resp *SolveResponse) error {
	r := resp.Receipt
	if r == nil {
		return fmt.Errorf("response carries no receipt")
	}
	if !r.OK {
		for _, ch := range r.Checks {
			if !ch.Pass && !ch.Skipped {
				return fmt.Errorf("server check %q failed: %s", ch.Name, ch.Detail)
			}
		}
		return fmt.Errorf("receipt not OK")
	}
	for _, ch := range r.Checks {
		if !ch.Pass && !ch.Skipped {
			return fmt.Errorf("receipt claims OK but check %q failed: %s", ch.Name, ch.Detail)
		}
	}
	// The certified ratio must be the arithmetic it claims to be, and
	// within the per-run guarantee when one was certified.
	if r.PackingSum > 0 && r.CertifiedRatio > 0 {
		want := float64(r.SetWeight) / r.PackingSum
		if !closeEnough(r.CertifiedRatio, want) {
			return fmt.Errorf("certified ratio %.6f != weight/packing %.6f", r.CertifiedRatio, want)
		}
		if r.Factor > 0 && r.CertifiedRatio > r.Factor*(1+arbods.CertTolerance) {
			return fmt.Errorf("certified ratio %.6f exceeds guarantee %.6f", r.CertifiedRatio, r.Factor)
		}
	}
	if len(resp.DS) == 0 {
		return nil // no set to re-prove; request IncludeDS for the full check
	}
	g, err := c.Graph(ctx, resp.Graph.ID)
	if err != nil {
		return fmt.Errorf("fetch graph for verification: %w", err)
	}
	if g.N() != r.Nodes || g.M() != r.Edges {
		return fmt.Errorf("graph shape (%d nodes, %d edges) != receipt (%d, %d)", g.N(), g.M(), r.Nodes, r.Edges)
	}
	if len(resp.DS) != r.SetSize {
		return fmt.Errorf("ds has %d nodes, receipt claims %d", len(resp.DS), r.SetSize)
	}
	inSet := make([]bool, g.N())
	var weight int64
	for _, v := range resp.DS {
		if v < 0 || v >= g.N() {
			return fmt.Errorf("ds node %d out of range [0,%d)", v, g.N())
		}
		if inSet[v] {
			return fmt.Errorf("ds node %d repeated", v)
		}
		inSet[v] = true
		weight += g.Weight(v)
	}
	if weight != r.SetWeight {
		return fmt.Errorf("ds weight %d != receipt %d", weight, r.SetWeight)
	}
	if undominated := arbods.IsDominatingSet(g, inSet); len(undominated) > 0 {
		return fmt.Errorf("%d nodes undominated (first: %d)", len(undominated), undominated[0])
	}
	return nil
}

// closeEnough is the relative float comparison for re-derived receipt
// arithmetic.
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= arbods.CertTolerance*math.Max(scale, 1)
}
